#!/usr/bin/env python
"""Kill-and-resume smoke test for the resumable sweep runner.

Scenario (the tentpole acceptance criterion of the resilient-execution
work):

1. start a journaled ``python -m repro compare`` sweep in a subprocess;
2. SIGKILL it as soon as the journal holds at least one completed trial
   (mid-sweep, no chance to clean up);
3. ``python -m repro sweep --resume <journal>`` to finish the remainder;
4. run the identical sweep uninterrupted into a second journal — with
   ``--no-heartbeat``, so step 5's comparison also proves live monitoring
   never perturbs results (bit-identical journals, monitoring on vs. off);
5. assert the merged journal matches the uninterrupted one bit-for-bit on
   every deterministic payload field, and that no completed trial was
   re-executed (each key has exactly one trial record).

Between steps 2 and 3, ``python -m repro obs watch`` is rendered against
the half-finished journal (the live-monitoring path: progress bar, counts,
heartbeat directory) and must exit 0.

Wall-clock fields (``sched_seconds``, ``elapsed_s``) are scrubbed before
comparison — they measure the host, not the experiment.

Exit code 0 = pass.  Used by CI (see .github/workflows/ci.yml) and by
``tests/test_runner_kill_resume.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    return env


def scrub(obj):
    """Drop wall-clock timing fields (non-deterministic by nature)."""
    if isinstance(obj, dict):
        return {k: scrub(v) for k, v in obj.items() if k != "sched_seconds"}
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


def trial_records(path: Path) -> "list[dict]":
    records = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn line from the kill; the loader tolerates it too
        if record.get("kind") == "trial":
            records.append(record)
    return records


def trial_payloads(path: Path) -> "dict[str, dict]":
    return {
        r["key"]: scrub(r["payload"])
        for r in trial_records(path)
        if r.get("status") == "ok"
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--radix", type=int, default=16)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--workdir", default=None, help="where to put the journals (default: mkdtemp)"
    )
    args = parser.parse_args(argv)

    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="kill-resume-"))
    workdir.mkdir(parents=True, exist_ok=True)
    interrupted = workdir / "interrupted.jsonl"
    reference = workdir / "reference.jsonl"
    sweep_cmd = [
        sys.executable, "-m", "repro", "compare",
        "--radix", str(args.radix), "--trials", str(args.trials),
        "--retries", "0",
    ]
    env = _env()

    # 1+2. Start the sweep; SIGKILL it once the first trial is journaled.
    victim = subprocess.Popen(
        sweep_cmd + ["--journal", str(interrupted)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + args.timeout
    killed = False
    while time.time() < deadline:
        if trial_records(interrupted):
            victim.send_signal(signal.SIGKILL)
            killed = True
            break
        if victim.poll() is not None:
            break
        time.sleep(0.02)
    victim.wait()
    if not killed:
        print("FAIL: sweep finished (or timed out) before it could be killed;"
              " raise --trials", file=sys.stderr)
        return 1

    survived = trial_payloads(interrupted)
    if not survived:
        print("FAIL: no completed trial survived the kill", file=sys.stderr)
        return 1
    if len(survived) >= args.trials:
        print("FAIL: the kill landed after the sweep finished", file=sys.stderr)
        return 1
    print(f"killed mid-sweep with {len(survived)}/{args.trials} trials journaled")

    # 2.5. Live monitoring against the half-finished journal: `obs watch`
    # must render progress (bar + done counts) from the journal the kill
    # left behind, exit 0, and — being a pure reader — change nothing.
    watch = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "watch", str(interrupted)],
        env=env,
        capture_output=True,
        text=True,
    )
    if watch.returncode != 0:
        print(f"FAIL: obs watch exited {watch.returncode}\n{watch.stderr}", file=sys.stderr)
        return 1
    if f"{len(survived)}/{args.trials} done" not in watch.stdout:
        print(f"FAIL: obs watch did not render progress:\n{watch.stdout}", file=sys.stderr)
        return 1
    print(f"obs watch renders: {watch.stdout.splitlines()[1]}")

    # 3. Resume the interrupted journal.
    resume = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "--resume", str(interrupted)],
        env=env,
        capture_output=True,
        text=True,
    )
    if resume.returncode != 0:
        print(f"FAIL: resume exited {resume.returncode}\n{resume.stderr}", file=sys.stderr)
        return 1

    # 4. Uninterrupted reference run of the identical sweep, heartbeats
    # off: step 5b comparing it bit-for-bit against the monitored run is
    # the monitoring-on-vs-off identity assertion.
    ref = subprocess.run(
        sweep_cmd + ["--journal", str(reference), "--no-heartbeat"],
        env=env,
        capture_output=True,
        text=True,
    )
    if ref.returncode != 0:
        print(f"FAIL: reference run exited {ref.returncode}\n{ref.stderr}", file=sys.stderr)
        return 1

    # 5a. Zero re-executed trials: every key has exactly one trial record,
    # and the records that survived the kill are byte-identical afterwards.
    records = trial_records(interrupted)
    keys = [r["key"] for r in records]
    if sorted(set(keys)) != sorted(keys):
        print(f"FAIL: resume re-executed completed trials: {keys}", file=sys.stderr)
        return 1
    merged = trial_payloads(interrupted)
    for key, payload in survived.items():
        if merged.get(key) != payload:
            print(f"FAIL: resume rewrote surviving trial {key}", file=sys.stderr)
            return 1

    # 5b. Bit-identical results: merged journal == uninterrupted journal on
    # every deterministic field.
    expected = trial_payloads(reference)
    if merged != expected:
        for key in sorted(set(merged) | set(expected)):
            if merged.get(key) != expected.get(key):
                print(f"FAIL: payload mismatch at {key}:\n  resumed:   "
                      f"{merged.get(key)}\n  reference: {expected.get(key)}",
                      file=sys.stderr)
        return 1

    print(
        f"kill-resume smoke OK: {len(survived)} trials survived the kill, "
        f"{args.trials - len(survived)} resumed, aggregates bit-identical "
        f"({len(expected)} trials compared)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
