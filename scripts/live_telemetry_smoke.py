#!/usr/bin/env python
"""CI smoke for the live telemetry plane: scrapeable /metrics that parse
as strict OpenMetrics, a flight recorder that dumps exactly one incident
bundle per trigger kind, and bit-identical results with telemetry off.

Scenario (the acceptance criteria of the live-telemetry work):

1. one asyncio service run (radix 16, two warm workers, fast-reroute
   armed, tick-clock deadline budget) is scripted per epoch: epoch 1
   delivers the covering workload under a total composite-port outage
   (one mid-epoch reroute swap), epoch 2 injects a stage whose worker
   dies once (crash + respawn + retry), epoch 3 steps the tick clock past
   the deadline budget (deep fallback >= L2 *and* an SLO miss).  The
   flight recorder must dump exactly four bundles — one per trigger kind
   — and every bundle must render through ``repro obs incidents``;
2. /metrics is scraped twice mid-run — from inside the epoch hook, so the
   scrapes deterministically bracket published epochs — and strict-parsed:
   every sample must belong to a ``# TYPE``-declared family, every
   histogram's ``+Inf`` bucket must equal its ``_count``, cumulative
   buckets must never decrease, and ``service_epoch_latency`` must
   advance between the scrapes.  /healthz must answer 200 on the fresh
   heartbeat and /status must carry the epoch/burn-rate/worker state,
   with the epoch-3 SLO miss burning the 1m window;
3. ``run_sync`` with the whole telemetry plane on (HTTP server + flight
   recorder) must be bit-identical to the same run with it off;
4. on any failure, the scrapes, status payloads, and incident bundles in
   ``--workdir`` become the uploaded CI artifact.

Exit code 0 = pass.  Used by CI (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import io
import json
import re
import sys
import tempfile
import urllib.request
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # the crash stage lives in tests/

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.analysis.controller import EpochController  # noqa: E402
from repro.cli import main as repro_cli  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.hybrid.solstice import SolsticeScheduler  # noqa: E402
from repro.obs.incidents import (  # noqa: E402
    TRIGGER_CRASH,
    TRIGGER_FALLBACK,
    TRIGGER_KINDS,
    TRIGGER_REROUTE,
    TRIGGER_SLO,
    load_incident,
)
from repro.runner.pool import StageTask  # noqa: E402
from repro.service import SchedulingService, ServiceConfig, TickClock  # noqa: E402
from repro.switch.params import fast_ocs_params  # noqa: E402
from repro.workloads.arrivals import WorkloadArrivals  # noqa: E402
from repro.workloads.skewed import SkewedWorkload  # noqa: E402

N = 16
N_EPOCHS = 5
REROUTE_EPOCH, CRASH_EPOCH, FALLBACK_EPOCH = 1, 2, 3
DEADLINE_TICKS = 2.5
# One tick past the budget exhausts it at the first checkpoint, and every
# further clock read overdrafts the cheaper rungs too, so the ladder walks
# deterministically to a deep fallback (>= L2, the incident trigger
# threshold — see repro/service/deadline.py and obs/incidents.py).
MISS_STEP = 3.0
_DIE_ONCE = "tests._runner_trials:die_once_stage"


def covering_demand() -> np.ndarray:
    """See tests/test_reroute.py — the validated covering workload."""
    demand = np.zeros((N, N))
    demand[0, 1:9] = 1.0
    demand[9:14, 1:9] = 1.0
    demand[14, 15] = 40.0
    return demand


class ScriptedArrivals:
    """A base arrival process with per-epoch demand overrides.

    Overriding ``process(e)`` keeps the scripted epochs safe under the
    service's pre-drawing ingestion queue: the demand is a pure function
    of the epoch number, never of when the queue drew it.
    """

    def __init__(self, base, overrides: "dict[int, np.ndarray]"):
        self.base = base
        self.overrides = overrides

    def __call__(self, epoch: int) -> np.ndarray:
        if epoch in self.overrides:
            return self.overrides[epoch].copy()
        return self.base(epoch)


def make_arrivals(seed: int = 7, intensity: float = 0.5) -> WorkloadArrivals:
    return WorkloadArrivals(
        SkewedWorkload(), n_ports=N, seed=seed, intensity=intensity
    )


def scrape(port: int, path: str) -> "tuple[int, str, str]":
    url = f"http://127.0.0.1:{port}{path}"
    request = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""),
            )
    except urllib.error.HTTPError as err:  # 503 still carries a payload
        return err.code, err.read().decode("utf-8"), err.headers.get("Content-Type", "")


# --------------------------------------------------------------------- #
# strict OpenMetrics parsing
# --------------------------------------------------------------------- #

_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (.+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_openmetrics_strict(text: str) -> "tuple[dict, list[str]]":
    """Parse one exposition; returns (families, problems).

    ``families`` maps family name to ``{"type": kind, "samples":
    [(suffix, labels_dict, value), ...]}``.  ``problems`` collects every
    strictness violation: undeclared sample families, unparseable lines,
    duplicate TYPE lines, non-monotone histogram buckets, and any
    histogram series whose ``+Inf`` bucket disagrees with its ``_count``.
    """
    problems: "list[str]" = []
    if not text.endswith("# EOF\n"):
        problems.append("exposition does not end with '# EOF'")
    families: "dict[str, dict]" = {}
    for line in text.splitlines():
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"malformed TYPE line: {line!r}")
                continue
            _, _, name, kind = parts
            if name in families:
                problems.append(f"duplicate TYPE declaration for {name}")
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"unparseable sample line: {line!r}")
            continue
        sample_name, labels_str, value_str = match.groups()
        family, suffix = sample_name, ""
        if family not in families:
            for candidate in _HIST_SUFFIXES:
                base = sample_name[: -len(candidate)]
                if (
                    sample_name.endswith(candidate)
                    and families.get(base, {}).get("type") == "histogram"
                ):
                    family, suffix = base, candidate
                    break
        if family not in families:
            problems.append(f"sample {sample_name} has no # TYPE declaration")
            continue
        if families[family]["type"] == "histogram" and not suffix:
            problems.append(f"bare sample {sample_name} on histogram family")
            continue
        try:
            value = float(value_str.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            problems.append(f"non-numeric value on {sample_name}: {value_str!r}")
            continue
        labels = dict(_LABEL_RE.findall(labels_str or ""))
        families[family]["samples"].append((suffix, labels, value))

    for name, payload in families.items():
        if payload["type"] != "histogram":
            continue
        problems.extend(_check_histogram(name, payload["samples"]))
    return families, problems


def _check_histogram(name: str, samples: list) -> "list[str]":
    """Cumulative le-buckets monotone, +Inf bucket == _count, _sum present."""
    problems: "list[str]" = []
    series: "dict[tuple, dict]" = {}
    for suffix, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "count": None, "sum": None})
        if suffix == "_bucket":
            le = labels.get("le")
            if le is None:
                problems.append(f"{name}_bucket sample without an le label")
                continue
            entry["buckets"].append((float(le.replace("+Inf", "inf")), value))
        elif suffix == "_count":
            entry["count"] = value
        elif suffix == "_sum":
            entry["sum"] = value
    for key, entry in series.items():
        where = f"{name}{dict(key) or ''}"
        buckets = sorted(entry["buckets"])
        if not buckets or not np.isinf(buckets[-1][0]):
            problems.append(f"{where}: no +Inf bucket")
            continue
        values = [value for _, value in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            problems.append(f"{where}: cumulative buckets decrease: {values}")
        if entry["count"] is None or entry["sum"] is None:
            problems.append(f"{where}: missing _count or _sum")
        elif values[-1] != entry["count"]:
            problems.append(
                f"{where}: +Inf bucket {values[-1]} != _count {entry['count']}"
            )
    return problems


def histogram_count(families: dict, name: str) -> float:
    payload = families.get(name, {"samples": []})
    return sum(value for suffix, _, value in payload["samples"] if suffix == "_count")


def render_cli(argv: "list[str]") -> "tuple[int, str]":
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = repro_cli(argv)
    return code, buffer.getvalue()


# --------------------------------------------------------------------- #
# the scripted service run
# --------------------------------------------------------------------- #


def run_scripted(workdir: Path) -> "tuple":
    """One asyncio run firing all four trigger kinds + mid-run scrapes."""
    clock = TickClock(0.0)
    controller = EpochController(
        fast_ocs_params(N),
        SolsticeScheduler(),
        use_composite_paths=True,
        fast_reroute=True,
        deadline_s=DEADLINE_TICKS,
        deadline_clock=clock,
    )
    arrivals = ScriptedArrivals(
        make_arrivals(), {REROUTE_EPOCH: covering_demand()}
    )
    service = SchedulingService(
        controller,
        arrivals,
        ServiceConfig(
            n_epochs=N_EPOCHS,
            n_workers=2,
            telemetry_port=0,
            incidents_dir=workdir / "incidents",
        ),
    )

    scrapes: "dict[str, tuple]" = {}
    inner_run_epoch = controller.run_epoch

    def scripted_run_epoch(epoch: int = 0):
        # run_epoch enters strictly after epoch-1 epochs were published,
        # so scrapes taken here bracket a deterministic number of
        # observations regardless of runner speed.
        controller.fault_plan = (
            FaultPlan(seed=11, o2m_outage_rate=1.0, m2o_outage_rate=1.0)
            if epoch == REROUTE_EPOCH
            else None
        )
        clock.step = MISS_STEP if epoch == FALLBACK_EPOCH else 0.0
        port = service.telemetry.port
        if epoch == 1:
            scrapes["metrics_first"] = scrape(port, "/metrics")
        if epoch == N_EPOCHS - 1:
            scrapes["metrics_second"] = scrape(port, "/metrics")
            scrapes["healthz"] = scrape(port, "/healthz")
            scrapes["status"] = scrape(port, "/status")
        return inner_run_epoch(epoch)

    controller.run_epoch = scripted_run_epoch

    inner_stage_tasks = service._stage_tasks

    def scripted_stage_tasks(demand: np.ndarray, epoch: int):
        tasks = inner_stage_tasks(demand, epoch)
        if epoch == CRASH_EPOCH:
            tasks.append(
                StageTask(
                    name=f"die:{epoch}",
                    fn=_DIE_ONCE,
                    kwargs={"marker": str(workdir / "die.marker")},
                )
            )
        return tasks

    service._stage_tasks = scripted_stage_tasks

    tracer, registry = obs.JsonlTracer(), obs.MetricsRegistry()
    with obs.observability(tracer=tracer, metrics=registry):
        report = asyncio.run(service.run())
    return report, scrapes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default=None, help="artifact directory (default: mkdtemp)"
    )
    args = parser.parse_args(argv)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="live-telemetry-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    failures: "list[str]" = []

    def check(ok: bool, ok_msg: str, fail_msg: str) -> bool:
        if ok:
            print(f"ok: {ok_msg}")
        else:
            failures.append(f"FAIL: {fail_msg}")
        return ok

    # -- 1. the scripted run: four trigger kinds, scrapes mid-run ---------- #
    report, scrapes = run_scripted(workdir)
    for name, payload in scrapes.items():
        suffix = "txt" if name.startswith("metrics") else "json"
        (workdir / f"{name}.{suffix}").write_text(payload[1])
    check(
        report.drained and report.n_epochs == N_EPOCHS,
        f"scripted run drained after {report.n_epochs} epochs",
        f"scripted run did not drain (n_epochs={report.n_epochs}, "
        f"drained={report.drained})",
    )
    check(
        report.slo_violations == 1,
        "exactly the tick-stepped epoch missed its SLO",
        f"expected 1 SLO violation, got {report.slo_violations}",
    )

    bundles = [Path(p) for p in report.incident_bundles]
    by_kind = {
        kind: [p for p in bundles if kind in p.name] for kind in TRIGGER_KINDS
    }
    check(
        len(bundles) == 4 and all(len(v) == 1 for v in by_kind.values()),
        "flight recorder dumped exactly one bundle per trigger kind",
        f"expected one bundle per kind {list(TRIGGER_KINDS)}, got "
        f"{[p.name for p in bundles]}",
    )

    expectations = {
        TRIGGER_REROUTE: REROUTE_EPOCH,
        TRIGGER_CRASH: CRASH_EPOCH,
        TRIGGER_FALLBACK: FALLBACK_EPOCH,
        TRIGGER_SLO: FALLBACK_EPOCH,
    }
    for kind, epoch in expectations.items():
        if not by_kind.get(kind):
            continue
        bundle = load_incident(by_kind[kind][0])
        frame = bundle["frames"][-1]
        ok = bundle["trigger"] == kind and bundle["epoch"] == epoch
        detail = ""
        if kind == TRIGGER_REROUTE:
            ok = ok and frame["report"]["reroute_swaps"] >= 1
            detail = f"{frame['report']['reroute_swaps']} swap(s)"
        elif kind == TRIGGER_CRASH:
            deaths = frame["worker_deaths"]
            ok = ok and len(deaths) == 1 and deaths[0]["reason"] == "crashed"
            detail = f"pid {deaths[0]['pid']} buried" if deaths else "no deaths"
        elif kind == TRIGGER_FALLBACK:
            ok = ok and frame["report"]["fallback_level"] >= 2
            detail = f"L{frame['report']['fallback_level']}"
        elif kind == TRIGGER_SLO:
            ok = (
                ok
                and frame["outcome"]["slo_violation"]
                and "schedule_deadline" in frame["outcome"]["slo_reasons"]
            )
            detail = ",".join(frame["outcome"]["slo_reasons"])
        check(
            ok,
            f"{kind} bundle pins epoch {epoch} ({detail})",
            f"{kind} bundle wrong: trigger={bundle['trigger']} "
            f"epoch={bundle['epoch']} ({detail})",
        )

    # -- 2. every bundle renders through `repro obs incidents` ------------- #
    code, listing = render_cli(["obs", "incidents", str(workdir / "incidents")])
    check(
        code == 0 and all(p.name in listing for p in bundles),
        f"incident listing renders all {len(bundles)} bundles",
        f"listing exit={code}; missing bundles in output",
    )
    rendered_ok = True
    for path in bundles:
        code, text = render_cli(["obs", "incidents", str(path)])
        kind = next(k for k in TRIGGER_KINDS if k in path.name)
        if code != 0 or f"incident: {kind}" not in text:
            rendered_ok = False
            failures.append(
                f"FAIL: bundle {path.name} did not render (exit={code})"
            )
    if rendered_ok:
        print(f"ok: all {len(bundles)} bundles render individually")

    # -- 3. strict OpenMetrics on both scrapes, advancing histogram -------- #
    counts = {}
    for which in ("metrics_first", "metrics_second"):
        status_code, text, content_type = scrapes.get(which, (0, "", ""))
        families, problems = parse_openmetrics_strict(text)
        check(
            status_code == 200
            and content_type.startswith("application/openmetrics-text")
            and not problems,
            f"/metrics scrape '{which}' is strict OpenMetrics "
            f"({len(families)} families)",
            f"scrape '{which}' invalid (http {status_code}): "
            + "; ".join(problems[:5]),
        )
        counts[which] = histogram_count(families, "service_epoch_latency")
        check(
            families.get("service_epoch_latency", {}).get("type") == "histogram"
            and families.get("service_slo_burn_rate", {}).get("type") == "gauge",
            f"'{which}' exposes service_epoch_latency + burn-rate gauges",
            f"'{which}' missing service families: {sorted(families)}",
        )
    check(
        counts.get("metrics_first") == 1.0
        and counts.get("metrics_second") == float(N_EPOCHS - 1),
        f"service_epoch_latency advanced {counts.get('metrics_first'):.0f} -> "
        f"{counts.get('metrics_second'):.0f} between scrapes",
        f"epoch latency count did not advance as published: {counts}",
    )

    # -- 4. /healthz fresh, /status carries the live state ----------------- #
    health_code, health_text, _ = scrapes.get("healthz", (0, "{}", ""))
    health = json.loads(health_text)
    check(
        health_code == 200 and health.get("status") == "ok",
        "mid-run /healthz is 200 ok on the fresh heartbeat",
        f"healthz http {health_code}: {health}",
    )
    status = json.loads(scrapes.get("status", (0, "{}", ""))[1])
    workers = status.get("workers") or {}
    incidents = status.get("incidents") or {}
    check(
        status.get("epochs_done") == N_EPOCHS - 1
        and status.get("draining") is False
        and workers.get("alive") == 2
        and workers.get("deaths") == 1
        and incidents.get("bundles_written") == 4,
        "mid-run /status reports epochs, the buried worker, and 4 bundles",
        f"status payload wrong: {status}",
    )
    burn = status.get("slo_burn_rate", {})
    check(
        burn.get("1m", 0.0) > 0.0,
        f"the SLO miss burns the 1m window ({burn.get('1m', 0.0):.0%})",
        f"1m burn rate did not move after the SLO miss: {burn}",
    )

    # -- 5. telemetry on == telemetry off, bit-identically ------------------ #
    def run_identity(telemetry: bool):
        service = SchedulingService(
            EpochController(
                fast_ocs_params(N), SolsticeScheduler(), use_composite_paths=True
            ),
            make_arrivals(seed=13),
            ServiceConfig(
                n_epochs=4,
                n_workers=0,
                telemetry_port=0 if telemetry else None,
                incidents_dir=(workdir / "identity-incidents") if telemetry else None,
            ),
        )
        return service.run_sync()

    plain, live = run_identity(False), run_identity(True)
    check(
        [asdict(r) for r in live.reports] == [asdict(r) for r in plain.reports],
        "run with the full telemetry plane on is bit-identical to plane off",
        "telemetry-on run diverged from the untelemetered run",
    )

    if failures:
        for message in failures:
            print(message, file=sys.stderr)
        (workdir / "live_telemetry_summary.json").write_text(
            json.dumps(
                {
                    "failures": failures,
                    "bundles": [p.name for p in bundles],
                    "slo_violations": report.slo_violations,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"diagnostics written to {workdir}", file=sys.stderr)
        return 1

    print(
        f"live telemetry smoke OK: {len(bundles)} incident bundles (one per "
        f"trigger kind) all render, /metrics strict-parsed with "
        f"service_epoch_latency {counts['metrics_first']:.0f} -> "
        f"{counts['metrics_second']:.0f}, 1m burn {burn['1m']:.0%}, "
        f"telemetry-off runs bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
