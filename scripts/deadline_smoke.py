#!/usr/bin/env python
"""CI smoke for deadline-aware anytime scheduling: a tight budget on a fake
clock must degrade gracefully, never invalidly.

Scenario (the tentpole acceptance criteria of the deadline work):

1. unbounded identity — an :class:`~repro.service.deadline.AnytimeScheduler`
   with ``deadline_s=None`` and one with an infinite budget on a
   :class:`~repro.service.deadline.TickClock` (so every checkpoint call
   site actually fires) must both be bit-identical to the unwrapped
   :class:`~repro.core.scheduler.CpSwitchScheduler`;
2. a bounded :class:`~repro.analysis.controller.EpochController` on a
   ``TickClock`` (budget exhaustion = checkpoint count, deterministic on
   any runner) runs several bursty epochs with backpressure armed: every
   epoch must yield a valid schedule whose simulation conservation ledger
   balances, the controller's admission ledger (offered = admitted + shed
   + parked) must balance, and the run must record at least one mid-ladder
   fallback (L1 truncation, L2 warm reuse, or L3 TDM — not just L0/L4);
3. warm reuse is exercised explicitly: freeze the clock for one full
   schedule, then re-tighten it so the next call exhausts before the first
   slice and must re-interpret the remembered schedule (L2, age 1);
4. on any failure, dump the fallback ledger and a traced re-run into
   ``--workdir`` for the uploaded CI artifact.

Exit code 0 = pass.  Used by CI (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.analysis.controller import EpochController  # noqa: E402
from repro.core.config import FilterConfig  # noqa: E402
from repro.core.scheduler import CpSwitchScheduler  # noqa: E402
from repro.hybrid.solstice import SolsticeScheduler  # noqa: E402
from repro.service.deadline import (  # noqa: E402
    FALLBACK_TDM,
    FALLBACK_TRUNCATED,
    FALLBACK_WARM_REUSE,
    AnytimeScheduler,
    TickClock,
)
from repro.switch.params import fast_ocs_params  # noqa: E402

N = 16
FILTER = FilterConfig(fanout_threshold=4, volume_threshold=2.0)


def covering_demand() -> np.ndarray:
    """See tests/test_reroute.py — the validated covering workload."""
    demand = np.zeros((N, N))
    demand[0, 1:9] = 1.0
    demand[9:14, 1:9] = 1.0
    demand[14, 15] = 40.0
    return demand


def make_scheduler() -> CpSwitchScheduler:
    return CpSwitchScheduler(SolsticeScheduler(), filter_config=FILTER)


def schedules_identical(a, b) -> bool:
    if len(a.entries) != len(b.entries):
        return False
    for entry_a, entry_b in zip(a.entries, b.entries):
        if not (
            np.array_equal(entry_a.regular, entry_b.regular)
            and entry_a.duration == entry_b.duration
            and np.array_equal(entry_a.composite_served, entry_b.composite_served)
            and entry_a.o2m_port == entry_b.o2m_port
            and entry_a.m2o_port == entry_b.m2o_port
        ):
            return False
    return np.array_equal(a.filtered_residual, b.filtered_residual)


def bursty_arrivals(epoch: int) -> np.ndarray:
    rng = np.random.default_rng(7000 + epoch)
    demand = rng.uniform(0.0, 2.0, size=(N, N)) * (rng.random((N, N)) < 0.3)
    np.fill_diagonal(demand, 0.0)
    demand[epoch % N, (epoch + 1) % N] += 25.0
    return demand


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default=None, help="artifact directory (default: mkdtemp)"
    )
    parser.add_argument(
        "--epochs", type=int, default=6, help="bounded-controller epochs to run"
    )
    args = parser.parse_args(argv)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="deadline-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    params = fast_ocs_params(N)
    demand = covering_demand()
    failures: "list[str]" = []

    def check(ok: bool, ok_msg: str, fail_msg: str) -> bool:
        if ok:
            print(f"ok: {ok_msg}")
        else:
            failures.append(f"FAIL: {fail_msg}")
        return ok

    # -- 1. unbounded identity -------------------------------------------- #
    plain = make_scheduler().schedule(demand, params)
    unwrapped = AnytimeScheduler(make_scheduler()).schedule(demand, params)
    check(
        schedules_identical(plain, unwrapped),
        "deadline_s=None wrapper bit-identical to unwrapped scheduler",
        "deadline_s=None wrapper diverged from the unwrapped scheduler",
    )
    infinite = AnytimeScheduler(
        make_scheduler(), deadline_s=float("inf"), clock=TickClock(step=1.0)
    )
    check(
        schedules_identical(plain, infinite.schedule(demand, params)),
        "infinite budget (all checkpoints armed) bit-identical to unwrapped",
        "infinite budget diverged from the unwrapped scheduler",
    )
    check(
        infinite.last_outcome is not None and bool(infinite.last_outcome.checkpoints),
        f"{len(infinite.last_outcome.checkpoints)} checkpoints fired under "
        "the infinite budget",
        "infinite budget recorded no checkpoints: the budget was not installed",
    )

    # -- 2. bounded controller: valid every epoch, mid-ladder observed ----- #
    def run_bounded(deadline_s: float) -> "tuple[dict, EpochController]":
        controller = EpochController(
            fast_ocs_params(N),
            SolsticeScheduler(),
            use_composite_paths=True,
            epoch_duration=0.5,
            deadline_s=deadline_s,
            deadline_clock=TickClock(step=1.0),
            max_backlog=60.0,
            overflow_policy="shed",
        )
        histogram: "dict[int, int]" = {}
        for epoch in range(args.epochs):
            controller.offer(bursty_arrivals(epoch))
            report, result = controller.run_epoch(epoch)
            try:
                result.check_conservation()
            except AssertionError as exc:
                failures.append(
                    f"FAIL: deadline {deadline_s:g} epoch {epoch} conservation "
                    f"violated: {exc}"
                )
            histogram[report.fallback_level] = (
                histogram.get(report.fallback_level, 0) + 1
            )
        try:
            controller.check_conservation()
            print(
                f"ok: deadline {deadline_s:g} admission ledger balances "
                f"(shed {controller.shed_volume_total:.2f} Mb, "
                f"parked {controller.parked_volume:.2f} Mb)"
            )
        except AssertionError as exc:
            failures.append(
                f"FAIL: deadline {deadline_s:g} admission ledger broken: {exc}"
            )
        return histogram, controller

    histogram, _ = run_bounded(6.5)
    tight_histogram, _ = run_bounded(2.5)
    merged = dict(histogram)
    for level, count in tight_histogram.items():
        merged[level] = merged.get(level, 0) + count
    pretty = " ".join(f"L{level}x{merged[level]}" for level in sorted(merged))
    mid_ladder = {FALLBACK_TRUNCATED, FALLBACK_WARM_REUSE, FALLBACK_TDM}
    check(
        any(level in mid_ladder for level in merged),
        f"mid-ladder fallback observed ({pretty})",
        f"no L1-L3 fallback recorded across {2 * args.epochs} bounded epochs "
        f"({pretty}): the ladder never engaged",
    )

    # -- 3. warm reuse (L2) ------------------------------------------------ #
    clock = TickClock(step=0.0)
    anytime = AnytimeScheduler(make_scheduler(), deadline_s=2.5, clock=clock)
    anytime.schedule(demand, params)  # frozen clock: full schedule, remembered
    clock.step = 1.0
    reused = anytime.schedule(demand, params)
    outcome = anytime.last_outcome
    if check(
        outcome.fallback_level == FALLBACK_WARM_REUSE
        and outcome.schedule_age_epochs == 1,
        f"warm reuse engaged (age {outcome.schedule_age_epochs}, "
        f"{len(reused.entries)} configs)",
        f"expected L2 age 1, got L{outcome.fallback_level} "
        f"age {outcome.schedule_age_epochs}",
    ):
        from repro.sim import simulate_cp

        try:
            simulate_cp(demand, reused, params).check_conservation()
            print("ok: warm-reused schedule conservation ledger balances")
        except AssertionError as exc:
            failures.append(f"FAIL: warm-reused schedule conservation: {exc}")

    if failures:
        for message in failures:
            print(message, file=sys.stderr)
        # Leave a scene of the crime: the ledger plus a traced bounded run.
        tracer, registry = obs.JsonlTracer(), obs.MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            run_bounded(6.5)
        trace_path = workdir / "deadline_trace.jsonl"
        tracer.dump(
            trace_path,
            meta={"command": "deadline_smoke"},
            metrics_snapshot=registry.snapshot(),
        )
        summary = {"fallback_histogram": pretty, "failures": failures}
        (workdir / "deadline_summary.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        print(f"diagnostic trace written to {trace_path}", file=sys.stderr)
        return 1

    print(
        f"deadline smoke OK: unbounded runs bit-identical, every bounded epoch "
        f"valid and conservation-clean, fallback ladder {pretty}, warm reuse "
        f"age 1 verified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
