#!/usr/bin/env python
"""CI smoke for fast-reroute: kill a composite port mid-epoch, demand recovery.

Scenario (the tentpole acceptance criterion of the fast-reroute work):

1. schedule the covering workload — every filtered entry lies on both a
   granted one-to-many row and a granted many-to-one column, so surviving
   grants can re-serve a dead path's orphans — and precompute the
   :class:`~repro.faults.reroute.BackupSet`;
2. kill one *granted* many-to-one composite port deterministically (a null
   fault plan plus ``mark_dead``: no entropy, the outage is discovered at
   the port's first grant, mid-schedule);
3. execute the same schedule twice under the same kill, horizon = the
   schedule's makespan: once degrading to EPS (seed behaviour), once with
   the backups armed;
4. assert recovery took less than one phase (δ + the longest hold), that
   fast-reroute stranded strictly less volume than degrade-to-EPS, that
   both conservation ledgers balance, and that a fault-free run with
   backups armed is bit-identical to one without;
5. on any failure, dump a traced re-run of the reroute arm (span JSONL +
   metrics snapshot) into ``--workdir`` for the uploaded CI artifact.

Exit code 0 = pass.  Used by CI (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.config import FilterConfig  # noqa: E402
from repro.core.scheduler import CpSwitchScheduler  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.faults.reroute import BackupPlanner, backup_key  # noqa: E402
from repro.hybrid.solstice import SolsticeScheduler  # noqa: E402
from repro.sim import simulate_cp  # noqa: E402
from repro.switch.params import fast_ocs_params  # noqa: E402

N = 16


def covering_demand() -> np.ndarray:
    """See tests/test_reroute.py — the validated covering workload."""
    demand = np.zeros((N, N))
    demand[0, 1:9] = 1.0
    demand[9:14, 1:9] = 1.0
    demand[14, 15] = 40.0
    return demand


def killer(kind: str, port: int):
    injector = FaultPlan().injector(N)
    injector.mark_dead(kind, [port])
    return injector


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default=None, help="artifact directory (default: mkdtemp)"
    )
    args = parser.parse_args(argv)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="reroute-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    params = fast_ocs_params(N)
    demand = covering_demand()
    scheduler = CpSwitchScheduler(
        SolsticeScheduler(),
        filter_config=FilterConfig(fanout_threshold=4, volume_threshold=2.0),
    )
    cp_schedule = scheduler.schedule(demand, params)
    backups = BackupPlanner(scheduler).plan(demand, cp_schedule, params)
    granted_m2o = sorted(p for kind, p in backups.per_port if kind == "m2o")
    if not granted_m2o:
        print("FAIL: covering workload granted no m2o composite port", file=sys.stderr)
        return 1
    kill = ("m2o", granted_m2o[0])
    horizon = cp_schedule.makespan
    print(
        f"primary schedule: {len(cp_schedule.entries)} configs, "
        f"makespan {horizon:.3f} ms, {backups.n_armed} backups armed "
        f"(planned in {backups.plan_seconds * 1e3:.2f} ms); "
        f"killing {backup_key(*kill)} mid-epoch"
    )

    failures: "list[str]" = []

    def check(ok: bool, ok_msg: str, fail_msg: str) -> bool:
        if ok:
            print(f"ok: {ok_msg}")
        else:
            failures.append(f"FAIL: {fail_msg}")
        return ok

    degrade = simulate_cp(
        demand, cp_schedule, params, horizon=horizon, faults=killer(*kill)
    )
    reroute = simulate_cp(
        demand,
        cp_schedule,
        params,
        horizon=horizon,
        faults=killer(*kill),
        backups=backups,
    )
    for label, result in (("degrade", degrade), ("reroute", reroute)):
        try:
            result.check_conservation()
            print(f"ok: {label} conservation ledger balances")
        except AssertionError as exc:
            failures.append(f"FAIL: {label} conservation violated: {exc}")

    outcome = reroute.reroute
    if check(
        outcome is not None and outcome.n_swaps == 1,
        "one swap fired",
        f"expected exactly one swap, got "
        f"{outcome.n_swaps if outcome else 'no outcome'}",
    ):
        swap = outcome.swaps[0]
        print(
            f"    {swap.key} detected at {swap.detected_ms:.3f} ms, "
            f"re-parked {outcome.reparked_mb:.2f} Mb"
        )
        max_phase = params.reconfig_delay + max(
            entry.duration for entry in cp_schedule.entries
        )
        check(
            0.0 <= outcome.recovery_ms < max_phase,
            f"recovery {outcome.recovery_ms:.3f} ms < one phase ({max_phase:.3f} ms)",
            f"recovery took {outcome.recovery_ms:.3f} ms, not under one phase "
            f"({max_phase:.3f} ms)",
        )

    delta = degrade.stranded_volume - reroute.stranded_volume
    check(
        delta > 1e-9,
        f"stranded {reroute.stranded_volume:.3f} Mb vs degrade "
        f"{degrade.stranded_volume:.3f} Mb (saved {delta:.3f} Mb)",
        f"fast-reroute stranded {reroute.stranded_volume:.3f} Mb, not strictly "
        f"less than degrade-to-EPS {degrade.stranded_volume:.3f} Mb",
    )

    plain = simulate_cp(demand, cp_schedule, params)
    armed = simulate_cp(
        demand, cp_schedule, params, faults=FaultPlan(), backups=backups
    )
    check(
        np.array_equal(plain.finish_times, armed.finish_times, equal_nan=True)
        and plain.served_eps == armed.served_eps
        and plain.served_composite == armed.served_composite,
        "fault-free run with backups armed is bit-identical to seed",
        "fault-free run with backups armed diverged from seed",
    )

    if failures:
        for message in failures:
            print(message, file=sys.stderr)
        # Leave a scene of the crime: a traced re-run of the reroute arm.
        tracer, registry = obs.JsonlTracer(), obs.MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            traced = simulate_cp(
                demand,
                cp_schedule,
                params,
                horizon=horizon,
                faults=killer(*kill),
                backups=backups,
            )
        trace_path = workdir / "reroute_trace.jsonl"
        tracer.dump(
            trace_path,
            meta={"command": "reroute_smoke", "kill": backup_key(*kill)},
            metrics_snapshot=registry.snapshot(),
        )
        summary = {
            "kill": backup_key(*kill),
            "degrade_stranded": degrade.stranded_volume,
            "reroute_stranded": reroute.stranded_volume,
            "outcome": traced.reroute.to_dict() if traced.reroute else None,
            "failures": failures,
        }
        (workdir / "reroute_summary.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        print(f"diagnostic trace written to {trace_path}", file=sys.stderr)
        return 1

    print(
        f"fast-reroute smoke OK: 1 swap, recovery {outcome.recovery_ms:.3f} ms, "
        f"{delta:.3f} Mb less stranded than degrade-to-EPS, "
        f"fault-free runs bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
