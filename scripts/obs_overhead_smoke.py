#!/usr/bin/env python
"""CI smoke for the observability layer: correctness + off-path overhead.

Two guarantees, asserted on one schedule+simulate pair (h-Switch and
cp-Switch, the Figure 5 skewed workload):

1. **Bit-identity** — a run with tracing *enabled* produces simulation
   results identical (per :func:`repro.analysis.perf.assert_results_equivalent`)
   to a run with the default null backends.  The traced run's span JSONL is
   written to ``--workdir`` before any assertion, so CI can upload it as an
   artifact when this script fails.

2. **<2% overhead with tracing off** — the null path must stay negligible.
   A bare wall-clock A/B of the same pipeline is hopeless in shared CI
   (run-to-run noise on this workload is itself a few percent), so the
   bound is computed from first principles instead: count every
   observability hook the pipeline actually hits with the backends off
   (``active()`` guards and ``profiled()`` blocks), microbenchmark the
   per-hit cost of each null hook in isolation, and assert::

       hits_active * cost(active) + hits_profiled * cost(profiled)
           < max_overhead * pipeline_wall_time

   This is stable (both factors are nearly noise-free) and meaningful (it
   bounds exactly the work the instrumentation added to the off path).

Usage::

    python scripts/obs_overhead_smoke.py --radix 32 --workdir obs-artifacts
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.analysis.figures import DEFAULT_SEED, params_for  # noqa: E402
from repro.analysis.perf import assert_results_equivalent  # noqa: E402
from repro.core.scheduler import CpSwitchScheduler  # noqa: E402
from repro.hybrid.solstice import SolsticeScheduler  # noqa: E402
from repro.sim import simulate_cp, simulate_hybrid  # noqa: E402
from repro.utils.rng import spawn_rngs  # noqa: E402
from repro.workloads.skewed import SkewedWorkload  # noqa: E402


def _pipeline(demand, params):
    """One full h + cp schedule/simulate pair; returns both results."""
    scheduler = SolsticeScheduler()
    h_result = simulate_hybrid(demand, scheduler.schedule(demand, params), params)
    cp_schedule = CpSwitchScheduler(scheduler).schedule(demand, params)
    cp_result = simulate_cp(demand, cp_schedule, params)
    return h_result, cp_result


def _count_hooks(demand, params) -> "dict[str, int]":
    """Run the pipeline with counting shims over the null-path hooks."""
    counts = {"active": 0, "profiled": 0}
    real_active = obs.active
    real_profiled = obs.profiled

    def counting_active():
        counts["active"] += 1
        return real_active()

    @contextmanager
    def counting_profiled(name, **attrs):
        counts["profiled"] += 1
        with real_profiled(name, **attrs) as span:
            yield span

    obs.active = counting_active
    obs.profiled = counting_profiled
    try:
        _pipeline(demand, params)
    finally:
        obs.active = real_active
        obs.profiled = real_profiled
    return counts


def _per_call_cost(fn, calls: int = 200_000) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


def _null_profiled_once() -> None:
    with obs.profiled("smoke.null"):
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--radix", type=int, default=32)
    parser.add_argument("--ocs", choices=("fast", "slow"), default="fast")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.02,
        help="allowed off-path overhead fraction (default: 0.02)",
    )
    parser.add_argument(
        "--workdir",
        default="obs-smoke-artifacts",
        help="directory for the traced run's span JSONL",
    )
    args = parser.parse_args(argv)

    params = params_for(args.ocs, args.radix)
    workload = SkewedWorkload.for_params(params)
    (rng,) = spawn_rngs(args.seed, 1)
    demand = workload.generate(params.n_ports, rng).demand
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    trace_path = workdir / "smoke_trace.jsonl"

    assert not obs.active(), "observability must be off by default"

    # --- untraced pipeline: results + wall time (min over repeats) -----
    wall = float("inf")
    for _ in range(max(1, args.repeats)):
        start = time.perf_counter()
        h_plain, cp_plain = _pipeline(demand, params)
        wall = min(wall, time.perf_counter() - start)

    # --- traced pipeline: dump the trace BEFORE asserting identity -----
    tracer, registry = obs.JsonlTracer(), obs.MetricsRegistry()
    with obs.observability(tracer=tracer, metrics=registry):
        h_traced, cp_traced = _pipeline(demand, params)
    tracer.dump(
        trace_path,
        meta={"command": "obs_overhead_smoke", "radix": args.radix},
        metrics_snapshot=registry.snapshot(),
    )
    print(f"traced run: span JSONL written to {trace_path}")
    assert_results_equivalent(h_plain, h_traced, context="h-Switch traced-vs-untraced")
    assert_results_equivalent(cp_plain, cp_traced, context="cp-Switch traced-vs-untraced")
    print("bit-identity: traced == untraced for h-Switch and cp-Switch")

    # --- off-path overhead bound ---------------------------------------
    counts = _count_hooks(demand, params)
    cost_active = _per_call_cost(obs.active)
    cost_profiled = _per_call_cost(_null_profiled_once)
    overhead = counts["active"] * cost_active + counts["profiled"] * cost_profiled
    fraction = overhead / wall
    print(
        f"off-path hooks: {counts['active']} active() @ {cost_active * 1e9:.0f}ns, "
        f"{counts['profiled']} profiled() @ {cost_profiled * 1e9:.0f}ns"
    )
    print(
        f"bounded overhead {overhead * 1e3:.3f}ms over {wall * 1e3:.1f}ms pipeline "
        f"= {fraction * 100:.3f}% (budget {args.max_overhead * 100:.1f}%)"
    )
    if fraction >= args.max_overhead:
        print("FAIL: observability off-path overhead exceeds the budget", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
