#!/usr/bin/env python
"""CI smoke for the asyncio scheduling service: sharded epochs on warm
workers, tick-clock deadlines, balanced ledgers, clean drain, and a
heartbeat whose liveness survives a wall-clock step.

Scenario (the acceptance criteria of the service-loop work):

1. sync-driver identity — :meth:`SchedulingService.run_sync` must produce
   reports bit-identical to :meth:`EpochController.run` on the same
   arrival process;
2. the asyncio driver serves several epochs with auxiliary stages sharded
   across a **warm** :class:`~repro.runner.pool.WorkerPool`: at least one
   epoch must land stages on >= 2 distinct worker pids, every shard pid
   must belong to the pool's stable pid set (no fork-per-stage), every
   stage must succeed, and the run must drain cleanly;
3. a deadline-bounded controller on a :class:`TickClock` (budget
   exhaustion = checkpoint count, deterministic on any runner) is driven
   into sustained overload: every epoch must miss its deadline and be
   counted as an SLO violation, overflow must land in the shed ledger,
   and the admission ledger (offered = admitted + shed + parked) must
   balance — the service audits it on every run;
4. the service heartbeat must carry the monotonic-tick fields and its
   idleness judged through the production reader must *not* go stale
   under a simulated +1h wall-clock jump (while the legacy wall-clock
   judgement would — demonstrating the fix is load-bearing);
5. on any failure, dump a traced service run into ``--workdir`` for the
   uploaded CI artifact.

Exit code 0 = pass.  Used by CI (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.analysis.controller import EpochController  # noqa: E402
from repro.hybrid.solstice import SolsticeScheduler  # noqa: E402
from repro.obs.watch import _elapsed_s, _stale_horizon_s  # noqa: E402
from repro.runner.heartbeat import heartbeat_dir, read_heartbeats  # noqa: E402
from repro.runner.journal import RunJournal  # noqa: E402
from repro.service import SchedulingService, ServiceConfig, TickClock  # noqa: E402
from repro.switch.params import fast_ocs_params  # noqa: E402
from repro.workloads.arrivals import WorkloadArrivals  # noqa: E402
from repro.workloads.skewed import SkewedWorkload  # noqa: E402

N = 16


def make_arrivals(intensity: float = 0.5) -> WorkloadArrivals:
    return WorkloadArrivals(SkewedWorkload(), n_ports=N, seed=11, intensity=intensity)


def make_controller(**overrides) -> EpochController:
    overrides.setdefault("params", fast_ocs_params(N))
    overrides.setdefault("scheduler", SolsticeScheduler())
    overrides.setdefault("use_composite_paths", True)
    overrides.setdefault("epoch_duration", 50.0)
    return EpochController(**overrides)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", default=None, help="artifact directory (default: mkdtemp)"
    )
    parser.add_argument(
        "--epochs", type=int, default=4, help="epochs per service run"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="warm pool size for the sharded run"
    )
    args = parser.parse_args(argv)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="service-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    failures: "list[str]" = []

    def check(ok: bool, ok_msg: str, fail_msg: str) -> bool:
        if ok:
            print(f"ok: {ok_msg}")
        else:
            failures.append(f"FAIL: {fail_msg}")
        return ok

    # -- 1. sync-driver identity ------------------------------------------- #
    arrivals = make_arrivals()
    reference = make_controller().run(arrivals, args.epochs)
    sync_report = SchedulingService(
        make_controller(), arrivals, ServiceConfig(n_epochs=args.epochs, n_workers=0)
    ).run_sync()
    check(
        sync_report.reports == reference,
        f"sync driver bit-identical to EpochController.run over {args.epochs} epochs",
        "sync driver diverged from EpochController.run",
    )

    # -- 2. sharded epochs on warm workers, clean drain --------------------- #
    journal = RunJournal(workdir / "service.jsonl")

    def run_sharded() -> "tuple":
        service = SchedulingService(
            make_controller(journal=journal),
            make_arrivals(),
            ServiceConfig(n_epochs=args.epochs, n_workers=args.workers),
        )
        return service, asyncio.run(service.run())

    _service, report = run_sharded()
    check(
        report.drained and not report.stopped_early,
        f"asyncio driver drained cleanly after {report.n_epochs} epochs",
        f"run did not drain (drained={report.drained}, "
        f"stopped_early={report.stopped_early})",
    )
    check(
        len(report.worker_pids) >= 2 and report.worker_deaths == 0,
        f"warm pool held {len(report.worker_pids)} workers, zero deaths",
        f"expected >= 2 stable workers, got pids={report.worker_pids} "
        f"deaths={report.worker_deaths}",
    )
    shard_ok = all(
        set(outcome.shard_pids) <= set(report.worker_pids)
        and outcome.stage_failures == 0
        for outcome in report.outcomes
    )
    check(
        shard_ok,
        "every sharded stage succeeded on a warm pool pid",
        "a stage failed or ran outside the warm pool's pid set",
    )
    spread = max((len(o.shard_pids) for o in report.outcomes), default=0)
    check(
        spread >= 2,
        f"an epoch sharded its stages across {spread} distinct worker processes",
        f"no epoch used >= 2 workers (max spread {spread})",
    )
    arm_counts = sorted(len(o.arms) for o in report.outcomes)
    check(
        all(count >= 3 for count in arm_counts),
        f"each epoch returned {arm_counts[0]}+ stage payloads "
        "(scheduler arms + backup plan)",
        f"missing stage payloads: per-epoch arm counts {arm_counts}",
    )

    # -- 3. tick-clock deadlines: overload sheds, ledger balances ----------- #
    overloaded = make_controller(
        epoch_duration=1.0,
        deadline_s=0.5,
        deadline_clock=TickClock(step=10.0),
        max_backlog=20.0,
        overflow_policy="shed",
        backpressure_after_misses=1,
    )
    service = SchedulingService(
        overloaded,
        make_arrivals(intensity=4.0),
        ServiceConfig(n_epochs=6, n_workers=0),
    )
    overload_report = asyncio.run(service.run())
    check(
        all(o.report.deadline_hit for o in overload_report.outcomes)
        and overload_report.slo_violations == overload_report.n_epochs,
        f"all {overload_report.n_epochs} overloaded epochs missed the tick-clock "
        "deadline and were counted as SLO violations",
        f"expected every epoch to miss; slo_violations="
        f"{overload_report.slo_violations}/{overload_report.n_epochs}",
    )
    check(
        overload_report.shed_mb > 0.0,
        f"backpressure shed {overload_report.shed_mb:.1f} Mb into the ledger",
        "sustained overload shed nothing: backpressure never engaged",
    )
    try:
        overloaded.check_conservation()
        print(
            f"ok: admission ledger balances under overload "
            f"(admitted {overload_report.admitted_mb:.1f} Mb, "
            f"shed {overload_report.shed_mb:.1f} Mb, "
            f"parked {overload_report.parked_mb:.1f} Mb)"
        )
    except AssertionError as exc:
        failures.append(f"FAIL: overload admission ledger broken: {exc}")

    # -- 4. heartbeat liveness survives a wall-clock step ------------------- #
    beats = read_heartbeats(heartbeat_dir(journal.path))
    beat = beats.get("service")
    if check(
        beat is not None
        and isinstance(beat.get("last_progress_mono"), float)
        and isinstance(beat.get("started_at_mono"), float),
        "service heartbeat written with monotonic tick fields",
        f"service heartbeat missing monotonic fields: {sorted(beats)}",
    ):
        horizon = _stale_horizon_s(beat)
        jumped_wall = time.time() + 3600.0
        idle_mono = _elapsed_s(
            beat, "last_progress_mono", "last_progress", jumped_wall, time.monotonic()
        )
        idle_wall = max(0.0, jumped_wall - float(beat["last_progress"]))
        check(
            idle_mono <= horizon < idle_wall,
            f"+1h wall jump: monotonic idleness {idle_mono:.1f}s stays live "
            f"(wall-clock judgement would read {idle_wall:.0f}s and flag STALE)",
            f"staleness not judged on the monotonic tick "
            f"(idle_mono={idle_mono:.1f}s, horizon={horizon:.1f}s)",
        )

    if failures:
        for message in failures:
            print(message, file=sys.stderr)
        # Leave a scene of the crime: a traced sharded run for the artifact.
        tracer, registry = obs.JsonlTracer(), obs.MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            run_sharded()
        trace_path = workdir / "service_trace.jsonl"
        tracer.dump(
            trace_path,
            meta={"command": "service_smoke"},
            metrics_snapshot=registry.snapshot(),
        )
        (workdir / "service_summary.json").write_text(
            json.dumps({"failures": failures}, indent=2) + "\n"
        )
        print(f"diagnostic trace written to {trace_path}", file=sys.stderr)
        return 1

    print(
        f"service smoke OK: sync driver bit-identical, {report.n_epochs} epochs "
        f"sharded across {len(report.worker_pids)} warm workers with clean drain, "
        f"overload shed {overload_report.shed_mb:.1f} Mb with balanced ledgers, "
        f"heartbeat liveness monotonic"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
