"""Round-trip tests for schedule/result serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentConfig, run_comparison
from repro.analysis.io import (
    comparison_to_dict,
    cp_schedule_from_dict,
    cp_schedule_to_dict,
    load_json,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.workloads.skewed import SkewedWorkload


@pytest.fixture
def params():
    return fast_ocs_params(16)


@pytest.fixture
def h_schedule(params, skewed_demand16):
    return SolsticeScheduler().schedule(skewed_demand16, params)


@pytest.fixture
def cp_schedule(params, skewed_demand16):
    return CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand16, params)


class TestScheduleRoundTrip:
    def test_dict_round_trip(self, h_schedule):
        restored = schedule_from_dict(schedule_to_dict(h_schedule))
        assert restored.n_configs == h_schedule.n_configs
        assert restored.reconfig_delay == h_schedule.reconfig_delay
        for a, b in zip(restored, h_schedule):
            assert a.duration == pytest.approx(b.duration)
            np.testing.assert_array_equal(a.permutation, b.permutation)

    def test_simulation_equivalence(self, params, skewed_demand16, h_schedule):
        restored = schedule_from_dict(schedule_to_dict(h_schedule))
        original = simulate_hybrid(skewed_demand16, h_schedule, params)
        replayed = simulate_hybrid(skewed_demand16, restored, params)
        assert replayed.completion_time == pytest.approx(original.completion_time)

    def test_file_round_trip(self, tmp_path, h_schedule):
        path = save_json(schedule_to_dict(h_schedule), tmp_path / "schedule.json")
        restored = schedule_from_dict(load_json(path))
        assert restored.n_configs == h_schedule.n_configs

    def test_empty_schedule(self):
        from repro.hybrid.schedule import Schedule

        empty = Schedule(entries=(), reconfig_delay=0.02)
        restored = schedule_from_dict(schedule_to_dict(empty))
        assert restored.n_configs == 0

    def test_type_mismatch_rejected(self, h_schedule):
        payload = schedule_to_dict(h_schedule)
        payload["type"] = "other"
        with pytest.raises(ValueError):
            schedule_from_dict(payload)

    def test_version_mismatch_rejected(self, h_schedule):
        payload = schedule_to_dict(h_schedule)
        payload["format"] = 99
        with pytest.raises(ValueError, match=r"unsupported schedule format v99 \(expected v1\)"):
            schedule_from_dict(payload)

    def test_missing_version_rejected_with_clear_message(self, h_schedule):
        payload = schedule_to_dict(h_schedule)
        del payload["format"]
        with pytest.raises(ValueError, match="no version field"):
            schedule_from_dict(payload)


class TestCpScheduleRoundTrip:
    def test_dict_round_trip(self, cp_schedule):
        restored = cp_schedule_from_dict(cp_schedule_to_dict(cp_schedule))
        assert restored.n_configs == cp_schedule.n_configs
        np.testing.assert_allclose(
            restored.reduction.reduced, cp_schedule.reduction.reduced
        )
        np.testing.assert_allclose(
            restored.filtered_residual, cp_schedule.filtered_residual
        )
        for a, b in zip(restored.entries, cp_schedule.entries):
            assert a.o2m_port == b.o2m_port
            assert a.m2o_port == b.m2o_port
            np.testing.assert_allclose(a.composite_served, b.composite_served)

    def test_simulation_equivalence(self, params, skewed_demand16, cp_schedule):
        restored = cp_schedule_from_dict(cp_schedule_to_dict(cp_schedule))
        original = simulate_cp(skewed_demand16, cp_schedule, params)
        replayed = simulate_cp(skewed_demand16, restored, params)
        assert replayed.completion_time == pytest.approx(original.completion_time)
        assert replayed.served_composite == pytest.approx(original.served_composite)

    def test_file_round_trip(self, tmp_path, cp_schedule):
        path = save_json(cp_schedule_to_dict(cp_schedule), tmp_path / "cp.json")
        restored = cp_schedule_from_dict(load_json(path))
        assert restored.reduction.fanout_threshold == cp_schedule.reduction.fanout_threshold


class TestComparisonSerialization:
    def test_flattens_all_metrics(self):
        params = fast_ocs_params(16)
        result = run_comparison(
            ExperimentConfig(
                workload=SkewedWorkload.for_params(params),
                params=params,
                scheduler="solstice",
                n_trials=1,
                seed=0,
            )
        )
        payload = comparison_to_dict(result)
        assert payload["n_ports"] == 16
        assert payload["h"]["completion_total"]["count"] == 1
        assert payload["cp"]["configs"]["mean"] <= payload["h"]["configs"]["mean"]

    def test_json_serializable(self, tmp_path):
        params = fast_ocs_params(16)
        result = run_comparison(
            ExperimentConfig(
                workload=SkewedWorkload.for_params(params),
                params=params,
                scheduler="solstice",
                n_trials=1,
                seed=0,
            )
        )
        path = save_json(comparison_to_dict(result), tmp_path / "cmp.json")
        assert load_json(path)["type"] == "comparison"
