"""Tests for the ASCII trace rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.trace import (
    render_gantt,
    render_service_profile,
    schedule_timeline,
)
from repro.switch.params import fast_ocs_params


def two_config_schedule() -> Schedule:
    perm_a = np.zeros((4, 4), dtype=np.int8)
    perm_a[0, 1] = 1
    perm_b = np.zeros((4, 4), dtype=np.int8)
    perm_b[1, 0] = 1
    return Schedule(
        entries=(
            ScheduleEntry(permutation=perm_a, duration=0.5),
            ScheduleEntry(permutation=perm_b, duration=0.3),
        ),
        reconfig_delay=0.1,
    )


class TestScheduleTimeline:
    def test_alternates_reconfig_and_hold(self):
        intervals = schedule_timeline(two_config_schedule())
        kinds = [iv.kind for iv in intervals]
        assert kinds == ["reconfig", "circuit", "reconfig", "circuit"]

    def test_intervals_are_contiguous(self):
        intervals = schedule_timeline(two_config_schedule())
        assert intervals[0].start == 0.0
        for before, after in zip(intervals, intervals[1:]):
            assert after.start == pytest.approx(before.end)
        assert intervals[-1].end == pytest.approx(1.0)  # 0.1+0.5+0.1+0.3

    def test_cp_schedule_tags_composites(self, skewed_demand16):
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        intervals = schedule_timeline(cp_schedule)
        assert any(iv.kind == "composite" for iv in intervals)
        composite = next(iv for iv in intervals if iv.kind == "composite")
        assert "o2m@" in composite.label or "m2o@" in composite.label


class TestRenderGantt:
    def test_contains_lanes_and_legend(self):
        text = render_gantt(two_config_schedule())
        assert "OCS" in text
        assert "#" in text and "." in text
        assert "legend" in text

    def test_composite_lane_only_for_cp(self, skewed_demand16):
        plain = render_gantt(two_config_schedule())
        assert "composite" not in plain
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        assert "composite" in render_gantt(cp_schedule)
        assert "Z" in render_gantt(cp_schedule)

    def test_empty_schedule(self):
        schedule = Schedule(entries=(), reconfig_delay=0.1)
        assert render_gantt(schedule) == "(empty schedule)"

    def test_width_respected(self):
        text = render_gantt(two_config_schedule(), width=40)
        lane_line = [l for l in text.splitlines() if l.startswith("OCS")][0]
        assert len(lane_line.split("|")[1]) == 40

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_gantt(two_config_schedule(), width=3)

    def test_total_time_extends_axis(self):
        text = render_gantt(two_config_schedule(), total_time=10.0)
        assert "10 ms" in text


class TestRenderServiceProfile:
    def test_profile_of_simulation(self, skewed_demand16):
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        result = simulate_cp(skewed_demand16, cp_schedule, params)
        text = render_service_profile(result)
        assert "OCS direct" in text and "composite" in text and "EPS" in text
        composite_lane = [l for l in text.splitlines() if l.startswith("composite")][0]
        assert any(c in composite_lane for c in ".:*#"), "composite lane must show service"

    def test_empty_result(self):
        params = fast_ocs_params(4)
        result = simulate_hybrid(
            np.zeros((4, 4)), Schedule(entries=(), reconfig_delay=0.02), params
        )
        assert render_service_profile(result) == "(no service recorded)"
