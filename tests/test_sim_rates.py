"""Tests for the max-min fair EPS rate allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rates import max_min_fair_rate_matrix, max_min_fair_rates


def caps(n, value=10.0):
    return np.full(n, value)


class TestMaxMinFairRates:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates(np.array([0]), np.array([0]), caps(2), caps(2))
        assert rates[0] == pytest.approx(10.0)

    def test_fanout_shares_input_port(self):
        # One sender to 4 receivers: input port is the bottleneck.
        rows = np.zeros(4, dtype=int)
        cols = np.arange(4)
        rates = max_min_fair_rates(rows, cols, caps(4), caps(4))
        np.testing.assert_allclose(rates, 2.5)

    def test_fanin_shares_output_port(self):
        rows = np.arange(4)
        cols = np.zeros(4, dtype=int)
        rates = max_min_fair_rates(rows, cols, caps(4), caps(4))
        np.testing.assert_allclose(rates, 2.5)

    def test_asymmetric_water_filling(self):
        # Flows: A:0->0, B:0->1, C:1->1.  Input 0 gives A and B 5 each;
        # output 1 then has 5 left for C... C is limited only by out 1:
        # progressive filling: all grow to 5 (input 0 saturates), C keeps
        # growing to 10 - 5 = ... out_1 remaining = 10 - 5 = 5 more, so
        # C = 5 + ... C's ports: in_1 (10) and out_1 (shared with B).
        rows = np.array([0, 0, 1])
        cols = np.array([0, 1, 1])
        rates = max_min_fair_rates(rows, cols, caps(2), caps(2))
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)
        # C ends at 5: out_1 capacity 10 split after B froze at 5.

    def test_no_flows(self):
        rates = max_min_fair_rates(np.array([], dtype=int), np.array([], dtype=int), caps(2), caps(2))
        assert rates.size == 0

    def test_zero_capacity_port_gives_zero_rate(self):
        in_caps = np.array([0.0, 10.0])
        rates = max_min_fair_rates(np.array([0, 1]), np.array([0, 1]), in_caps, caps(2))
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(10.0)

    def test_capacities_never_exceeded(self):
        rng = np.random.default_rng(0)
        n = 16
        mask = rng.random((n, n)) < 0.4
        in_caps = rng.uniform(1, 10, n)
        out_caps = rng.uniform(1, 10, n)
        rates = max_min_fair_rate_matrix(mask, in_caps, out_caps)
        assert (rates.sum(axis=1) <= in_caps + 1e-9).all()
        assert (rates.sum(axis=0) <= out_caps + 1e-9).all()

    def test_allocation_is_maximal(self):
        # Max-min is Pareto-maximal: every flow crosses >= 1 saturated port.
        rng = np.random.default_rng(1)
        n = 12
        mask = rng.random((n, n)) < 0.5
        in_caps = caps(n, 7.0)
        out_caps = caps(n, 9.0)
        rates = max_min_fair_rate_matrix(mask, in_caps, out_caps)
        in_used = rates.sum(axis=1)
        out_used = rates.sum(axis=0)
        rows, cols = np.nonzero(mask)
        for i, j in zip(rows, cols):
            in_sat = in_used[i] >= in_caps[i] - 1e-6
            out_sat = out_used[j] >= out_caps[j] - 1e-6
            assert in_sat or out_sat, f"flow ({i},{j}) could still grow"

    def test_max_min_fairness_property(self):
        # No flow can be raised without lowering an equal-or-smaller flow:
        # equivalently, for each flow some bottleneck port it crosses has
        # all its capacity consumed by flows with rate >= this flow's rate
        # ... verified via the standard bottleneck-port characterization.
        rng = np.random.default_rng(2)
        n = 10
        mask = rng.random((n, n)) < 0.5
        rates = max_min_fair_rate_matrix(mask, caps(n), caps(n))
        rows, cols = np.nonzero(mask)
        flow_rates = rates[rows, cols]
        in_used = rates.sum(axis=1)
        out_used = rates.sum(axis=0)
        for k in range(rows.size):
            i, j = rows[k], cols[k]
            bottleneck = False
            if in_used[i] >= 10.0 - 1e-6 and flow_rates[k] >= rates[i, :].max() - 1e-6:
                bottleneck = True
            if out_used[j] >= 10.0 - 1e-6 and flow_rates[k] >= rates[:, j].max() - 1e-6:
                bottleneck = True
            assert bottleneck, f"flow ({i},{j}) has no bottleneck port"

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            max_min_fair_rates(np.array([0]), np.array([0]), np.array([-1.0]), caps(1))

    def test_rejects_mismatched_indices(self):
        with pytest.raises(ValueError):
            max_min_fair_rates(np.array([0, 1]), np.array([0]), caps(2), caps(2))

    def test_matrix_wrapper_shape(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 1] = True
        rates = max_min_fair_rate_matrix(mask, caps(3), caps(3))
        assert rates.shape == (3, 3)
        assert rates[0, 1] == pytest.approx(10.0)
        assert rates.sum() == pytest.approx(10.0)
