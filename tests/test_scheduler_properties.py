"""Deeper scheduler behaviour tests: Solstice and Eclipse against their
papers' stated properties, plus cp-Switch scheduling invariants that the
unit tests do not reach."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.eclipse.durations import candidate_durations
from repro.hybrid.solstice import SolsticeScheduler, quick_stuff
from repro.matching.max_weight import max_weight_matching
from repro.switch.params import SwitchParams, fast_ocs_params, slow_ocs_params
from repro.utils.validation import VOLUME_TOL


class TestSolsticeAgainstPaperProperties:
    """Properties the Solstice paper states or implies."""

    def test_slices_have_nonincreasing_thresholds_tendency(self, sparse_demand):
        # BigSlice extracts the largest feasible threshold each round; with
        # the quantized probe the sequence is near-monotone.  Check the
        # first slice is the largest.
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        durations = [entry.duration for entry in schedule]
        if len(durations) >= 2:
            assert durations[0] >= max(durations) * (1 - 1e-9)

    def test_circuit_coverage_dominates_eps_leftover(self, sparse_demand):
        # Solstice's goal: circuits take the bulk, the EPS mops up.
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        covered = schedule.served_volume(sparse_demand, params.ocs_rate)
        assert covered >= 0.5 * sparse_demand.sum()

    def test_sparser_matrix_needs_fewer_slices(self):
        # "Both Solstice and Eclipse perform better when the demand matrix
        # is more sparse" (§3.3).
        params = fast_ocs_params(16)
        rng = np.random.default_rng(0)
        dense = rng.uniform(1, 3, (16, 16)) * (rng.random((16, 16)) < 0.8)
        sparse = dense * (rng.random((16, 16)) < 0.3)
        n_dense = SolsticeScheduler().schedule(dense, params).n_configs
        n_sparse = SolsticeScheduler().schedule(sparse, params).n_configs
        assert n_sparse <= n_dense

    def test_scale_invariance_of_structure(self):
        # Scaling all demands by c scales durations by c but preserves the
        # permutation sequence.
        params = fast_ocs_params(8)
        rng = np.random.default_rng(1)
        demand = rng.uniform(1, 4, (8, 8)) * (rng.random((8, 8)) < 0.4)
        base = SolsticeScheduler().schedule(demand, params)
        # Scale by 10 and widen the stopping horizon identically by scaling
        # nothing else; structure of early slices must match.
        scaled = SolsticeScheduler().schedule(10 * demand, params)
        for a, b in zip(base, scaled):
            np.testing.assert_array_equal(a.permutation, b.permutation)
            assert b.duration == pytest.approx(10 * a.duration)
            break  # the first slice is structure-deterministic

    def test_stuffing_overhead_bounded_for_balanced_demand(self):
        # A permutation-like demand is already balanced: no stuffing needed.
        demand = np.zeros((6, 6))
        for i in range(6):
            demand[i, (i + 1) % 6] = 7.0
        stuffed = quick_stuff(demand)
        np.testing.assert_allclose(stuffed, demand)


class TestEclipseAgainstPaperProperties:
    """Properties from the Eclipse paper's greedy formulation."""

    def test_greedy_step_matches_exhaustive_on_tiny_instance(self):
        # For a 3x3 demand and the full candidate grid, the first greedy
        # pick must maximize value/(alpha+delta) over (alpha, matching).
        params = SwitchParams(n_ports=3, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)
        demand = np.array(
            [
                [0.0, 30.0, 2.0],
                [5.0, 0.0, 40.0],
                [20.0, 1.0, 0.0],
            ]
        )
        scheduler = EclipseScheduler(window=1.0, grid_size=64)
        schedule = scheduler.schedule(demand, params)
        first = schedule[0]
        got_rate = None
        best_rate = 0.0
        for alpha in candidate_durations(demand, 100.0, 1.0 - 0.02, grid_size=64):
            weights = np.minimum(demand, alpha * 100.0)
            for perm in itertools.permutations(range(3)):
                value = sum(weights[i, perm[i]] for i in range(3))
                rate = value / (alpha + 0.02)
                best_rate = max(best_rate, rate)
                rows, cols = np.nonzero(first.permutation)
                if abs(alpha - first.duration) < 1e-12 and all(
                    perm[i] == j for i, j in zip(rows, cols)
                ):
                    got_rate = max(got_rate or 0.0, rate)
        assert got_rate == pytest.approx(best_rate, rel=1e-9)

    def test_marginal_value_decreases(self, sparse_demand):
        # Submodularity: each greedy step serves no more volume per unit
        # time than the previous one.
        params = fast_ocs_params(8)
        scheduler = EclipseScheduler(window=1.0)
        schedule = scheduler.schedule(sparse_demand, params)
        residual = sparse_demand.copy()
        rates = []
        for entry in schedule:
            rows, cols = np.nonzero(entry.permutation)
            served = np.minimum(
                residual[rows, cols], entry.duration * params.ocs_rate
            ).sum()
            rates.append(served / (entry.duration + params.reconfig_delay))
            capacity = entry.duration * params.ocs_rate
            residual[rows, cols] = np.maximum(residual[rows, cols] - capacity, 0.0)
        for before, after in zip(rates, rates[1:]):
            assert after <= before * (1 + 1e-6)

    def test_window_scales_served_volume(self, sparse_demand):
        params = slow_ocs_params(8)
        demand = sparse_demand * 100
        half = EclipseScheduler(window=50.0).schedule(demand, params)
        full = EclipseScheduler(window=100.0).schedule(demand, params)
        assert full.served_volume(demand, params.ocs_rate) >= half.served_volume(
            demand, params.ocs_rate
        ) - 1e-9

    def test_never_exceeds_window(self):
        rng = np.random.default_rng(2)
        for seed in range(5):
            demand = rng.uniform(0, 50, (10, 10)) * (rng.random((10, 10)) < 0.5)
            params = fast_ocs_params(10)
            scheduler = EclipseScheduler()
            schedule = scheduler.schedule(demand, params)
            assert schedule.makespan <= scheduler.resolved_window(params) + 1e-9


class TestCpSchedulerInvariants:
    def test_composite_grants_only_where_reduced_entry_positive(self, skewed_demand16):
        # A grant in the permutation must correspond to actual reduced
        # demand (Eclipse prunes empty circuits; Solstice may stuff, in
        # which case CPSched no-ops — but the *served* volume must be
        # positive only when filtered demand existed).
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        filtered = cp_schedule.reduction.filtered
        for entry in cp_schedule:
            served = entry.composite_served
            assert np.all(served[filtered <= VOLUME_TOL] <= VOLUME_TOL)

    def test_regular_circuits_never_touch_filtered_entries(self, skewed_demand16):
        # Filtered demand rides composite paths; the regular permutation
        # may still pass through those (stuffed) cells, but the reduced
        # matrix holds no real demand there — verify the reduced block.
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        reduced_block = cp_schedule.reduction.reduced[:16, :16]
        filtered = cp_schedule.reduction.filtered
        assert np.all(reduced_block[filtered > 0] <= VOLUME_TOL)

    def test_cp_of_cpfree_demand_equals_h_makespan(self):
        # Demand with no filterable structure: identical schedules.
        params = fast_ocs_params(8)
        rng = np.random.default_rng(3)
        demand = np.diag(rng.uniform(10, 30, 8))
        np.fill_diagonal(demand, rng.uniform(10, 30, 8))
        h_schedule = SolsticeScheduler().schedule(demand, params)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        assert cp_schedule.makespan == pytest.approx(h_schedule.makespan)

    def test_duration_preserved_through_interpretation(self, skewed_demand16):
        # Algorithm 4 must not alter the sub-scheduler's durations.
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        for cp_entry, raw_entry in zip(cp_schedule, cp_schedule.reduced_schedule):
            assert cp_entry.duration == pytest.approx(raw_entry.duration)

    def test_works_at_minimum_radix(self):
        params = SwitchParams(n_ports=2)
        demand = np.array([[0.0, 3.0], [2.0, 0.0]])
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        assert cp_schedule.n_configs >= 1
