"""Tests for the programmatic figure-regeneration API (tiny scale)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    figure5,
    figure6,
    figure11,
    params_for,
    runtime_table,
)

TINY = dict(radices=(16,), n_trials=1, seed=1)


class TestParamsFor:
    def test_fast_slow(self):
        assert params_for("fast", 32).reconfig_delay == pytest.approx(0.02)
        assert params_for("slow", 32).reconfig_delay == pytest.approx(20.0)

    def test_unknown(self):
        with pytest.raises(ValueError):
            params_for("medium", 32)


class TestFigureFunctions:
    def test_figure5_points(self):
        points = figure5("fast", **TINY)
        assert len(points) == 1
        point = points[0]
        assert point.n_ports == 16
        assert point.skewed_ports is None
        assert point.result.cp_configs.mean < point.result.h_configs.mean

    def test_figure6_utilization_improves(self):
        points = figure6("fast", **TINY)
        result = points[0].result
        assert result.cp_ocs_fraction.mean >= result.h_ocs_fraction.mean

    def test_figure11_carries_skew_counts(self):
        points = figure11("fast", radices=(16,), skew_counts=(1, 2), n_trials=1, seed=1)
        assert [p.skewed_ports for p in points] == [1, 2]

    def test_radix_sweep_order(self):
        points = figure5("fast", radices=(16, 24), n_trials=1, seed=1)
        assert [p.n_ports for p in points] == [16, 24]


class TestRuntimeTable:
    def test_rows_per_radix(self):
        rows = runtime_table("solstice", radices=(16,), n_trials=1, seed=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.n_ports == 16
        assert row.h_switch.fast_ms > 0
        assert row.cp_switch.slow_ms > 0

    def test_intensive_variant(self):
        rows = runtime_table("solstice", workload="intensive", radices=(16,), n_trials=1, seed=1)
        assert rows[0].n_ports == 16

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            runtime_table("solstice", workload="weird", radices=(16,), n_trials=1)
