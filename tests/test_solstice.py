"""Tests for the Solstice scheduler: QuickStuff, BigSlice, and the loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.solstice.scheduler import SolsticeScheduler
from repro.hybrid.solstice.slicing import big_slice
from repro.hybrid.solstice.stuffing import quick_stuff, stuffing_overhead
from repro.switch.params import fast_ocs_params
from repro.utils.validation import VOLUME_TOL


class TestQuickStuff:
    def test_equalizes_row_and_column_sums(self, sparse_demand):
        stuffed = quick_stuff(sparse_demand)
        phi = max(sparse_demand.sum(axis=1).max(), sparse_demand.sum(axis=0).max())
        np.testing.assert_allclose(stuffed.sum(axis=1), phi)
        np.testing.assert_allclose(stuffed.sum(axis=0), phi)

    def test_never_reduces_entries(self, sparse_demand):
        stuffed = quick_stuff(sparse_demand)
        assert (stuffed >= sparse_demand - 1e-12).all()

    def test_empty_demand(self):
        stuffed = quick_stuff(np.zeros((4, 4)))
        assert stuffed.sum() == 0.0

    def test_already_stuffed_is_unchanged(self):
        matrix = np.array([[2.0, 1.0], [1.0, 2.0]])
        np.testing.assert_allclose(quick_stuff(matrix), matrix)

    def test_prefers_existing_nonzeros(self):
        # phi = 5 (column 0).  The non-zero pass grows the existing entry
        # (1,1) from 2 to 4 before the zero pass opens (0,1) for the last
        # unit of slack — only one new entry appears.
        demand = np.array(
            [
                [4.0, 0.0],
                [1.0, 2.0],
            ]
        )
        stuffed = quick_stuff(demand)
        assert stuffed[1, 1] == pytest.approx(4.0)
        assert stuffed[0, 1] == pytest.approx(1.0)
        assert int((stuffed > 0).sum()) == int((demand > 0).sum()) + 1

    def test_overhead_metric(self, sparse_demand):
        stuffed = quick_stuff(sparse_demand)
        overhead = stuffing_overhead(sparse_demand, stuffed)
        assert 0.0 <= overhead < 1.0
        assert overhead == pytest.approx(
            (stuffed.sum() - sparse_demand.sum()) / stuffed.sum()
        )

    def test_single_entry(self):
        demand = np.zeros((3, 3))
        demand[1, 2] = 5.0
        stuffed = quick_stuff(demand)
        np.testing.assert_allclose(stuffed.sum(axis=0), 5.0)
        np.testing.assert_allclose(stuffed.sum(axis=1), 5.0)


class TestBigSlice:
    def test_slices_preserve_stuffedness(self, sparse_demand):
        stuffed = quick_stuff(sparse_demand)
        for _ in range(3):
            if stuffed.max() <= VOLUME_TOL:
                break
            threshold, perm = big_slice(stuffed)
            assert threshold > 0
            rows, cols = np.nonzero(perm)
            assert (stuffed[rows, cols] >= threshold - 1e-12).all()
            stuffed[rows, cols] -= threshold
            np.clip(stuffed, 0.0, None, out=stuffed)
            sums = np.concatenate([stuffed.sum(axis=0), stuffed.sum(axis=1)])
            assert sums.max() - sums.min() < 1e-6

    def test_threshold_is_min_matched_entry(self):
        matrix = np.array(
            [
                [5.0, 1.0],
                [1.0, 5.0],
            ]
        )
        threshold, perm = big_slice(matrix)
        assert threshold == pytest.approx(5.0)
        np.testing.assert_array_equal(perm, np.eye(2, dtype=np.int8))

    def test_exhaustive_probe_equals_quantized_on_small_input(self):
        rng = np.random.default_rng(9)
        stuffed = quick_stuff(rng.uniform(0, 5, (6, 6)))
        t_exact, _ = big_slice(stuffed, max_probes=None)
        t_quant, _ = big_slice(stuffed, max_probes=64)
        # 36 unique values < 64 probes: identical search space.
        assert t_quant == pytest.approx(t_exact)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            big_slice(np.zeros((3, 3)))

    def test_rejects_unstuffed(self):
        # Row 0 only connects to column 0; rows 0 and 1 both need it.
        matrix = np.array(
            [
                [1.0, 0.0],
                [1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError):
            big_slice(matrix)


class TestSolsticeScheduler:
    def test_schedule_covers_demand_with_eps(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        # The stopping rule guarantees: leftover demand (not coverable by
        # the schedule's circuits) drains on the EPS within the makespan.
        residual = sparse_demand.copy()
        for entry in schedule:
            rows, cols = np.nonzero(entry.permutation)
            residual[rows, cols] = np.maximum(
                residual[rows, cols] - entry.duration * params.ocs_rate, 0.0
            )
        port_load = max(residual.sum(axis=1).max(), residual.sum(axis=0).max())
        assert port_load / params.eps_rate <= schedule.makespan + 1e-9

    def test_durations_match_thresholds(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        for entry in schedule:
            assert entry.duration > 0

    def test_empty_demand_gives_empty_schedule(self):
        params = fast_ocs_params(4)
        schedule = SolsticeScheduler().schedule(np.zeros((4, 4)), params)
        assert schedule.n_configs == 0
        assert schedule.makespan == 0.0

    def test_single_big_flow_gets_one_circuit(self):
        params = fast_ocs_params(4)
        demand = np.zeros((4, 4))
        demand[1, 2] = 50.0
        schedule = SolsticeScheduler().schedule(demand, params)
        assert schedule.n_configs == 1
        entry = schedule[0]
        assert entry.permutation[1, 2] == 1
        assert entry.duration == pytest.approx(0.5)  # 50 Mb / 100 Mb/ms

    def test_max_configs_cap_respected(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler(max_configs=2).schedule(sparse_demand, params)
        assert schedule.n_configs <= 2

    def test_more_reconfig_delay_means_fewer_configs(self, sparse_demand):
        fast = fast_ocs_params(8)
        slow = fast.with_ports(8)
        from repro.switch.params import slow_ocs_params

        slow = slow_ocs_params(8)
        n_fast = SolsticeScheduler().schedule(sparse_demand, fast).n_configs
        n_slow = SolsticeScheduler().schedule(sparse_demand, slow).n_configs
        assert n_slow <= n_fast

    def test_skewed_demand_needs_many_configs(self, skewed_demand):
        # The h-Switch pathology the paper fixes: one-to-many rows force
        # one circuit per destination.
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(skewed_demand, params)
        assert schedule.n_configs >= 4
