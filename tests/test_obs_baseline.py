"""Tests for the BENCH_obs baseline recorder and the ``obs check`` gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.obs.baseline import (
    BASELINE_FORMAT,
    check_baseline,
    load_baseline,
    measure_like,
    measure_point,
    record_baseline,
    write_baseline,
)

# One tiny point keeps the pipeline-under-test fast; radix 8 still exercises
# scheduling, both simulators, and the audit counters.
_POINT_KW = dict(n_ports=8, scheduler="solstice", n_trials=1, repeats=1)


@pytest.fixture(scope="module")
def baseline() -> dict:
    return record_baseline(
        radices=(8,), schedulers=("solstice",), n_trials=1, repeats=1
    )


class TestMeasure:
    def test_point_shape(self, baseline):
        (point,) = baseline["points"]
        assert point["radix"] == 8 and point["scheduler"] == "solstice"
        timing = point["timing_s"]
        assert set(timing) > {"total", "backup_plan"}
        # "total" sums the compare-pipeline stages; backup_plan is the
        # fast-reroute add-on, timed separately so its <10%-of-h_schedule
        # bound stays visible.
        assert timing["total"] == pytest.approx(
            sum(v for k, v in timing.items() if k not in ("total", "backup_plan")),
            abs=1e-4,
        )
        assert timing["backup_plan"] > 0.0
        quality = point["quality"]
        assert quality["slices"] > 0
        assert quality["h_configs"] > 0
        assert 0.0 <= quality["h_ocs_fraction"] <= 1.0
        assert 0.0 <= quality["composite_fraction"] <= 1.0
        assert quality["watchdog_trips"] == 0

    def test_quality_is_deterministic(self):
        a = measure_point(**_POINT_KW)
        b = measure_point(**_POINT_KW)
        assert a["quality"] == b["quality"]

    def test_eclipse_uses_steps_counter(self):
        point = measure_point(n_ports=8, scheduler="eclipse", n_trials=1, repeats=1)
        assert point["quality"]["slices"] > 0

    def test_repeats_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            measure_point(n_ports=8, repeats=0)

    def test_measure_like_reuses_recorded_axes(self, baseline):
        current = measure_like(baseline)
        assert [(p["radix"], p["scheduler"]) for p in current["points"]] == [
            (8, "solstice")
        ]
        assert current["seed"] == baseline["seed"]


class TestCheck:
    def test_identical_passes(self, baseline):
        assert check_baseline(baseline, copy.deepcopy(baseline)) == []

    def test_remeasured_quality_matches(self, baseline):
        # The acceptance criterion: same seed, same commit => zero drift.
        assert check_baseline(baseline, measure_like(baseline)) == []

    def test_synthetic_slowdown_fails(self, baseline):
        slowed = copy.deepcopy(baseline)
        for stage in slowed["points"][0]["timing_s"]:
            slowed["points"][0]["timing_s"][stage] *= 10.0
        violations = check_baseline(baseline, slowed, min_seconds=0.0)
        assert violations
        assert any("regressed" in v for v in violations)

    def test_injected_quality_change_fails(self, baseline):
        drifted = copy.deepcopy(baseline)
        drifted["points"][0]["quality"]["slices"] += 1
        violations = check_baseline(baseline, drifted)
        assert any("quality drift — slices" in v for v in violations)

    def test_float_quality_rtol(self, baseline):
        dusty = copy.deepcopy(baseline)
        dusty["points"][0]["quality"]["h_ocs_fraction"] += 1e-12
        assert check_baseline(baseline, dusty) == []
        moved = copy.deepcopy(baseline)
        moved["points"][0]["quality"]["h_ocs_fraction"] += 0.05
        assert any(
            "h_ocs_fraction" in v for v in check_baseline(baseline, moved)
        )

    def test_min_seconds_floor_exempts_fast_stages(self, baseline):
        slowed = copy.deepcopy(baseline)
        for stage in slowed["points"][0]["timing_s"]:
            slowed["points"][0]["timing_s"][stage] *= 10.0
        # Every stage of this tiny point is far below a 1000s floor.
        assert check_baseline(baseline, slowed, min_seconds=1000.0) == []

    def test_tolerance_scales_gate(self, baseline):
        slower = copy.deepcopy(baseline)
        for stage in slower["points"][0]["timing_s"]:
            slower["points"][0]["timing_s"][stage] *= 1.5
        assert check_baseline(baseline, slower, tolerance=9.0, min_seconds=0.0) == []
        assert check_baseline(baseline, slower, tolerance=0.1, min_seconds=0.0)

    def test_missing_point_is_violation(self, baseline):
        empty = {**copy.deepcopy(baseline), "points": []}
        violations = check_baseline(baseline, empty)
        assert violations == ["solstice radix=8: point missing from current measurement"]

    def test_negative_tolerance_rejected(self, baseline):
        with pytest.raises(ValueError, match="tolerance"):
            check_baseline(baseline, baseline, tolerance=-0.1)


class TestFileRoundtrip:
    def test_write_load(self, tmp_path, baseline):
        path = tmp_path / "BENCH_obs.json"
        write_baseline(baseline, path)
        loaded = load_baseline(path)
        assert loaded["format"] == BASELINE_FORMAT
        assert loaded["points"] == baseline["points"]

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format": 99, "points": []}))
        with pytest.raises(ValueError, match="unsupported baseline format"):
            load_baseline(path)


class TestCli:
    def _record(self, tmp_path) -> str:
        out = str(tmp_path / "BENCH_obs.json")
        code = main(
            [
                "obs", "baseline", "record",
                "--out", out,
                "--radices", "8",
                "--schedulers", "solstice",
                "--quick",
            ]
        )
        assert code == 0
        return out

    def test_record_then_check_passes(self, tmp_path, capsys):
        out = self._record(tmp_path)
        assert main(["obs", "check", "--baseline", out, "--current", out]) == 0
        assert "no schedule-quality drift" in capsys.readouterr().out

    def test_check_fails_on_injected_quality_change(self, tmp_path, capsys):
        # Acceptance criterion: nonzero exit on an injected quality change.
        out = self._record(tmp_path)
        payload = json.loads(open(out).read())
        payload["points"][0]["quality"]["slices"] += 1
        current = tmp_path / "current.json"
        current.write_text(json.dumps(payload))
        assert (
            main(["obs", "check", "--baseline", out, "--current", str(current)]) == 1
        )
        assert "quality drift" in capsys.readouterr().err

    def test_check_fails_on_synthetic_slowdown(self, tmp_path, capsys):
        # Acceptance criterion: nonzero exit on a synthetically slowed phase.
        out = self._record(tmp_path)
        payload = json.loads(open(out).read())
        for stage in payload["points"][0]["timing_s"]:
            payload["points"][0]["timing_s"][stage] *= 10.0
        current = tmp_path / "current.json"
        current.write_text(json.dumps(payload))
        code = main(
            [
                "obs", "check",
                "--baseline", out,
                "--current", str(current),
                "--min-seconds", "0",
            ]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_check_missing_baseline_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="baseline record"):
            main(["obs", "check", "--baseline", str(tmp_path / "nope.json")])

    def test_record_rejects_unknown_scheduler(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "obs", "baseline", "record",
                    "--out", str(tmp_path / "b.json"),
                    "--schedulers", "bogus",
                ]
            )
