"""Property-based fuzzing of the fluid engine with arbitrary schedules.

The scheduler-level property tests exercise the engine only through
well-formed Solstice/Eclipse output.  Here hypothesis drives it with
*arbitrary* (valid but adversarial) phase sequences — random partial
permutations, random durations, random composite grants and filtered
splits — checking the invariants that must hold regardless:

* volume conservation (served + residual == demand);
* monotone non-negative residuals;
* finish times within [0, clock] and only for demanded entries;
* horizon-bounded runs never deliver more than unbounded ones.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim.engine import CompositeService, FluidEngine
from repro.switch.params import SwitchParams

N = 6


def demands():
    return st.tuples(
        arrays(np.float64, (N, N), elements=st.floats(0.0, 30.0, allow_nan=False, width=32)),
        arrays(np.bool_, (N, N)),
    ).map(lambda pair: pair[0] * pair[1])


def partial_permutations():
    """Random partial permutation via a shuffled prefix."""
    return st.tuples(
        st.permutations(list(range(N))), st.integers(min_value=0, max_value=N)
    ).map(_prefix_permutation)


def _prefix_permutation(args):
    perm_order, size = args
    matrix = np.zeros((N, N), dtype=np.int8)
    for row in range(size):
        matrix[row, perm_order[row]] = 1
    return matrix


def phases():
    return st.lists(
        st.tuples(
            st.floats(0.0, 0.5, allow_nan=False),  # duration
            partial_permutations(),
            st.booleans(),  # grant an o2m path?
            st.integers(min_value=0, max_value=N - 1),  # o2m port
            st.booleans(),  # grant an m2o path?
            st.integers(min_value=0, max_value=N - 1),  # m2o port
        ),
        min_size=0,
        max_size=4,
    )


PARAMS = SwitchParams(n_ports=N, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def _run(demand, phase_list, horizon=None):
    engine = FluidEngine(demand, PARAMS)
    # Half of the small entries become composite demand.
    filtered = np.where(demand < 5.0, demand, 0.0)
    engine.assign_composite(filtered)
    clock_budget = horizon
    for duration, circuits, use_o2m, o2m_port, use_m2o, m2o_port in phase_list:
        if clock_budget is not None:
            duration = min(duration, max(0.0, clock_budget - engine.clock))
        composites = []
        if use_o2m:
            composites.append(CompositeService("o2m", o2m_port))
        if use_m2o:
            composites.append(CompositeService("m2o", m2o_port))
        engine.run_phase(duration, circuits=circuits, composites=composites)
    if horizon is None:
        engine.merge_composite_into_regular()
        engine.run_phase(None)
    return engine


class TestEngineFuzz:
    @given(demand=demands(), phase_list=phases())
    @settings(max_examples=60, deadline=None)
    def test_conservation_under_arbitrary_schedules(self, demand, phase_list):
        engine = _run(demand, phase_list)
        delivered = (
            engine.served_ocs_direct + engine.served_composite + engine.served_eps
        )
        np.testing.assert_allclose(
            delivered + engine.residual_total(), demand.sum(), rtol=1e-6, atol=1e-6
        )

    @given(demand=demands(), phase_list=phases())
    @settings(max_examples=60, deadline=None)
    def test_residuals_never_negative(self, demand, phase_list):
        engine = _run(demand, phase_list)
        assert (engine.regular >= 0).all()
        assert (engine.composite >= 0).all()

    @given(demand=demands(), phase_list=phases())
    @settings(max_examples=60, deadline=None)
    def test_finish_times_consistent(self, demand, phase_list):
        engine = _run(demand, phase_list)
        demanded = demand > 1e-9
        finished = engine.finish_times[demanded]
        assert not np.isnan(finished).any()  # unbounded run drains all
        assert (finished >= 0).all()
        assert (finished <= engine.clock + 1e-9).all()
        assert np.isnan(engine.finish_times[~demanded]).all()

    @given(demand=demands(), phase_list=phases())
    @settings(max_examples=60, deadline=None)
    def test_event_count_linear_in_nnz_and_phases(self, demand, phase_list):
        engine = _run(demand, phase_list)
        nnz = int((demand > 1e-9).sum())
        n_phases = len(phase_list) + 1  # + the final open-ended drain
        # Every recorded event either drains at least one residual
        # component to zero — each entry has a regular and a composite
        # component, and the merge can refill the regular one, so at most
        # three drains per entry — or it is the single phase-truncation
        # event of its phase.  Dust snaps record no segment.  The engine
        # must therefore stay O(nnz + phases), never O(n^2) per phase.
        assert len(engine.segments) <= 3 * nnz + n_phases

    @given(
        demand=demands(),
        phase_list=phases(),
        horizon=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_horizon_never_delivers_more(self, demand, phase_list, horizon):
        bounded = _run(demand, phase_list, horizon=horizon)
        unbounded = _run(demand, phase_list)
        delivered_bounded = (
            bounded.served_ocs_direct + bounded.served_composite + bounded.served_eps
        )
        delivered_unbounded = (
            unbounded.served_ocs_direct
            + unbounded.served_composite
            + unbounded.served_eps
        )
        assert delivered_bounded <= delivered_unbounded + 1e-6
