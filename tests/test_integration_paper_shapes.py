"""Integration tests: the paper's qualitative results at reduced scale.

These are the claims EXPERIMENTS.md tracks, checked here on one radix with
a couple of seeds so the test suite stays fast; the full sweeps live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentConfig, run_comparison
from repro.switch.params import fast_ocs_params, slow_ocs_params
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload


@pytest.fixture(scope="module")
def skewed_fast():
    """§3.2 experiment: pure skewed demand, fast OCS, Solstice, radix 32."""
    params = fast_ocs_params(32)
    return run_comparison(
        ExperimentConfig(
            workload=SkewedWorkload.for_params(params),
            params=params,
            scheduler="solstice",
            n_trials=2,
            seed=1,
        )
    )


@pytest.fixture(scope="module")
def skewed_fast_eclipse():
    params = fast_ocs_params(32)
    return run_comparison(
        ExperimentConfig(
            workload=SkewedWorkload.for_params(params),
            params=params,
            scheduler="eclipse",
            n_trials=2,
            seed=1,
        )
    )


class TestFigure5Shape:
    """cp-Switch completes skewed demand faster with ~no reconfigurations."""

    def test_cp_faster_total(self, skewed_fast):
        assert skewed_fast.cp_completion_total.mean < skewed_fast.h_completion_total.mean

    def test_cp_faster_o2m_and_m2o(self, skewed_fast):
        assert skewed_fast.cp_completion_o2m.mean < skewed_fast.h_completion_o2m.mean
        assert skewed_fast.cp_completion_m2o.mean < skewed_fast.h_completion_m2o.mean

    def test_h_needs_many_configs_cp_few(self, skewed_fast):
        # Paper Figure 5(c): h-Switch configs grow with fan-out; cp-Switch
        # serves the same demand with one or two composite configurations.
        assert skewed_fast.h_configs.mean >= 10
        assert skewed_fast.cp_configs.mean <= 3

    def test_advantage_grows_with_radix(self):
        ratios = []
        for n in (16, 64):
            params = fast_ocs_params(n)
            result = run_comparison(
                ExperimentConfig(
                    workload=SkewedWorkload.for_params(params),
                    params=params,
                    scheduler="solstice",
                    n_trials=2,
                    seed=5,
                )
            )
            ratios.append(result.h_completion_total.mean / result.cp_completion_total.mean)
        assert ratios[1] > ratios[0]

    def test_slow_ocs_improvement_larger(self, skewed_fast):
        params = slow_ocs_params(32)
        slow = run_comparison(
            ExperimentConfig(
                workload=SkewedWorkload.for_params(params),
                params=params,
                scheduler="solstice",
                n_trials=2,
                seed=1,
            )
        )
        fast_gain = skewed_fast.h_completion_total.mean / skewed_fast.cp_completion_total.mean
        slow_gain = slow.h_completion_total.mean / slow.cp_completion_total.mean
        assert slow_gain > fast_gain


class TestFigure6Shape:
    """cp-Switch serves a larger demand fraction over the OCS (Eclipse)."""

    def test_cp_fraction_higher(self, skewed_fast_eclipse):
        assert (
            skewed_fast_eclipse.cp_ocs_fraction.mean
            > skewed_fast_eclipse.h_ocs_fraction.mean
        )

    def test_h_config_count_in_paper_band(self, skewed_fast_eclipse):
        # Paper §3.2: h-Switch with fast OCS needs ~31-35 Eclipse configs,
        # spending 620-700 us of the 1 ms window on reconfigurations.
        assert 25 <= skewed_fast_eclipse.h_configs.mean <= 40

    def test_cp_config_count_tiny(self, skewed_fast_eclipse):
        # Paper: "cp-Switch requires at most 1-2 reconfigurations".
        assert skewed_fast_eclipse.cp_configs.mean <= 4


class TestFigure7And8Shape:
    """Typical background + skewed demand (fast OCS, radix 32)."""

    @pytest.fixture(scope="class")
    def solstice_result(self):
        params = fast_ocs_params(32)
        return run_comparison(
            ExperimentConfig(
                workload=CombinedWorkload.typical(params),
                params=params,
                scheduler="solstice",
                n_trials=2,
                seed=3,
            )
        )

    @pytest.fixture(scope="class")
    def eclipse_result(self):
        params = fast_ocs_params(32)
        return run_comparison(
            ExperimentConfig(
                workload=CombinedWorkload.typical(params),
                params=params,
                scheduler="eclipse",
                n_trials=2,
                seed=3,
            )
        )

    def test_skewed_subset_improves_strongly(self, solstice_result):
        # Paper Figure 7: 15-70% faster completion for o2m/m2o demand.
        gain = 1 - solstice_result.cp_completion_o2m.mean / solstice_result.h_completion_o2m.mean
        assert gain > 0.10

    def test_total_does_not_regress_materially(self, solstice_result):
        # Paper Figure 7 reports 9-37% faster total completion (fast OCS),
        # smallest at radix 32.  In our reproduction the radix-32 total is
        # a near-tie (the background dominates); the growing-with-radix
        # gain is asserted by the Figure 7 benchmark at 64/128.
        gain = 1 - solstice_result.cp_completion_total.mean / solstice_result.h_completion_total.mean
        assert gain > -0.05

    def test_cp_reduces_configs(self, solstice_result):
        assert solstice_result.cp_configs.mean <= solstice_result.h_configs.mean

    def test_utilization_improves(self, eclipse_result):
        assert eclipse_result.cp_ocs_fraction.mean > eclipse_result.h_ocs_fraction.mean


class TestRuntimeShape:
    """Tables 1-2: cp scheduling cost is comparable to h (same order)."""

    def test_cp_overhead_bounded(self, skewed_fast):
        # Algorithm 4 adds O(n^2) interpretation on top of the sub-
        # scheduler; with far fewer permutations to produce it is usually
        # *faster*.  Allow generous slack for timer noise, but the ratio
        # must stay within the same order of magnitude.
        ratio = skewed_fast.cp_sched_seconds.mean / skewed_fast.h_sched_seconds.mean
        assert ratio < 3.0
