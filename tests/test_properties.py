"""Property-based tests (hypothesis) for the core invariants.

Each property is one the paper's correctness rests on:

* QuickStuff: stuffed >= demand, all row/column sums equal.
* BigSlice / Solstice: slicing preserves the equal-sum invariant; the
  schedule plus the EPS covers the demand.
* Algorithm 1: volume conservation, disjoint path assignment, filter
  soundness (nothing above Bt, no under-Rt rows/columns).
* CPSched: never negative, monotone in duration, rate caps respected.
* Max-min fairness: capacities respected, allocation maximal.
* The end-to-end pipeline conserves volume for arbitrary demands.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cpsched import cpsched
from repro.core.reduction import cp_switch_demand_reduction
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice.scheduler import SolsticeScheduler
from repro.hybrid.solstice.stuffing import quick_stuff
from repro.matching.birkhoff import birkhoff_von_neumann, recompose
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.rates import max_min_fair_rate_matrix
from repro.switch.params import fast_ocs_params
from repro.utils.validation import VOLUME_TOL


def demand_matrices(max_n: int = 7, max_value: float = 20.0):
    """Strategy: square non-negative demand matrices with some sparsity."""
    return st.integers(min_value=2, max_value=max_n).flatmap(
        lambda n: st.tuples(
            arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, max_value, allow_nan=False, width=32),
            ),
            arrays(np.bool_, (n, n)),
        ).map(lambda pair: pair[0] * pair[1])
    )


class TestStuffingProperties:
    @given(demand=demand_matrices())
    @settings(max_examples=60, deadline=None)
    def test_stuffed_dominates_and_equalizes(self, demand):
        stuffed = quick_stuff(demand)
        assert (stuffed >= demand - 1e-9).all()
        if stuffed.sum() > VOLUME_TOL:
            sums = np.concatenate([stuffed.sum(axis=0), stuffed.sum(axis=1)])
            phi = max(demand.sum(axis=0).max(), demand.sum(axis=1).max())
            np.testing.assert_allclose(sums, phi, rtol=1e-9, atol=1e-9)

    @given(demand=demand_matrices(max_n=5))
    @settings(max_examples=30, deadline=None)
    def test_stuffed_fully_decomposes(self, demand):
        stuffed = quick_stuff(demand)
        terms = birkhoff_von_neumann(stuffed)
        np.testing.assert_allclose(
            recompose(terms, stuffed.shape[0]), stuffed, atol=1e-6
        )


class TestReductionProperties:
    @given(
        demand=demand_matrices(),
        fanout=st.integers(min_value=1, max_value=6),
        volume=st.floats(0.5, 25.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_block_identity(self, demand, fanout, volume):
        reduction = cp_switch_demand_reduction(demand, fanout, volume)
        n = demand.shape[0]
        np.testing.assert_allclose(reduction.reduced.sum(), demand.sum(), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            reduction.reduced[:n, :n], demand - reduction.filtered, atol=1e-9
        )
        # Composite corner is always empty.
        assert reduction.reduced[n, n] == 0.0

    @given(
        demand=demand_matrices(),
        fanout=st.integers(min_value=1, max_value=6),
        volume=st.floats(0.5, 25.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_filter_soundness(self, demand, fanout, volume):
        reduction = cp_switch_demand_reduction(demand, fanout, volume)
        filtered_entries = reduction.filtered[reduction.filtered > 0]
        # Nothing above Bt rides a composite path.
        assert (filtered_entries <= volume + 1e-9).all()
        # Every filtered entry sits in a row or column that qualified.
        low = demand.copy()
        low[low > volume] = 0.0
        nonzero = low > VOLUME_TOL
        rows_ok = nonzero.sum(axis=1) >= fanout
        cols_ok = nonzero.sum(axis=0) >= fanout
        mask = reduction.filtered > 0
        rows, cols = np.nonzero(mask)
        for i, j in zip(rows, cols):
            assert rows_ok[i] or cols_ok[j]

    @given(
        demand=demand_matrices(),
        fanout=st.integers(min_value=1, max_value=6),
        volume=st.floats(0.5, 25.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_assignments_disjoint(self, demand, fanout, volume):
        reduction = cp_switch_demand_reduction(demand, fanout, volume)
        assert not (reduction.o2m_assignment & reduction.m2o_assignment).any()


class TestCpschedProperties:
    @given(
        demands=arrays(
            np.float64, (10,), elements=st.floats(0.0, 50.0, allow_nan=False, width=32)
        ),
        duration=st.floats(0.0, 10.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_nonnegative_and_bounded(self, demands, duration):
        remaining = cpsched(demands, duration, ocs_rate=100.0, eps_rate=10.0)
        assert (remaining >= 0.0).all()
        assert (remaining <= demands + 1e-9).all()

    @given(
        demands=arrays(
            np.float64, (8,), elements=st.floats(0.0, 50.0, allow_nan=False, width=32)
        ),
        duration=st.floats(0.01, 5.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_caps(self, demands, duration):
        ocs_rate, eps_rate = 100.0, 10.0
        remaining = cpsched(demands, duration, ocs_rate, eps_rate)
        served = demands - remaining
        # Total served cannot exceed the OCS leg's capacity...
        assert served.sum() <= duration * ocs_rate + 1e-6
        # ...nor any endpoint its EPS link capacity.
        assert (served <= duration * eps_rate + 1e-6).all()


class TestMaxMinProperties:
    @given(
        mask=arrays(np.bool_, (6, 6)),
        in_caps=arrays(np.float64, (6,), elements=st.floats(0.0, 20.0, allow_nan=False, width=32)),
        out_caps=arrays(np.float64, (6,), elements=st.floats(0.0, 20.0, allow_nan=False, width=32)),
    )
    @settings(max_examples=80, deadline=None)
    def test_capacities_respected_and_maximal(self, mask, in_caps, out_caps):
        rates = max_min_fair_rate_matrix(mask, in_caps, out_caps)
        assert (rates >= 0).all()
        assert (rates.sum(axis=1) <= in_caps + 1e-6).all()
        assert (rates.sum(axis=0) <= out_caps + 1e-6).all()
        # Maximality: every flow crosses a saturated port.
        in_used = rates.sum(axis=1)
        out_used = rates.sum(axis=0)
        rows, cols = np.nonzero(mask)
        for i, j in zip(rows, cols):
            saturated = (
                in_used[i] >= in_caps[i] - 1e-6 or out_used[j] >= out_caps[j] - 1e-6
            )
            assert saturated


class TestEndToEndProperties:
    @given(demand=demand_matrices(max_n=6, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_hybrid_pipeline_conserves_volume(self, demand):
        params = fast_ocs_params(demand.shape[0])
        schedule = SolsticeScheduler().schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params)
        result.check_conservation(tol=1e-5)

    @given(demand=demand_matrices(max_n=6, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_cp_pipeline_conserves_volume(self, demand):
        params = fast_ocs_params(demand.shape[0])
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        result = simulate_cp(demand, cp_schedule, params)
        result.check_conservation(tol=1e-5)
        # Composite bookkeeping is consistent between scheduler and engine.
        expected = (
            cp_schedule.reduction.filtered.sum() - cp_schedule.filtered_residual.sum()
        )
        assert abs(result.served_composite - expected) <= 1e-5 * max(1.0, expected)
