"""Tests for the asyncio scheduling service (:mod:`repro.service.loop`).

The load-bearing contracts:

* the synchronous driver is **bit-identical** to
  :meth:`EpochController.run` (hypothesis-fuzzed across schedulers and
  kernel backends);
* the asyncio driver offers/executes the same epoch sequence, shards the
  auxiliary stages across warm workers, and drains cleanly on stop;
* sustained overload sheds through the controller's conservation ledger —
  the service audits it at the end of every run, so a lost byte fails
  the report;
* a worker death mid-stage respawns the worker and retries the stage.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import obs
from repro.analysis.controller import EpochController
from repro.hybrid.base import make_scheduler
from repro.matching import kernels
from repro.runner.heartbeat import heartbeat_dir, read_heartbeats
from repro.runner.journal import RunJournal
from repro.runner.pool import StageTask
from repro.service import SchedulingService, ServiceConfig, TickClock
from repro.service.loop import ServiceReport
from repro.switch.params import fast_ocs_params
from repro.workloads.arrivals import WorkloadArrivals, arrival_stream
from repro.workloads.skewed import SkewedWorkload

N = 8
PARAMS = fast_ocs_params(N)
BACKENDS = (kernels.ORACLE, kernels.KERNEL)

_DIE_ONCE = "tests._runner_trials:die_once_stage"


def make_controller(**overrides) -> EpochController:
    overrides.setdefault("params", PARAMS)
    overrides.setdefault("scheduler", make_scheduler("solstice"))
    overrides.setdefault("use_composite_paths", True)
    overrides.setdefault("epoch_duration", 50.0)
    return EpochController(**overrides)


def make_arrivals(seed: int = 7, intensity: float = 0.5) -> WorkloadArrivals:
    return WorkloadArrivals(
        SkewedWorkload(), n_ports=N, seed=seed, intensity=intensity
    )


def fuzz_demand(n: int = N, max_value: float = 12.0):
    """Strategy: one sparse non-negative demand matrix at radix ``n``."""
    return st.tuples(
        arrays(
            np.float64,
            (n, n),
            elements=st.floats(0.0, max_value, allow_nan=False, width=32),
        ),
        arrays(np.bool_, (n, n)),
    ).map(lambda pair: pair[0] * pair[1] * (~np.eye(n, dtype=bool)))


class TestArrivalStream:
    def test_yields_exact_process_draws(self):
        arrivals = make_arrivals()

        async def collect():
            return [item async for item in arrival_stream(arrivals, 3)]

        items = asyncio.run(collect())
        assert [epoch for epoch, _ in items] == [0, 1, 2]
        for epoch, demand in items:
            np.testing.assert_array_equal(demand, arrivals(epoch))

    def test_paces_between_yields(self):
        naps = []

        async def fake_sleep(seconds):
            naps.append(seconds)

        async def collect():
            stream = arrival_stream(
                make_arrivals(), 3, pace_s=0.25, sleep=fake_sleep
            )
            return [item async for item in stream]

        items = asyncio.run(collect())
        assert len(items) == 3
        assert naps == [0.25, 0.25]  # no trailing sleep after the last yield

    def test_rejects_negative_pace(self):
        stream = arrival_stream(make_arrivals(), 1, pace_s=-1.0)
        with pytest.raises(ValueError, match="pace_s"):
            asyncio.run(stream.__anext__())


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_epochs": 0},
            {"n_workers": -1},
            {"queue_depth": 0},
            {"epoch_interval_s": -0.1},
            {"stage_retries": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestSyncDriver:
    def test_bit_identical_to_controller_run(self):
        arrivals = make_arrivals()
        reference = make_controller().run(arrivals, 4)
        service = SchedulingService(
            make_controller(), arrivals, ServiceConfig(n_epochs=4, n_workers=0)
        )
        report = service.run_sync()
        assert report.reports == reference
        assert report.n_epochs == 4
        assert not report.stopped_early

    def test_requires_finite_epochs(self):
        service = SchedulingService(
            make_controller(), make_arrivals(), ServiceConfig(n_epochs=None)
        )
        with pytest.raises(ValueError, match="n_epochs"):
            service.run_sync()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["solstice", "eclipse"])
    @given(demands=st.lists(fuzz_demand(), min_size=2, max_size=3))
    @settings(max_examples=10, deadline=None)
    def test_fuzzed_bit_identity(self, backend, name, demands):
        arrivals = lambda epoch: demands[epoch]  # noqa: E731
        with kernels.use_backend(backend):
            reference = make_controller(scheduler=make_scheduler(name)).run(
                arrivals, len(demands)
            )
            service = SchedulingService(
                make_controller(scheduler=make_scheduler(name)),
                arrivals,
                ServiceConfig(n_epochs=len(demands), n_workers=0),
            )
            report = service.run_sync()
        assert report.reports == reference


class TestAsyncDriver:
    def test_same_reports_as_sync(self):
        arrivals = make_arrivals()
        reference = make_controller().run(arrivals, 3)
        service = SchedulingService(
            make_controller(), arrivals, ServiceConfig(n_epochs=3, n_workers=0)
        )
        report = asyncio.run(service.run())
        assert report.reports == reference
        assert report.drained
        assert not report.stopped_early
        assert report.abandoned_batches == 0

    def test_shards_stages_across_warm_workers(self):
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(n_epochs=3, n_workers=2),
        )
        report = asyncio.run(service.run())
        assert len(report.worker_pids) == 2
        for outcome in report.outcomes:
            # 2 scheduler arms + 1 backup stage, all successful.
            assert len(outcome.arms) == 3
            assert outcome.stage_failures == 0
            assert set(outcome.shard_pids) <= set(report.worker_pids)
        # At least one epoch demonstrably used >= 2 distinct worker processes.
        assert any(len(o.shard_pids) >= 2 for o in report.outcomes)
        arm_names = {arm["arm"] for arm in report.outcomes[0].arms}
        assert arm_names == {"eclipse", "tdm", "backup:solstice"}

    def test_no_workers_disables_sharding(self):
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(n_epochs=2, n_workers=0),
        )
        report = asyncio.run(service.run())
        assert report.worker_pids == ()
        assert all(o.arms == () for o in report.outcomes)

    def test_publishes_service_metrics(self):
        registry = obs.MetricsRegistry()
        with obs.observability(metrics=registry):
            service = SchedulingService(
                make_controller(),
                make_arrivals(),
                ServiceConfig(n_epochs=2, n_workers=0),
            )
            asyncio.run(service.run())
        snapshot = registry.snapshot()
        assert snapshot["service_epochs_total"]["values"][0]["value"] == 2
        latency = snapshot["service_epoch_latency"]["values"][0]
        assert latency["count"] == 2
        assert snapshot["service_backlog_mb"]["type"] == "gauge"

    def test_heartbeat_written_next_to_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "service.jsonl")
        service = SchedulingService(
            make_controller(journal=journal),
            make_arrivals(),
            ServiceConfig(n_epochs=2, n_workers=0),
        )
        asyncio.run(service.run())
        beats = read_heartbeats(heartbeat_dir(journal.path))
        assert "service" in beats
        beat = beats["service"]
        assert beat["phase"] == "running"
        # The monotonic liveness contract holds for the service beat too.
        assert isinstance(beat["last_progress_mono"], float)
        assert isinstance(beat["started_at_mono"], float)

    def test_epoch_clock_fires_on_monotonic_grid(self):
        naps = []
        frozen_mono = lambda: 0.0  # noqa: E731

        async def fake_sleep(seconds):
            naps.append(seconds)

        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(
                n_epochs=3,
                n_workers=0,
                epoch_interval_s=1.0,
                mono_clock=frozen_mono,
                async_sleep=fake_sleep,
            ),
        )
        asyncio.run(service.run())
        # Epoch 0 fires immediately; epochs 1 and 2 wait out the grid.
        assert naps == pytest.approx([1.0, 2.0])

    def test_epoch_overrun_counts_as_slo_violation(self):
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(n_epochs=2, n_workers=0, epoch_interval_s=1e-9),
        )
        report = asyncio.run(service.run())
        assert report.slo_violations == 2
        assert all(o.slo_violation for o in report.outcomes)


class TestSoak:
    def test_sustained_overload_sheds_with_balanced_ledger(self):
        # Every epoch misses its (tick-clock) scheduling deadline, arming
        # backpressure; arrivals far outrun the 1 ms epochs, so overflow
        # must land in the shed ledger — and the service's final
        # conservation audit must still balance to the byte.
        controller = make_controller(
            epoch_duration=1.0,
            deadline_s=0.5,
            deadline_clock=TickClock(step=10.0),
            max_backlog=20.0,
            overflow_policy="shed",
            backpressure_after_misses=1,
        )
        service = SchedulingService(
            controller,
            make_arrivals(intensity=4.0),
            ServiceConfig(n_epochs=6, n_workers=0),
        )
        report = asyncio.run(service.run())
        assert report.n_epochs == 6
        assert all(o.report.deadline_hit for o in report.outcomes)
        assert report.shed_mb > 0.0
        assert report.slo_violations == 6
        # _finalize already ran check_conservation(); re-assert explicitly
        # that the books balance after the run.
        controller.check_conservation()

    def test_park_policy_keeps_overflow_on_the_books(self):
        controller = make_controller(
            epoch_duration=1.0,
            deadline_s=0.5,
            deadline_clock=TickClock(step=10.0),
            max_backlog=20.0,
            overflow_policy="park",
            backpressure_after_misses=1,
        )
        service = SchedulingService(
            controller,
            make_arrivals(intensity=4.0),
            ServiceConfig(n_epochs=5, n_workers=0),
        )
        report = asyncio.run(service.run())
        assert report.shed_mb == 0.0
        assert report.parked_mb > 0.0
        controller.check_conservation()

    def test_stop_mid_run_drains_and_balances(self):
        arrivals = make_arrivals()
        holder: "list[SchedulingService]" = []

        def stopping_arrivals(epoch):
            if epoch == 2:
                holder[0].request_stop()
            return arrivals(epoch)

        service = SchedulingService(
            make_controller(),
            stopping_arrivals,
            ServiceConfig(n_epochs=10, n_workers=0),
        )
        holder.append(service)
        report = asyncio.run(service.run())
        assert report.stopped_early
        assert report.drained
        # Ingestion stopped at the boundary; everything offered was served
        # through the normal epoch path, nothing abandoned.
        assert report.abandoned_batches == 0
        assert 1 <= report.n_epochs < 10
        service.controller.check_conservation()

    def test_no_drain_stop_counts_abandoned_batches(self):
        arrivals = make_arrivals()
        holder: "list[SchedulingService]" = []

        def stopping_arrivals(epoch):
            if epoch == 3:
                holder[0].request_stop()
            return arrivals(epoch)

        service = SchedulingService(
            make_controller(),
            stopping_arrivals,
            ServiceConfig(n_epochs=10, n_workers=0, queue_depth=8, drain=False),
        )
        holder.append(service)
        report = asyncio.run(service.run())
        assert report.stopped_early
        assert not report.drained
        # Batches left in the queue are counted, never silently dropped.
        assert report.n_epochs + report.abandoned_batches <= 4
        service.controller.check_conservation()

    def test_worker_death_retries_epoch_stage(self, tmp_path, monkeypatch):
        def dying_stage_tasks(self, demand, epoch):
            return [
                StageTask(
                    name=f"die:{epoch}",
                    fn=_DIE_ONCE,
                    kwargs={"marker": str(tmp_path / f"epoch{epoch}.marker")},
                )
            ]

        monkeypatch.setattr(SchedulingService, "_stage_tasks", dying_stage_tasks)
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(n_epochs=2, n_workers=2),
        )
        report = asyncio.run(service.run())
        assert report.n_epochs == 2
        assert report.worker_deaths == 2  # one death per epoch's first attempt
        assert report.stage_retries == 2
        for outcome in report.outcomes:
            assert outcome.stage_failures == 0  # the retry succeeded
            (payload,) = outcome.arms
            assert payload["recovered"] is True


class TestLiveTelemetry:
    def test_scrape_endpoints_live_during_run(self, tmp_path):
        import json
        import urllib.request

        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(
                n_epochs=3,
                n_workers=0,
                telemetry_port=0,
                incidents_dir=tmp_path / "incidents",
            ),
        )
        scraped = {}

        async def drive():
            task = asyncio.ensure_future(service.run())
            for _ in range(1000):
                await asyncio.sleep(0.005)
                if service.telemetry is not None and service.telemetry.port:
                    break
            port = service.telemetry.port

            def get(path):
                url = f"http://127.0.0.1:{port}{path}"
                with urllib.request.urlopen(url, timeout=5) as response:
                    return (
                        response.status,
                        response.read().decode("utf-8"),
                        response.headers.get("Content-Type"),
                    )

            scraped["metrics"] = get("/metrics")
            scraped["healthz"] = get("/healthz")
            scraped["status"] = get("/status")
            return await task

        with obs.observability(tracer=obs.JsonlTracer(), metrics=obs.MetricsRegistry()):
            report = asyncio.run(drive())
        assert report.n_epochs == 3
        code, text, ctype = scraped["metrics"]
        assert code == 200
        assert ctype.startswith("application/openmetrics-text")
        assert text.endswith("# EOF\n")
        assert scraped["healthz"][0] == 200
        status = json.loads(scraped["status"][1])
        assert status["draining"] is False
        assert "slo_burn_rate" in status
        assert "incidents" in status
        # A healthy run trips no flight-recorder trigger.
        assert report.incident_bundles == []
        # The server is down after the run drains.
        assert service.telemetry.port is None

    def test_burn_gauges_published_per_epoch(self):
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(n_epochs=2, n_workers=0, telemetry_port=0),
        )
        registry = obs.MetricsRegistry()
        with obs.observability(metrics=registry):
            asyncio.run(service.run())
        snapshot = registry.snapshot()
        assert "service_slo_burn_rate" in snapshot
        windows = {
            entry["labels"]["window"]
            for entry in snapshot["service_slo_burn_rate"]["values"]
        }
        assert windows == {"1m", "10m"}

    def test_telemetry_on_is_bit_identical(self, tmp_path):
        from dataclasses import asdict

        def run(telemetry: bool) -> ServiceReport:
            service = SchedulingService(
                make_controller(),
                make_arrivals(),
                ServiceConfig(
                    n_epochs=4,
                    n_workers=0,
                    telemetry_port=0 if telemetry else None,
                    incidents_dir=(tmp_path / "incidents") if telemetry else None,
                ),
            )
            return service.run_sync()

        plain = run(False)
        live = run(True)
        assert [asdict(r) for r in live.reports] == [asdict(r) for r in plain.reports]

    def test_deadline_misses_dump_slo_incidents(self, tmp_path):
        from repro.obs.incidents import TRIGGER_SLO, load_incident

        service = SchedulingService(
            make_controller(deadline_s=2.5, deadline_clock=TickClock(3.0)),
            make_arrivals(),
            ServiceConfig(
                n_epochs=2,
                n_workers=0,
                telemetry_port=None,  # recorder alone, no HTTP server
                incidents_dir=tmp_path / "incidents",
            ),
        )
        report = service.run_sync()
        assert report.slo_violations == 2
        slo_bundles = [
            path for path in report.incident_bundles if TRIGGER_SLO in path
        ]
        assert len(slo_bundles) == 2
        bundle = load_incident(slo_bundles[-1])
        assert bundle["trigger"] == TRIGGER_SLO
        assert bundle["frames"][-1]["outcome"]["slo_violation"] is True
        assert "schedule_deadline" in bundle["frames"][-1]["outcome"]["slo_reasons"]

    def test_worker_crash_dumps_incident(self, tmp_path, monkeypatch):
        from repro.obs.incidents import TRIGGER_CRASH, load_incident

        def dying_stage_tasks(self, demand, epoch):
            if epoch != 1:
                return []
            return [
                StageTask(
                    name=f"die:{epoch}",
                    fn=_DIE_ONCE,
                    kwargs={"marker": str(tmp_path / f"epoch{epoch}.marker")},
                )
            ]

        monkeypatch.setattr(SchedulingService, "_stage_tasks", dying_stage_tasks)
        service = SchedulingService(
            make_controller(),
            make_arrivals(),
            ServiceConfig(
                n_epochs=3,
                n_workers=2,
                incidents_dir=tmp_path / "incidents",
            ),
        )
        report = asyncio.run(service.run())
        crash_bundles = [
            path for path in report.incident_bundles if TRIGGER_CRASH in path
        ]
        assert len(crash_bundles) == 1
        bundle = load_incident(crash_bundles[0])
        assert bundle["epoch"] == 1
        (death,) = bundle["frames"][-1]["worker_deaths"]
        assert death["reason"] == "crashed"
        assert death["task"] == "die:1"
        assert isinstance(death["respawned_pid"], int)


def test_service_report_defaults():
    report = ServiceReport()
    assert report.n_epochs == 0
    assert report.reports == []
    assert report.drained
