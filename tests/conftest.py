"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.switch.params import SwitchParams, fast_ocs_params, slow_ocs_params


@pytest.fixture(autouse=True)
def _isolated_run_dir(tmp_path, monkeypatch):
    """Point auto-derived sweep journals at the test's tmp dir.

    CLI sweeps are resumable-by-default and would otherwise create a
    ``runs/`` directory inside the repository on every test invocation.
    """
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests that need variation spawn their own."""
    return np.random.default_rng(20161212)  # CoNEXT'16 opening day


@pytest.fixture
def fast_params() -> SwitchParams:
    """Paper's fast-OCS switch at a small test radix."""
    return fast_ocs_params(8)


@pytest.fixture
def slow_params() -> SwitchParams:
    """Paper's slow-OCS switch at a small test radix."""
    return slow_ocs_params(8)


@pytest.fixture
def sparse_demand(rng: np.random.Generator) -> np.ndarray:
    """A small random sparse demand matrix (Mb)."""
    demand = rng.uniform(0.5, 5.0, size=(8, 8))
    demand *= rng.random((8, 8)) < 0.4
    return demand


@pytest.fixture
def skewed_demand() -> np.ndarray:
    """8-port demand with one one-to-many row and one many-to-one column."""
    demand = np.zeros((8, 8))
    demand[0, 1:8] = 1.2  # one-to-many from port 0
    demand[0:7, 7] += 1.1  # many-to-one into port 7
    return demand


@pytest.fixture
def skewed_demand16() -> np.ndarray:
    """16-port skewed demand.

    At radix 16 the composite path's OCS leg saturates (fan-out × Ce >= Co),
    which is the regime the paper evaluates (n >= 32); radix-8 composite
    paths are EPS-bound and do not exhibit the paper's speedups.
    """
    demand = np.zeros((16, 16))
    demand[0, 1:15] = 1.2  # one-to-many from port 0, fan-out 14
    demand[1:15, 15] += 1.1  # many-to-one into port 15, fan-in 14
    return demand
