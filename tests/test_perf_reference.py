"""Tests for the frozen reference kernels and the perf-tracking harness.

The reference module exists so the optimized hot path can be checked
against ground truth; these tests pin both directions of that contract:
the reference preserves the seed behaviour (including the phase-skip dust
bug), and the optimized pipeline is bit-identical to it on seeded
workloads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.perf import (
    STAGES,
    assert_results_equivalent,
    bench_point,
    reference_cp_schedule,
    reference_hybrid_schedule,
    reference_simulate_cp,
    reference_simulate_hybrid,
    run_suite,
    write_report,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.engine import FluidEngine
from repro.sim.reference import ReferenceFluidEngine
from repro.switch.params import SwitchParams, fast_ocs_params
from repro.utils.rng import spawn_rngs
from repro.workloads.skewed import SkewedWorkload


def _seeded_demand(n_ports: int, seed: int = 2016) -> np.ndarray:
    params = fast_ocs_params(n_ports)
    workload = SkewedWorkload.for_params(params)
    (rng,) = spawn_rngs(seed, 1)
    return workload.generate(n_ports, rng).demand


class TestReferencePreservesSeedBehaviour:
    """The reference engine must keep the seed's dust bug, not the fix."""

    def test_reference_engine_idles_out_phase_on_dust(self):
        params = SwitchParams(n_ports=2, ocs_rate=1e4)
        demand = np.array([[0.0, 5e-9], [20.0, 0.0]])
        circuits = np.array([[0, 1], [0, 0]], dtype=np.int8)
        engine = ReferenceFluidEngine(demand, params)
        engine.run_phase(2.5, circuits=circuits)
        # Seed behaviour: the 5e-9 Mb circuit entry drains in ~5e-13 ms,
        # below TIME_TOL, so the whole phase idles out and the 20 Mb EPS
        # entry makes no progress at all.
        assert np.isnan(engine.finish_times[1, 0])
        assert engine.residual_total() == pytest.approx(20.0, abs=1e-6)
        assert engine.clock == pytest.approx(2.5)

    def test_optimized_engine_snaps_dust_and_keeps_serving(self):
        params = SwitchParams(n_ports=2, ocs_rate=1e4)
        demand = np.array([[0.0, 5e-9], [20.0, 0.0]])
        circuits = np.array([[0, 1], [0, 0]], dtype=np.int8)
        engine = FluidEngine(demand, params)
        engine.run_phase(2.5, circuits=circuits)
        # Fixed behaviour: the dust entry snaps to zero at the clock and
        # the other entry still drains at the EPS rate (20 Mb / 10 Mb/ms).
        assert engine.finish_times[0, 1] == 0.0
        assert engine.finish_times[1, 0] == pytest.approx(2.0)
        assert engine.residual_total() == 0.0


class TestBitIdenticalEquivalence:
    """Optimized pipeline == reference pipeline on a seeded fig5 point."""

    @pytest.fixture(scope="class")
    def demand(self):
        return _seeded_demand(16)

    @pytest.fixture(scope="class")
    def params(self):
        return fast_ocs_params(16)

    def test_hybrid_pipeline_bit_identical(self, demand, params):
        ref_schedule = reference_hybrid_schedule(demand, params, "solstice")
        opt_schedule = SolsticeScheduler().schedule(demand, params)
        ref = reference_simulate_hybrid(demand, ref_schedule, params)
        opt = simulate_hybrid(demand, opt_schedule, params)
        assert_results_equivalent(ref, opt, "hybrid radix-16")
        assert np.array_equal(ref.finish_times, opt.finish_times, equal_nan=True)

    def test_cp_pipeline_bit_identical(self, demand, params):
        ref_schedule = reference_cp_schedule(demand, params, "solstice")
        opt_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        ref = reference_simulate_cp(demand, ref_schedule, params)
        opt = simulate_cp(demand, opt_schedule, params)
        assert_results_equivalent(ref, opt, "cp radix-16")

    def test_cross_engine_on_same_schedule(self, demand, params):
        # Isolate the engines: identical schedule, both engines, identical
        # finish times — this is the check that covers the Eclipse (fig6)
        # pairing too, where the scheduler code is shared.
        schedule = SolsticeScheduler().schedule(demand, params)
        ref = reference_simulate_hybrid(demand, schedule, params)
        opt = simulate_hybrid(demand, schedule, params)
        assert np.array_equal(ref.finish_times, opt.finish_times, equal_nan=True)
        assert ref.completion_time == opt.completion_time

    def test_equivalence_helper_rejects_differences(self, demand, params):
        schedule = SolsticeScheduler().schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params)
        other = simulate_hybrid(demand * 1.5, SolsticeScheduler().schedule(demand * 1.5, params), params)
        with pytest.raises(AssertionError):
            assert_results_equivalent(result, other)


class TestPerfHarness:
    """Schema and guard behaviour of the bench harness itself."""

    @pytest.fixture(scope="class")
    def payload(self):
        return run_suite(
            radices=(8,), schedulers=("solstice",), n_trials=1, repeats=1
        )

    def test_payload_schema(self, payload):
        assert payload["benchmark"] == "engine-hot-path"
        assert payload["headline_radix"] == 8
        assert "solstice" in payload["headline_speedup"]
        (point,) = payload["points"]
        assert point["radix"] == 8
        assert point["figure"] == "fig5"
        assert point["bit_identical"] is True
        for side in ("before_s", "after_s"):
            for stage in STAGES + ("total",):
                assert point[side][stage] >= 0.0
        assert point["speedup"] > 0.0

    def test_report_round_trips_as_json(self, payload, tmp_path):
        path = write_report(payload, tmp_path / "BENCH_engine.json")
        loaded = json.loads(path.read_text())
        assert loaded["points"][0]["radix"] == 8

    def test_bench_point_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            bench_point(n_ports=8, repeats=0)
