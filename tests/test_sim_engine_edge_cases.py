"""Edge-case and failure-injection tests for the fluid engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import CompositeService, FluidEngine, TIME_TOL
from repro.switch.params import SwitchParams, fast_ocs_params


def engine_for(demand, **kwargs) -> FluidEngine:
    params = SwitchParams(n_ports=demand.shape[0], **kwargs)
    return FluidEngine(np.asarray(demand, dtype=float), params)


class TestDegenerateInputs:
    def test_empty_demand_finishes_instantly(self):
        engine = engine_for(np.zeros((4, 4)))
        engine.run_phase(None)
        result = engine.result(n_configs=0, makespan=0.0)
        assert result.completion_time == 0.0
        assert result.total_demand == 0.0

    def test_zero_duration_phase_is_noop(self):
        engine = engine_for(np.ones((3, 3)) - np.eye(3))
        engine.run_phase(0.0)
        assert engine.clock == 0.0
        assert engine.residual_total() == pytest.approx(6.0)

    def test_negative_duration_rejected(self):
        engine = engine_for(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            engine.run_phase(-1.0)

    def test_demand_params_shape_mismatch(self):
        with pytest.raises(ValueError):
            FluidEngine(np.zeros((3, 3)), fast_ocs_params(4))

    def test_tiny_epsilon_demand_drains(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 1e-8
        engine = engine_for(demand)
        engine.run_phase(None)
        assert engine.residual_total() == 0.0

    def test_huge_demand_drains_exactly(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 1e6  # 1 Tb
        engine = engine_for(demand)
        engine.run_phase(None)
        assert engine.finish_times[0, 1] == pytest.approx(1e5)  # at Ce=10


class TestCircuitCornerCases:
    def test_circuit_on_empty_entry_idles(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 5.0
        engine = engine_for(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[2, 3] = 1  # no demand there
        engine.run_phase(0.3, circuits=circuits)
        assert engine.served_ocs_direct == 0.0
        # EPS still worked on the real entry.
        assert engine.served_eps > 0

    def test_circuit_outlives_its_demand(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 10.0  # drains in 0.1 ms at Co
        engine = engine_for(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[0, 1] = 1
        engine.run_phase(1.0, circuits=circuits)
        assert engine.finish_times[0, 1] == pytest.approx(0.1)
        assert engine.clock == pytest.approx(1.0)  # phase runs to the end
        assert engine.served_ocs_direct == pytest.approx(10.0)

    def test_full_permutation_all_served_in_parallel(self):
        n = 4
        demand = np.full((n, n), 0.0)
        perm = np.zeros((n, n), dtype=np.int8)
        for i in range(n):
            j = (i + 1) % n
            demand[i, j] = 50.0
            perm[i, j] = 1
        engine = engine_for(demand)
        engine.run_phase(1.0, circuits=perm)
        # All four circuits at Co concurrently: everything done at 0.5 ms.
        finish = engine.finish_times[demand > 0]
        np.testing.assert_allclose(finish, 0.5)


class TestCompositeCornerCases:
    def test_composite_grant_with_no_filtered_demand_is_noop(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 5.0
        engine = engine_for(demand)
        # No assign_composite: the composite matrix is empty.
        engine.run_phase(0.5, composites=[CompositeService("o2m", 2)])
        assert engine.served_composite == 0.0

    def test_both_directions_same_entry(self):
        # Entry (0, 3) is served by port 0's o2m path AND port 3's m2o path
        # simultaneously; volume must not be double-booked.
        n = 4
        demand = np.zeros((n, n))
        demand[0, 3] = 8.0
        params = SwitchParams(n_ports=n)
        engine = FluidEngine(demand, params)
        engine.assign_composite(demand.copy())
        engine.run_phase(
            1.0,
            composites=[CompositeService("o2m", 0), CompositeService("m2o", 3)],
        )
        engine.merge_composite_into_regular()
        engine.run_phase(None)
        result = engine.result(n_configs=1, makespan=1.0)
        result.check_conservation()
        # Served at up to 2 * min(Ce, Co) = 20 Mb/ms: finishes by 0.4 ms.
        assert engine.finish_times[0, 3] <= 0.4 + 1e-9

    def test_invalid_composite_kind_rejected(self):
        with pytest.raises(ValueError):
            CompositeService("sideways", 0)

    def test_negative_port_rejected(self):
        with pytest.raises(ValueError):
            CompositeService("o2m", -1)


class TestPhaseSequencing:
    def test_many_short_phases_accumulate_clock(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 100.0
        engine = engine_for(demand)
        for _ in range(10):
            engine.run_phase(0.05)
        assert engine.clock == pytest.approx(0.5)
        assert engine.regular[0, 1] == pytest.approx(95.0)  # EPS at 10

    def test_idle_phase_advances_clock_without_service(self):
        engine = engine_for(np.zeros((3, 3)))
        engine.run_phase(0.7)
        assert engine.clock == pytest.approx(0.7)
        assert engine.served_eps == 0.0

    def test_sub_tolerance_phase_ignored(self):
        engine = engine_for(np.zeros((3, 3)))
        engine.run_phase(TIME_TOL / 10)
        assert engine.clock == 0.0


class TestEpsDisabled:
    def test_mechanism_isolation(self):
        # With the EPS off, only the circuit serves; the other entry waits.
        demand = np.zeros((4, 4))
        demand[0, 1] = 10.0
        demand[2, 3] = 10.0
        engine = engine_for(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[0, 1] = 1
        engine.run_phase(0.2, circuits=circuits, eps_enabled=False)
        assert engine.regular[0, 1] == 0.0
        assert engine.regular[2, 3] == pytest.approx(10.0)
        assert engine.served_eps == 0.0
