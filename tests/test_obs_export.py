"""Tests for the OpenMetrics/Prometheus textfile exporter."""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.cli import main
from repro.obs.export import (
    _escape_label_value,
    _format_bound,
    _format_value,
    render_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("trials_total", "trials run").labels(status="ok").inc(3)
    registry.counter("trials_total").labels(status="failed").inc()
    registry.gauge("backlog_mb", "current backlog").set(12.5)
    hist = registry.histogram("phase_seconds", "phase durations", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(0.6)
    hist.observe(5.0)  # lands in the +Inf overflow slot
    return registry


class TestFormatting:
    def test_escape_label_value(self):
        assert _escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_format_value_special(self):
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(2.5) == "2.5"

    def test_format_bound(self):
        assert _format_bound(math.inf) == "+Inf"
        assert _format_bound(0.25) == "0.25"


class TestRender:
    def test_counter_and_gauge_samples(self):
        text = render_openmetrics(_registry().snapshot())
        assert "# HELP trials_total trials run" in text
        assert "# TYPE trials_total counter" in text
        assert 'trials_total{status="ok"} 3' in text
        assert 'trials_total{status="failed"} 1' in text
        assert "# TYPE backlog_mb gauge" in text
        assert "backlog_mb 12.5" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_registry().snapshot())
        # Per-bucket counts are (1, 2, 1-overflow); exposition is cumulative.
        assert 'phase_seconds_bucket{le="0.1"} 1' in text
        assert 'phase_seconds_bucket{le="1"} 3' in text
        assert 'phase_seconds_bucket{le="+Inf"} 4' in text
        assert "phase_seconds_count 4" in text
        assert re.search(r"phase_seconds_sum 6\.1[45]", text)

    def test_labels_sorted_deterministically(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(zeta="1", alpha="2").inc()
        text = render_openmetrics(registry.snapshot())
        assert 'c{alpha="2",zeta="1"} 1' in text

    def test_empty_snapshot_is_just_eof(self):
        assert render_openmetrics({}) == "# EOF\n"

    def test_declared_inf_bound_emits_single_inf_bucket(self):
        # Regression: a histogram declared with an explicit math.inf bound
        # used to render *two* le="+Inf" samples (the declared bound plus
        # the synthetic overflow line) — an OpenMetrics parse error.
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, math.inf))
        hist.observe(0.5)
        hist.observe(2.0)
        text = render_openmetrics(registry.snapshot())
        inf_lines = [
            line for line in text.splitlines() if line.startswith('h_bucket{le="+Inf"')
        ]
        assert inf_lines == ['h_bucket{le="+Inf"} 2']
        assert "h_count 2" in text

    def test_unlabeled_histogram_with_labels_mixed(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.labels(stage="a").observe(0.5)
        hist.labels(stage="b").observe(2.0)
        text = render_openmetrics(registry.snapshot())
        assert 'h_bucket{le="1",stage="a"} 1' in text
        assert 'h_bucket{le="+Inf",stage="b"} 1' in text


class TestCli:
    def test_export_metrics_snapshot(self, tmp_path, capsys):
        source = tmp_path / "metrics.json"
        source.write_text(json.dumps(_registry().snapshot()))
        assert main(["obs", "export", str(source)]) == 0
        out = capsys.readouterr().out
        assert 'trials_total{status="ok"} 3' in out
        assert out.endswith("# EOF\n")

    def test_export_to_file(self, tmp_path):
        source = tmp_path / "metrics.json"
        source.write_text(json.dumps(_registry().snapshot()))
        out = tmp_path / "metrics.prom"
        assert main(["obs", "export", str(source), "--out", str(out)]) == 0
        assert out.read_text().endswith("# EOF\n")

    def test_export_trace_embedded_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "compare",
                    "--radix",
                    "8",
                    "--trials",
                    "1",
                    "--no-journal",
                    "--isolation",
                    "inline",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "export", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cpsched_schedules_total" in out
        assert "# EOF" in out

    def test_export_spanless_metrics_errors(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            json.dumps({"kind": "meta", "format": 1, "spans": 1, "events": 0}) + "\n"
            + json.dumps(
                {"kind": "span", "id": 1, "parent": None, "name": "x",
                 "start": 0.0, "end": 1.0}
            )
            + "\n"
        )
        with pytest.raises(SystemExit, match="no metrics snapshot"):
            main(["obs", "export", str(trace)])
