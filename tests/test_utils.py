"""Tests for units, RNG plumbing, and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.units import gbps_to_mb_per_ms, mb_per_ms_to_gbps, ms_to_us, us_to_ms
from repro.utils.validation import (
    check_demand_matrix,
    check_nonnegative,
    check_permutation,
    check_positive,
)


class TestUnits:
    def test_gbps_identity(self):
        assert gbps_to_mb_per_ms(10.0) == 10.0
        assert mb_per_ms_to_gbps(100.0) == 100.0

    def test_time_roundtrip(self):
        assert us_to_ms(20.0) == pytest.approx(0.02)
        assert ms_to_us(us_to_ms(20.0)) == pytest.approx(20.0)


class TestRng:
    def test_ensure_rng_from_seed(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_from_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_ensure_rng_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [g.random() for g in spawn_rngs(7, 3)]
        second = [g.random() for g in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_check_demand_matrix_copies(self):
        original = np.ones((2, 2))
        checked = check_demand_matrix(original)
        checked[0, 0] = 9.0
        assert original[0, 0] == 1.0

    def test_check_demand_matrix_rejects(self):
        with pytest.raises(ValueError):
            check_demand_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError):
            check_demand_matrix(np.ones(4))
        with pytest.raises(ValueError):
            check_demand_matrix(np.array([[np.inf, 0], [0, 0]]))
        with pytest.raises(ValueError):
            check_demand_matrix(np.empty((0, 0)))

    def test_check_demand_matrix_rectangular_allowed(self):
        arr = check_demand_matrix(np.ones((2, 3)), square=False)
        assert arr.shape == (2, 3)

    def test_check_permutation_partial_vs_full(self):
        partial = np.zeros((3, 3), dtype=int)
        partial[0, 1] = 1
        assert check_permutation(partial, partial=True).sum() == 1
        with pytest.raises(ValueError):
            check_permutation(partial, partial=False)
        full = np.eye(3, dtype=int)
        assert check_permutation(full, partial=False).sum() == 3

    def test_check_permutation_rejects_values(self):
        with pytest.raises(ValueError):
            check_permutation(np.full((2, 2), 2))
