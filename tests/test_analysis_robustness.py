"""Tests for scheduling under imperfect demand estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.robustness import (
    perturb_demand,
    robustness_trial,
    simulate_with_estimate,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp
from repro.switch.params import fast_ocs_params


class TestPerturbDemand:
    def test_exact_when_no_errors(self, sparse_demand):
        estimate = perturb_demand(sparse_demand, np.random.default_rng(0))
        np.testing.assert_allclose(estimate, sparse_demand)

    def test_staleness_scales_down(self, sparse_demand):
        estimate = perturb_demand(
            sparse_demand, np.random.default_rng(0), staleness=0.3
        )
        np.testing.assert_allclose(estimate, 0.7 * sparse_demand)

    def test_noise_bounded(self, sparse_demand):
        estimate = perturb_demand(sparse_demand, np.random.default_rng(0), noise=0.2)
        mask = sparse_demand > 0
        ratio = estimate[mask] / sparse_demand[mask]
        assert (ratio >= 0.8 - 1e-12).all() and (ratio <= 1.2 + 1e-12).all()

    def test_miss_rate_zeroes_entries(self, sparse_demand):
        estimate = perturb_demand(
            sparse_demand, np.random.default_rng(0), miss_rate=1.0
        )
        assert estimate.sum() == 0.0

    def test_never_negative(self, sparse_demand):
        estimate = perturb_demand(
            sparse_demand, np.random.default_rng(1), noise=0.9, staleness=0.5
        )
        assert (estimate >= 0).all()

    def test_invalid_params_rejected(self, sparse_demand):
        with pytest.raises(ValueError):
            perturb_demand(sparse_demand, staleness=1.5)
        with pytest.raises(ValueError):
            perturb_demand(sparse_demand, staleness=-0.1)
        with pytest.raises(ValueError):
            perturb_demand(sparse_demand, miss_rate=1.5)
        with pytest.raises(ValueError):
            perturb_demand(sparse_demand, miss_rate=-0.1)
        with pytest.raises(ValueError):
            perturb_demand(sparse_demand, noise=-0.1)

    def test_boundary_values_mean_fully_blind(self, sparse_demand):
        # staleness and miss_rate share the same closed-interval validation:
        # 1.0 is legal for both and each yields the all-zero estimate.
        stale = perturb_demand(sparse_demand, np.random.default_rng(0), staleness=1.0)
        assert stale.sum() == 0.0
        missed = perturb_demand(sparse_demand, np.random.default_rng(0), miss_rate=1.0)
        assert missed.sum() == 0.0
        fresh = perturb_demand(
            sparse_demand, np.random.default_rng(0), staleness=0.0, miss_rate=0.0
        )
        np.testing.assert_allclose(fresh, sparse_demand)


class TestSimulateWithEstimate:
    def test_exact_estimate_matches_normal_path(self, skewed_demand16):
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        direct = simulate_cp(skewed_demand16, cp_schedule, params)
        via_estimate = simulate_with_estimate(skewed_demand16, cp_schedule, params)
        assert via_estimate.completion_time == pytest.approx(direct.completion_time)
        assert via_estimate.served_composite == pytest.approx(direct.served_composite)

    def test_overestimate_does_not_break_conservation(self, skewed_demand16):
        params = fast_ocs_params(16)
        inflated = skewed_demand16 * 1.5  # scheduler thinks there is more
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(inflated, params)
        result = simulate_with_estimate(skewed_demand16, cp_schedule, params)
        result.check_conservation()
        assert result.finished

    def test_missed_demand_still_served(self, skewed_demand16):
        # The estimator misses the m2o column; those entries drain via the
        # regular paths anyway.
        params = fast_ocs_params(16)
        estimate = skewed_demand16.copy()
        estimate[:, 15] = 0.0
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(estimate, params)
        result = simulate_with_estimate(skewed_demand16, cp_schedule, params)
        result.check_conservation()
        assert result.finished


class TestRobustnessTrial:
    def test_zero_error_reproduces_clean_gap(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_result, cp_result = robustness_trial(
            skewed_demand16, SolsticeScheduler(), params, np.random.default_rng(0)
        )
        assert cp_result.completion_time < h_result.completion_time

    def test_moderate_staleness_keeps_cp_ahead(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_result, cp_result = robustness_trial(
            skewed_demand16,
            SolsticeScheduler(),
            params,
            np.random.default_rng(0),
            staleness=0.2,
            noise=0.1,
        )
        assert cp_result.completion_time < h_result.completion_time
        cp_result.check_conservation()

    def test_blind_estimator_degrades_to_eps(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_result, cp_result = robustness_trial(
            skewed_demand16,
            SolsticeScheduler(),
            params,
            np.random.default_rng(0),
            miss_rate=1.0,
        )
        assert h_result.n_configs == 0
        assert h_result.completion_time == pytest.approx(
            cp_result.completion_time
        )
        assert h_result.finished

    def test_blind_results_are_independent_objects(self, skewed_demand16):
        # Regression: the blind branch used to return the SAME result for
        # both switches, so mutating one handle corrupted the other.
        params = fast_ocs_params(16)
        h_result, cp_result = robustness_trial(
            skewed_demand16,
            SolsticeScheduler(),
            params,
            np.random.default_rng(0),
            staleness=1.0,
        )
        assert h_result is not cp_result
        assert h_result.finish_times is not cp_result.finish_times
        np.testing.assert_array_equal(h_result.finish_times, cp_result.finish_times)
