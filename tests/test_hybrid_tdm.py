"""Tests for the TDM strawman scheduler (Figure 1(a))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.hybrid.tdm import TdmScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params


class TestEdgeColoring:
    def test_rounds_partition_entries(self):
        rng = np.random.default_rng(0)
        mask = rng.random((8, 8)) < 0.4
        rounds = TdmScheduler._edge_coloring(mask)
        total = np.zeros_like(mask, dtype=int)
        for perm in rounds:
            assert (perm.sum(axis=1) <= 1).all()
            assert (perm.sum(axis=0) <= 1).all()
            total += perm
        np.testing.assert_array_equal(total.astype(bool), mask)
        assert (total <= 1).all()

    def test_round_count_at_least_max_degree(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 1:6] = True  # out-degree 5
        rounds = TdmScheduler._edge_coloring(mask)
        assert len(rounds) == 5

    def test_empty(self):
        assert TdmScheduler._edge_coloring(np.zeros((3, 3), dtype=bool)) == []


class TestTdmScheduler:
    def test_serializes_one_to_many(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = TdmScheduler().schedule(skewed_demand16, params)
        # A fan-out of 14 entries forces >= 14 configurations per cycle.
        assert schedule.n_configs >= 14

    def test_adaptive_covers_demand_fast(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = TdmScheduler(adaptive=True).schedule(skewed_demand16, params)
        covered = schedule.served_volume(skewed_demand16, params.ocs_rate)
        # Adaptive rounds drain their entries fully each visit.
        assert covered >= 0.9 * skewed_demand16.sum() or (
            schedule.makespan * params.eps_rate >= skewed_demand16.sum()
        )

    def test_empty_demand(self):
        params = fast_ocs_params(4)
        schedule = TdmScheduler().schedule(np.zeros((4, 4)), params)
        assert schedule.n_configs == 0

    def test_invalid_quantum(self):
        params = fast_ocs_params(4)
        with pytest.raises(ValueError):
            TdmScheduler(quantum=0.0).schedule(np.ones((4, 4)) - np.eye(4), params)

    def test_simulation_completes(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = TdmScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        result.check_conservation()

    def test_works_as_cp_inner_scheduler(self, skewed_demand16):
        # Algorithm 4 is generic over the sub-scheduler: even the TDM
        # strawman benefits from composite paths.
        params = fast_ocs_params(16)
        tdm = TdmScheduler(adaptive=True)
        h_result = simulate_hybrid(
            skewed_demand16, tdm.schedule(skewed_demand16, params), params
        )
        cp_schedule = CpSwitchScheduler(tdm).schedule(skewed_demand16, params)
        cp_result = simulate_cp(skewed_demand16, cp_schedule, params)
        assert cp_result.n_configs < h_result.n_configs
        assert cp_result.completion_time < h_result.completion_time

    def test_strawman_loses_to_solstice(self, sparse_demand):
        # Sanity of the baseline ordering: TDM (no intelligence) should
        # need at least as many configurations as Solstice.
        params = fast_ocs_params(8)
        tdm_configs = TdmScheduler().schedule(sparse_demand, params).n_configs
        solstice_configs = SolsticeScheduler().schedule(sparse_demand, params).n_configs
        assert tdm_configs >= solstice_configs
