"""Tests for the live telemetry plane (:mod:`repro.obs.live`) and the
lock-consistency contract of :class:`~repro.obs.metrics.MetricsRegistry`
it scrapes through."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.incidents import FlightRecorder
from repro.obs.live import (
    OPENMETRICS_CONTENT_TYPE,
    BurnRateTracker,
    LiveTelemetry,
    TelemetryServer,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class FakeMono:
    """A settable monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            response.headers.get("Content-Type"),
        )


class TestBurnRateTracker:
    def test_rates_per_window(self):
        clock = FakeMono()
        tracker = BurnRateTracker((("10s", 10.0), ("100s", 100.0)), mono_clock=clock)
        for t, miss in [(0.0, True), (50.0, False), (95.0, True), (99.0, False)]:
            clock.now = t
            tracker.record(miss)
        clock.now = 100.0
        rates = tracker.rates()
        assert rates["10s"] == pytest.approx(0.5)  # epochs at 95, 99
        assert rates["100s"] == pytest.approx(0.5)  # all four
        clock.now = 200.0
        assert tracker.rates() == {"10s": 0.0, "100s": 0.0}

    def test_prunes_past_widest_window(self):
        clock = FakeMono()
        tracker = BurnRateTracker((("1s", 1.0),), mono_clock=clock)
        for t in range(100):
            clock.now = float(t)
            tracker.record(True)
        assert len(tracker._samples) <= 2

    def test_publish_sets_window_gauges(self):
        registry = MetricsRegistry()
        clock = FakeMono()
        tracker = BurnRateTracker((("1m", 60.0),), mono_clock=clock)
        tracker.record(True)
        rates = tracker.publish(registry)
        assert rates == {"1m": 1.0}
        entry = registry.snapshot()["service_slo_burn_rate"]["values"][0]
        assert entry["labels"] == {"window": "1m"}
        assert entry["value"] == 1.0

    def test_publish_null_registry_is_noop(self):
        tracker = BurnRateTracker(mono_clock=FakeMono())
        tracker.record(False)
        assert tracker.publish(NULL_METRICS) == {"1m": 0.0, "10m": 0.0}

    def test_rejects_no_windows(self):
        with pytest.raises(ValueError, match="at least one window"):
            BurnRateTracker(())


class TestTelemetryServer:
    def test_routes_and_content_types(self):
        server = TelemetryServer(
            metrics_fn=lambda: "# EOF\n",
            status_fn=lambda: {"epoch": 7},
            health_fn=lambda: (200, {"status": "ok"}),
        ).start()
        try:
            port = server.port
            code, body, ctype = _get(port, "/metrics")
            assert (code, body, ctype) == (200, "# EOF\n", OPENMETRICS_CONTENT_TYPE)
            code, body, _ = _get(port, "/status")
            assert code == 200 and json.loads(body) == {"epoch": 7}
            code, body, _ = _get(port, "/healthz")
            assert code == 200 and json.loads(body) == {"status": "ok"}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_unhealthy_health_code_propagates(self):
        server = TelemetryServer(
            metrics_fn=lambda: "# EOF\n",
            status_fn=dict,
            health_fn=lambda: (503, {"status": "stale"}),
        ).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.port, "/healthz")
            assert excinfo.value.code == 503
        finally:
            server.stop()

    def test_endpoint_exception_is_500_not_crash(self):
        def boom():
            raise RuntimeError("scrape-time failure")

        server = TelemetryServer(
            metrics_fn=boom, status_fn=dict, health_fn=lambda: (200, {})
        ).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.port, "/metrics")
            assert excinfo.value.code == 500
            # ... and the server survives to answer the next scrape.
            assert _get(server.port, "/status")[0] == 200
        finally:
            server.stop()


class TestLiveTelemetry:
    def _telemetry(self, tmp_path=None, **overrides):
        overrides.setdefault("registry", MetricsRegistry())
        overrides.setdefault("port", None)
        overrides.setdefault("mono_clock", FakeMono())
        if tmp_path is not None:
            overrides.setdefault("recorder", FlightRecorder(tmp_path / "incidents"))
        return LiveTelemetry(**overrides)

    def _epoch_kwargs(self, epoch: int = 0, **overrides):
        report = {
            "epoch": epoch,
            "backlog_after": 2.5,
            "fallback_level": 0,
            "deadline_hit": False,
            "reroute_swaps": 0,
        }
        report.update(overrides.pop("report", {}))
        outcome = {"slo_violation": False, "epoch_latency_s": 0.02}
        outcome.update(overrides.pop("outcome", {}))
        return dict(epoch=epoch, report=report, outcome=outcome, **overrides)

    def test_on_epoch_updates_status_and_burn(self):
        telemetry = self._telemetry()
        telemetry.on_epoch(**self._epoch_kwargs(0))
        telemetry.on_epoch(**self._epoch_kwargs(1, outcome={"slo_violation": True}))
        status = telemetry.status()
        assert status["epoch"] == 1
        assert status["epochs_done"] == 2
        assert status["backlog_mb"] == 2.5
        assert status["slo_violations"] == 1
        assert status["slo_burn_rate"]["1m"] == pytest.approx(0.5)
        assert status["draining"] is False
        # burn gauges landed in the scrapeable registry
        assert "service_slo_burn_rate" in telemetry.render_metrics()

    def test_health_goes_stale_then_recovers_on_touch(self):
        clock = FakeMono()
        telemetry = self._telemetry(mono_clock=clock, stale_after_s=5.0)
        assert telemetry.health()[0] == 200
        clock.now = 6.0
        code, payload = telemetry.health()
        assert code == 503 and payload["status"] == "stale"
        telemetry.touch()
        code, payload = telemetry.health()
        assert code == 200 and payload["status"] == "ok"

    def test_draining_reported_not_stale(self):
        telemetry = self._telemetry()
        telemetry.set_draining(True)
        code, payload = telemetry.health()
        assert code == 200
        assert payload["status"] == "draining"
        assert telemetry.status()["draining"] is True

    def test_on_epoch_feeds_flight_recorder(self, tmp_path):
        telemetry = self._telemetry(tmp_path)
        quiet = telemetry.on_epoch(**self._epoch_kwargs(0))
        assert quiet == []
        written = telemetry.on_epoch(
            **self._epoch_kwargs(1, outcome={"slo_violation": True})
        )
        assert len(written) == 1
        status = telemetry.status()
        assert status["incidents"] == {
            "triggered": {"slo_violation": 1},
            "bundles_written": 1,
        }
        bundle = json.loads(written[0].read_text())
        assert [frame["epoch"] for frame in bundle["frames"]] == [0, 1]

    def test_pool_status_exception_never_breaks_status(self):
        def broken():
            raise OSError("pool gone")

        telemetry = self._telemetry(pool_status_fn=broken)
        assert telemetry.status()["workers"] is None

    def test_no_port_means_no_server(self):
        telemetry = self._telemetry().start()
        assert telemetry.server is None and telemetry.port is None
        telemetry.stop()


class TestRegistryLockConsistency:
    """Satellite: a scrape racing the loop thread must never see a torn cut."""

    def _run_against(self, registry: MetricsRegistry, writer, checks, rounds=300):
        stop = threading.Event()
        errors: "list[BaseException]" = []

        def loop():
            try:
                while not stop.is_set():
                    writer()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        thread = threading.Thread(target=loop)
        thread.start()
        try:
            for _ in range(rounds):
                checks(registry.snapshot())
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not errors, errors

    def test_snapshot_consistent_under_inc_and_observe(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        hist = registry.histogram("op_seconds", buckets=(0.1, 1.0))

        def writer():
            counter.inc()
            hist.observe(0.5)

        def checks(snapshot):
            if "op_seconds" in snapshot:
                for entry in snapshot["op_seconds"]["values"]:
                    # A torn histogram shows count != sum of its buckets.
                    assert entry["count"] == sum(entry["bucket_counts"])
                    assert entry["sum"] == pytest.approx(0.5 * entry["count"])
            if "ops_total" in snapshot and "op_seconds" in snapshot:
                ops = snapshot["ops_total"]["values"][0]["value"]
                observed = snapshot["op_seconds"]["values"][0]["count"]
                # The writer incs then observes; one consistent cut can sit
                # between the two ops but never further apart.
                assert observed <= ops <= observed + 1

        self._run_against(registry, writer, checks)

    def test_snapshot_consistent_under_labeled_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("trials_total")

        def writer():
            counter.labels(status="ok").inc()
            counter.labels(status="failed").inc()

        def checks(snapshot):
            if "trials_total" in snapshot:
                values = {
                    entry["labels"]["status"]: entry["value"]
                    for entry in snapshot["trials_total"]["values"]
                    if entry["labels"]
                }
                ok = values.get("ok", 0)
                failed = values.get("failed", 0)
                assert failed <= ok <= failed + 1

        self._run_against(registry, writer, checks)

    def test_snapshot_sees_whole_merges_only(self):
        source = MetricsRegistry()
        source.counter("ops_total").inc(3)
        hist = source.histogram("op_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        foreign = source.snapshot()

        registry = MetricsRegistry()

        def writer():
            registry.merge(foreign)

        def checks(snapshot):
            if not snapshot:
                return
            entry = snapshot["op_seconds"]["values"][0]
            assert entry["count"] == sum(entry["bucket_counts"])
            # merge() holds the registry lock across the whole snapshot
            # fold, so a scrape sees an integral number of merges: the
            # counter and the histogram advance in lockstep (3 per merge).
            assert entry["count"] % 3 == 0
            assert snapshot["ops_total"]["values"][0]["value"] == entry["count"]

        self._run_against(registry, writer, checks)
