"""Pipeline-level cross-validation: slotted hybrid execution vs fluid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.packetlevel import PacketLevelHybrid
from repro.switch.params import fast_ocs_params


def single_circuit_schedule(n, i, j, duration, delta):
    perm = np.zeros((n, n), dtype=np.int8)
    perm[i, j] = 1
    return Schedule(
        entries=(ScheduleEntry(permutation=perm, duration=duration),),
        reconfig_delay=delta,
    )


class TestPacketLevelHybrid:
    def test_single_circuit_matches_fluid(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 20.0
        schedule = single_circuit_schedule(8, 0, 1, 0.5, params.reconfig_delay)
        fluid = simulate_hybrid(demand, schedule, params)
        packet = PacketLevelHybrid(params, slot_duration=0.002).execute(demand, schedule)
        assert packet.completion_time == pytest.approx(fluid.completion_time, rel=0.05)
        assert packet.ocs_volume + packet.eps_volume == pytest.approx(20.0)

    def test_reconfiguration_slots_idle_the_ocs(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 1.0
        # Zero-duration circuit: only the reconfiguration gap plus drain.
        schedule = single_circuit_schedule(8, 2, 3, 0.0, 0.1)
        packet = PacketLevelHybrid(params, slot_duration=0.01).execute(demand, schedule)
        assert packet.ocs_volume == 0.0
        assert packet.eps_volume == pytest.approx(1.0)

    def test_eps_does_not_serve_live_circuit_voq(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 100.0
        schedule = single_circuit_schedule(8, 0, 1, 1.0, 0.0)
        packet = PacketLevelHybrid(params, slot_duration=0.01).execute(demand, schedule)
        # The circuit covers the full 100 Mb in exactly its 1 ms; the EPS
        # never needed to touch the entry while the circuit was live.
        assert packet.ocs_volume == pytest.approx(100.0)
        assert packet.eps_volume == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_solstice_schedule_agrees_with_fluid(self, seed):
        params = fast_ocs_params(8)
        rng = np.random.default_rng(seed)
        demand = rng.uniform(1.0, 4.0, (8, 8)) * (rng.random((8, 8)) < 0.35)
        if demand.sum() == 0:
            pytest.skip("empty draw")
        schedule = SolsticeScheduler().schedule(demand, params)
        fluid = simulate_hybrid(demand, schedule, params)
        packet = PacketLevelHybrid(params, slot_duration=0.002).execute(demand, schedule)
        # Slot quantization rounds each configuration up to whole slots;
        # with 2 us slots and ~0.02-0.04 ms phases, tolerate ~15%.
        assert packet.completion_time == pytest.approx(fluid.completion_time, rel=0.15)
        total = demand.sum()
        assert packet.ocs_volume + packet.eps_volume == pytest.approx(total, rel=1e-9)

    def test_runaway_guard(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 1000.0
        schedule = Schedule(entries=(), reconfig_delay=params.reconfig_delay)
        with pytest.raises(RuntimeError):
            PacketLevelHybrid(params, slot_duration=0.01).execute(
                demand, schedule, max_slots=10
            )
