"""Property-based fuzzing of the fault-injection layer.

The companion of :mod:`tests.test_properties_engine`: hypothesis draws
random demand matrices *and* random fault mixes, and the end-to-end
invariants must hold regardless of what fails:

* volume conservation — ``delivered + stranded == total`` for both the
  h-Switch and the cp-Switch under any fault plan;
* graceful degradation — unbounded runs always finish (dead composite
  paths release their demand instead of stranding it);
* the all-zero plan is bit-identical to a fault-free run, whatever its
  seed;
* residuals never go negative, faulted or not.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.scheduler import CpSwitchScheduler
from repro.faults import FaultPlan
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams

N = 6

PARAMS = SwitchParams(n_ports=N, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def demands():
    return st.tuples(
        arrays(np.float64, (N, N), elements=st.floats(0.0, 30.0, allow_nan=False, width=32)),
        arrays(np.bool_, (N, N)),
    ).map(lambda pair: pair[0] * pair[1])


def rates():
    return st.floats(0.0, 1.0, allow_nan=False)


def plans():
    """Arbitrary valid fault plans, including the all-zero one."""
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**16),
        reconfig_failure_rate=rates(),
        reconfig_straggle_rate=rates(),
        straggle_factor=st.floats(1.0, 8.0, allow_nan=False),
        circuit_failure_rate=rates(),
        o2m_outage_rate=rates(),
        m2o_outage_rate=rates(),
        eps_degradation_rate=rates(),
        eps_degradation_factor=st.floats(0.1, 1.0, allow_nan=False),
    )


def _schedules(demand):
    scheduler = SolsticeScheduler()
    return (
        scheduler.schedule(demand, PARAMS),
        CpSwitchScheduler(scheduler).schedule(demand, PARAMS),
    )


class TestFaultFuzz:
    @given(demand=demands(), plan=plans())
    @settings(max_examples=40, deadline=None)
    def test_conservation_under_any_fault_mix(self, demand, plan):
        h_schedule, cp_schedule = _schedules(demand)
        h_result = simulate_hybrid(demand, h_schedule, PARAMS, faults=plan)
        cp_result = simulate_cp(demand, cp_schedule, PARAMS, faults=plan)
        for result in (h_result, cp_result):
            result.check_conservation()
            assert result.finished  # graceful degradation never strands
            np.testing.assert_allclose(
                result.delivered_volume + result.stranded_volume,
                result.total_demand,
                rtol=1e-6,
                atol=1e-6,
            )
        # Released volume is real filtered demand, never manufactured.
        assert 0.0 <= cp_result.released_composite <= demand.sum() + 1e-6

    @given(demand=demands(), plan=plans(), horizon=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_bounded_faulted_runs_keep_the_ledger(self, demand, plan, horizon):
        h_schedule, cp_schedule = _schedules(demand)
        h_result = simulate_hybrid(demand, h_schedule, PARAMS, horizon=horizon, faults=plan)
        cp_result = simulate_cp(demand, cp_schedule, PARAMS, horizon=horizon, faults=plan)
        for result in (h_result, cp_result):
            result.check_conservation()
            assert result.stranded_volume >= 0.0
            assert result.residual is not None
            assert (result.residual >= 0.0).all()

    @given(demand=demands(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_null_plan_bit_identical(self, demand, seed):
        h_schedule, cp_schedule = _schedules(demand)
        plan = FaultPlan(seed=seed)
        for simulate, schedule in (
            (simulate_hybrid, h_schedule),
            (simulate_cp, cp_schedule),
        ):
            base = simulate(demand, schedule, PARAMS)
            nulled = simulate(demand, schedule, PARAMS, faults=plan)
            assert nulled.completion_time == base.completion_time
            assert nulled.served_ocs_direct == base.served_ocs_direct
            assert nulled.served_composite == base.served_composite
            assert nulled.served_eps == base.served_eps
            np.testing.assert_array_equal(nulled.finish_times, base.finish_times)

    @given(demand=demands(), plan=plans())
    @settings(max_examples=40, deadline=None)
    def test_same_plan_replays_identically(self, demand, plan):
        _h_schedule, cp_schedule = _schedules(demand)
        first = simulate_cp(demand, cp_schedule, PARAMS, faults=plan)
        second = simulate_cp(demand, cp_schedule, PARAMS, faults=plan)
        assert first.completion_time == second.completion_time
        assert first.released_composite == second.released_composite
        np.testing.assert_array_equal(first.finish_times, second.finish_times)
