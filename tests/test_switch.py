"""Tests for switch parameters, demand wrapper, and VOQs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.switch.demand import DemandMatrix
from repro.switch.params import (
    FAST_OCS_DELTA_MS,
    SLOW_OCS_DELTA_MS,
    OcsClass,
    SwitchParams,
    fast_ocs_params,
    slow_ocs_params,
)
from repro.switch.voq import VirtualOutputQueues


class TestSwitchParams:
    def test_paper_constants(self):
        params = fast_ocs_params(64)
        assert params.eps_rate == 10.0  # 10 Gbps in Mb/ms
        assert params.ocs_rate == 100.0
        assert params.rate_ratio == 10.0
        assert params.reconfig_delay == pytest.approx(0.02)
        assert slow_ocs_params(64).reconfig_delay == pytest.approx(20.0)

    def test_ocs_class_properties(self):
        assert OcsClass.FAST.reconfig_delay == FAST_OCS_DELTA_MS
        assert OcsClass.SLOW.reconfig_delay == SLOW_OCS_DELTA_MS
        assert OcsClass.FAST.eclipse_window == 1.0
        assert OcsClass.SLOW.eclipse_window == 100.0

    def test_budget_defaults_to_eps_rate(self):
        params = fast_ocs_params(8)
        assert params.effective_eps_budget == params.eps_rate
        assert params.with_budget(4.0).effective_eps_budget == 4.0

    def test_budget_above_eps_rejected(self):
        with pytest.raises(ValueError):
            SwitchParams(n_ports=8, eps_budget=20.0)

    def test_eps_faster_than_ocs_rejected(self):
        with pytest.raises(ValueError):
            SwitchParams(n_ports=8, eps_rate=200.0, ocs_rate=100.0)

    def test_tiny_radix_rejected(self):
        with pytest.raises(ValueError):
            SwitchParams(n_ports=1)

    def test_with_ports(self):
        params = fast_ocs_params(8)
        assert params.with_ports(64).n_ports == 64
        assert params.with_ports(64).reconfig_delay == params.reconfig_delay


class TestDemandMatrix:
    def test_stats(self):
        demand = DemandMatrix(np.array([[0.0, 4.0], [1.0, 0.0]]))
        stats = demand.stats()
        assert stats.n_ports == 2
        assert stats.total_volume == pytest.approx(5.0)
        assert stats.nonzero_entries == 2
        assert stats.density == pytest.approx(0.5)
        assert stats.max_entry == 4.0

    def test_port_load_bound(self):
        demand = DemandMatrix(np.array([[0.0, 4.0], [1.0, 3.0]]))
        assert demand.max_port_load() == pytest.approx(7.0)  # col 1
        assert demand.eps_only_completion_bound(10.0) == pytest.approx(0.7)

    def test_immutability(self):
        demand = DemandMatrix(np.ones((2, 2)))
        with pytest.raises(ValueError):
            demand.array[0, 0] = 5.0
        copy = demand.to_array()
        copy[0, 0] = 5.0
        assert demand[0, 0] == 1.0

    def test_equality_and_hash(self):
        a = DemandMatrix(np.ones((2, 2)))
        b = DemandMatrix(np.ones((2, 2)))
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DemandMatrix(np.array([[-1.0]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DemandMatrix(np.array([[np.nan, 0.0], [0.0, 0.0]]))


class TestVirtualOutputQueues:
    def test_enqueue_serve_roundtrip(self):
        voqs = VirtualOutputQueues(4)
        voqs.enqueue(0, 1, 10.0)
        served = voqs.serve(0, 1, 4.0)
        assert served == 4.0
        assert voqs.backlog == pytest.approx(6.0)
        voqs.check_conservation()

    def test_serve_saturates_at_occupancy(self):
        voqs = VirtualOutputQueues(4)
        voqs.enqueue(2, 3, 1.0)
        assert voqs.serve(2, 3, 5.0) == pytest.approx(1.0)
        assert voqs.is_empty()

    def test_serve_matrix(self):
        initial = np.full((3, 3), 2.0)
        voqs = VirtualOutputQueues(3, initial=initial)
        served = voqs.serve_matrix(np.full((3, 3), 1.5))
        assert served.sum() == pytest.approx(13.5)
        assert voqs.backlog == pytest.approx(4.5)
        voqs.check_conservation()

    def test_negative_volume_rejected(self):
        voqs = VirtualOutputQueues(2)
        with pytest.raises(ValueError):
            voqs.enqueue(0, 0, -1.0)
        with pytest.raises(ValueError):
            voqs.serve(0, 0, -1.0)

    def test_initial_shape_checked(self):
        with pytest.raises(ValueError):
            VirtualOutputQueues(3, initial=np.zeros((2, 2)))

    def test_occupancy_view_is_read_only(self):
        voqs = VirtualOutputQueues(2)
        with pytest.raises(ValueError):
            voqs.occupancy[0, 0] = 1.0
