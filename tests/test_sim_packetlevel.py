"""Packet-level crossbar tests + fluid-model cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.schedule import Schedule
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.packetlevel import PacketLevelEps
from repro.switch.params import fast_ocs_params


class TestArbiter:
    def test_matching_is_one_to_one(self):
        eps = PacketLevelEps(4)
        backlog = np.ones((4, 4))
        matching = eps.arbitrate(backlog)
        inputs = [i for i, _ in matching]
        outputs = [j for _, j in matching]
        assert len(set(inputs)) == len(inputs)
        assert len(set(outputs)) == len(outputs)

    def test_full_backlog_gives_full_matching(self):
        eps = PacketLevelEps(4)
        matching = eps.arbitrate(np.ones((4, 4)))
        assert len(matching) == 4

    def test_only_requested_pairs_matched(self):
        eps = PacketLevelEps(4)
        backlog = np.zeros((4, 4))
        backlog[0, 2] = 1.0
        backlog[3, 1] = 1.0
        matching = sorted(eps.arbitrate(backlog))
        assert matching == [(0, 2), (3, 1)]

    def test_empty_backlog_gives_empty_matching(self):
        eps = PacketLevelEps(4)
        assert eps.arbitrate(np.zeros((4, 4))) == []

    def test_pointers_desynchronize(self):
        # Two inputs contending for one output alternate slots under the
        # round-robin pointer update.
        eps = PacketLevelEps(2)
        backlog = np.zeros((2, 2))
        backlog[0, 0] = backlog[1, 0] = 10.0
        winners = [eps.arbitrate(backlog)[0][0] for _ in range(4)]
        assert set(winners) == {0, 1}


class TestDrain:
    def test_single_flow_drain_time(self):
        eps = PacketLevelEps(4, eps_rate=10.0, slot_duration=0.01)
        demand = np.zeros((4, 4))
        demand[0, 1] = 10.0  # 10 Mb at 10 Mb/ms -> 1 ms -> 100 slots
        result = eps.drain(demand)
        assert result.slots_used == 100
        assert result.completion_time == pytest.approx(1.0)

    def test_conservation_and_counts(self):
        rng = np.random.default_rng(0)
        demand = rng.uniform(0, 2, (4, 4)) * (rng.random((4, 4)) < 0.5)
        eps = PacketLevelEps(4)
        result = eps.drain(demand)
        demanded = demand > 0
        assert not np.isnan(result.finish_times[demanded]).any()
        assert result.cells_transferred >= (demand > 0).sum()

    def test_rejects_runaway(self):
        eps = PacketLevelEps(4)
        demand = np.zeros((4, 4))
        demand[0, 1] = 100.0
        with pytest.raises(RuntimeError):
            eps.drain(demand, max_slots=3)


class TestFluidCrossValidation:
    """The fluid EPS model matches the slotted crossbar's drain times."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_completion_times_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        demand = rng.uniform(0.5, 3.0, (n, n)) * (rng.random((n, n)) < 0.4)
        if demand.sum() == 0:
            pytest.skip("empty draw")
        params = fast_ocs_params(n)
        fluid = simulate_hybrid(
            demand, Schedule(entries=(), reconfig_delay=params.reconfig_delay), params
        )
        packet = PacketLevelEps(n, eps_rate=params.eps_rate, slot_duration=0.005).drain(demand)
        # Slot quantization and arbiter granularity cost at most ~10%.
        assert packet.completion_time == pytest.approx(fluid.completion_time, rel=0.12)

    def test_bottleneck_port_drain_matches_exactly(self):
        # A pure fan-in: the output port is the only bottleneck and both
        # models must drain it at exactly Ce.
        n = 6
        demand = np.zeros((n, n))
        demand[0:5, 5] = 2.0  # 10 Mb into port 5
        params = fast_ocs_params(n)
        fluid = simulate_hybrid(
            demand, Schedule(entries=(), reconfig_delay=params.reconfig_delay), params
        )
        packet = PacketLevelEps(n, eps_rate=params.eps_rate, slot_duration=0.01).drain(demand)
        assert fluid.completion_time == pytest.approx(1.0)
        assert packet.completion_time == pytest.approx(1.0, rel=0.05)
