"""Tests for the observability layer (``repro.obs``).

Covers the tracer and metrics primitives, the null-backend defaults, the
fork-worker span shipping, the scheduler/engine/runner instrumentation,
the CLI flags, and — the load-bearing property — that an instrumented run
is bit-identical to an uninstrumented one across random demand matrices
and fault plans.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import obs
from repro.cli import main
from repro.core.scheduler import CpSwitchScheduler
from repro.faults import FaultPlan
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import load_trace, render_summary
from repro.obs.tracer import JsonlTracer, NULL_TRACER
from repro.runner import SweepConfig, SweepRunner, TrialSpec
from repro.runner.isolation import run_in_subprocess
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams

N = 6
PARAMS = SwitchParams(n_ports=N, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def demands():
    return st.tuples(
        arrays(np.float64, (N, N), elements=st.floats(0.0, 30.0, allow_nan=False, width=32)),
        arrays(np.bool_, (N, N)),
    ).map(lambda pair: pair[0] * pair[1])


def plans():
    rates = st.floats(0.0, 1.0, allow_nan=False)
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**16),
        reconfig_failure_rate=rates,
        reconfig_straggle_rate=rates,
        straggle_factor=st.floats(1.0, 8.0, allow_nan=False),
        circuit_failure_rate=rates,
        o2m_outage_rate=rates,
        m2o_outage_rate=rates,
        eps_degradation_rate=rates,
        eps_degradation_factor=st.floats(0.1, 1.0, allow_nan=False),
    )


# ---------------------------------------------------------------------- #
# tracer primitives
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_nesting_parents(self):
        tracer = JsonlTracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.event("ping", value=1)
        tracer.end(inner)
        tracer.end(outer)
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["ping"]["span"] == by_name["inner"]["id"]

    def test_span_context_manager(self):
        tracer = JsonlTracer()
        with tracer.span("block") as span:
            span.set(items=3)
        (record,) = tracer.records()
        assert record["attrs"]["items"] == 3
        assert record["end"] >= record["start"]

    def test_end_closes_orphans(self):
        tracer = JsonlTracer()
        outer = tracer.begin("outer")
        tracer.begin("leaked")
        tracer.end(outer)  # must close "leaked" too
        assert {r["name"] for r in tracer.records()} == {"outer", "leaked"}
        assert tracer.current_span_id is None

    def test_numpy_attrs_are_json_safe(self, tmp_path):
        tracer = JsonlTracer()
        with tracer.span("s") as span:
            span.set(count=np.int64(3), volume=np.float64(1.5), flag=np.bool_(True))
        path = tracer.dump(tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # every record round-trips

    def test_dump_roundtrip_and_open_span_flag(self, tmp_path):
        tracer = JsonlTracer()
        tracer.begin("still-open")
        with tracer.span("closed"):
            tracer.event("e")
        path = tracer.dump(tmp_path / "t.jsonl", meta={"command": "test"})
        data = load_trace(path)
        assert data.meta["command"] == "test"
        assert {s["name"] for s in data.spans} == {"still-open", "closed"}
        open_spans = [s for s in data.spans if s.get("open")]
        assert [s["name"] for s in open_spans] == ["still-open"]
        assert len(data.events) == 1

    def test_absorb_remaps_and_grafts(self):
        worker = JsonlTracer()
        w_outer = worker.begin("w.outer")
        worker.begin("w.inner")
        worker.event("w.event")
        worker.end(w_outer)  # closes inner too
        parent = JsonlTracer()
        trial = parent.begin("trial")
        parent.absorb(worker.drain())
        parent.end(trial)
        data = {r["name"]: r for r in parent.records()}
        assert data["w.outer"]["parent"] == data["trial"]["id"]
        assert data["w.inner"]["parent"] == data["w.outer"]["id"]
        assert data["w.event"]["span"] == data["w.inner"]["id"]
        ids = [r["id"] for r in parent.records() if r["kind"] == "span"]
        assert len(ids) == len(set(ids))

    def test_null_tracer_is_inert(self):
        handle = NULL_TRACER.begin("x")
        handle.set(anything=1)
        NULL_TRACER.end(handle)
        NULL_TRACER.event("y")
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False


# ---------------------------------------------------------------------- #
# metrics primitives
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_counter_labels_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").labels(kind="a").inc()
        registry.counter("hits_total").labels(kind="a").inc(2)
        registry.counter("hits_total").labels(kind="b").inc()
        values = {
            tuple(sorted(v["labels"].items())): v["value"]
            for v in registry.snapshot()["hits_total"]["values"]
        }
        assert values[(("kind", "a"),)] == 3.0
        assert values[(("kind", "b"),)] == 1.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        (entry,) = registry.snapshot()["lat"]["values"]
        assert entry["count"] == 3
        assert entry["bucket_counts"] == [1, 1, 1]
        assert entry["sum"] == pytest.approx(5.55)

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        b.gauge("level").set(7.0)
        b.histogram("lat", buckets=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["n_total"]["values"][0]["value"] == 5.0
        assert snapshot["level"]["values"][0]["value"] == 7.0
        assert snapshot["lat"]["values"][0]["count"] == 1

    def test_null_registry_is_inert(self):
        registry = obs.get_metrics()
        assert registry.enabled is False
        registry.counter("anything").labels(a=1).inc()
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------- #
# defaults + helpers
# ---------------------------------------------------------------------- #


class TestObsDefaults:
    def test_defaults_are_null(self):
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False
        assert obs.active() is False

    def test_observability_installs_and_restores(self):
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            assert obs.get_tracer() is tracer
            assert obs.get_metrics() is registry
            assert obs.active()
        assert not obs.active()

    def test_profiled_records_span_and_histogram(self):
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            with obs.profiled("work.unit", n=4) as span:
                span.set(status="ok")
        (record,) = tracer.records()
        assert record["name"] == "work.unit"
        assert record["attrs"] == {"n": 4, "status": "ok"}
        (entry,) = registry.snapshot()["phase_seconds"]["values"]
        assert entry["labels"] == {"name": "work.unit"}
        assert entry["count"] == 1

    def test_profiled_is_noop_when_off(self):
        with obs.profiled("anything") as span:
            span.set(ignored=True)  # null handle accepts everything


# ---------------------------------------------------------------------- #
# instrumentation sites
# ---------------------------------------------------------------------- #


def _demand(seed=0):
    rng = np.random.default_rng(seed)
    demand = rng.uniform(0.0, 40.0, (N, N))
    np.fill_diagonal(demand, 0.0)
    return demand


class TestInstrumentation:
    def test_engine_and_solstice_spans(self):
        demand = _demand()
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            schedule = SolsticeScheduler().schedule(demand, PARAMS)
            simulate_hybrid(demand, schedule, PARAMS)
        names = {r["name"] for r in tracer.records()}
        assert "solstice.schedule" in names
        assert "solstice.stuffing" in names
        assert "engine.phase" in names
        snapshot = registry.snapshot()
        assert snapshot["engine_phases_total"]["values"][0]["value"] > 0
        assert snapshot["solstice_slices_total"]["values"][0]["value"] > 0

    def test_cp_pipeline_spans(self):
        demand = _demand(1)
        tracer = JsonlTracer()
        with obs.observability(tracer=tracer):
            CpSwitchScheduler(SolsticeScheduler()).schedule(demand, PARAMS)
        by_name = {r["name"]: r for r in tracer.records()}
        for stage in ("cpsched.reduce", "cpsched.inner", "cpsched.interpret"):
            assert stage in by_name
        # The inner h-Switch scheduler's span nests under cpsched.inner.
        assert by_name["solstice.schedule"]["parent"] == by_name["cpsched.inner"]["id"]

    def test_eclipse_watchdog_event(self):
        demand = _demand(2)
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            EclipseScheduler(max_steps=0).schedule(demand, PARAMS)
        events = [r for r in tracer.records() if r["kind"] == "event"]
        watchdog = [e for e in events if e["name"] == "scheduler.watchdog"]
        assert watchdog and watchdog[0]["attrs"]["event"] == "step-cap"
        assert watchdog[0]["attrs"]["scheduler"] == "eclipse"
        (entry,) = registry.snapshot()["scheduler_watchdog_trips_total"]["values"]
        assert entry["labels"] == {"scheduler": "eclipse", "event": "step-cap"}
        assert entry["value"] == 1.0

    def test_composite_release_event(self):
        from repro.sim.engine import FluidEngine

        demand = np.zeros((N, N))
        demand[0, 1:4] = 10.0
        engine = FluidEngine(demand, PARAMS)
        filtered = np.zeros_like(demand)
        filtered[0, 1:4] = 10.0
        engine.assign_composite(filtered)
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            released = engine.release_composite("o2m", 0)
        assert released == pytest.approx(30.0)
        (event,) = [r for r in tracer.records() if r["kind"] == "event"]
        assert event["name"] == "engine.composite_release"
        assert event["attrs"]["released_mb"] == pytest.approx(30.0)
        snapshot = registry.snapshot()
        assert snapshot["engine_composite_released_mb_total"]["values"][0][
            "value"
        ] == pytest.approx(30.0)


# ---------------------------------------------------------------------- #
# runner integration
# ---------------------------------------------------------------------- #


def _trial_fn(volume: float = 10.0) -> dict:
    demand = np.zeros((N, N))
    demand[0, 1] = volume
    schedule = SolsticeScheduler().schedule(demand, PARAMS)
    result = simulate_hybrid(demand, schedule, PARAMS)
    return {"completion": result.completion_time}


class TestRunnerObservability:
    def test_inline_trial_spans_join_journal_keys(self):
        specs = [
            TrialSpec(experiment="exp", key=f"exp:{i}", fn="tests.test_obs:_trial_fn")
            for i in range(2)
        ]
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            result = SweepRunner(config=SweepConfig(isolation="inline")).run(specs)
        assert len(result.completed) == 2
        trials = [r for r in tracer.records() if r["name"] == "runner.trial"]
        assert {t["attrs"]["key"] for t in trials} == {"exp:0", "exp:1"}
        assert all(t["attrs"]["status"] == "ok" for t in trials)
        # Inline trials run in-process: engine spans nest under the trial.
        engine_spans = [r for r in tracer.records() if r["name"] == "engine.phase"]
        trial_ids = {t["id"] for t in trials}
        assert engine_spans and all(s["parent"] in trial_ids for s in engine_spans)
        (entry,) = registry.snapshot()["runner_trials_total"]["values"]
        assert entry["labels"] == {"status": "ok"} and entry["value"] == 2.0

    def test_subprocess_trial_ships_spans_back(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        spec = TrialSpec(experiment="exp", key="exp:0", fn="tests.test_obs:_trial_fn")
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            with obs.profiled("runner.trial", key=spec.key):
                outcome = run_in_subprocess(spec, timeout_s=60.0)
        assert outcome.ok
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        # The worker's scheduler/engine spans were absorbed and grafted
        # under the parent's trial span.
        assert by_name["engine.phase"]["parent"] == by_name["runner.trial"]["id"]
        assert by_name["solstice.schedule"]["parent"] == by_name["runner.trial"]["id"]
        # And its counters merged into the parent registry.
        snapshot = registry.snapshot()
        assert snapshot["engine_phases_total"]["values"][0]["value"] > 0

    def test_quarantine_counter(self, tmp_path):
        specs = [
            TrialSpec(
                experiment="exp", key="exp:bad", fn="tests.test_obs:_no_such_fn"
            )
        ]
        registry = MetricsRegistry()
        config = SweepConfig(isolation="inline", sleep=lambda s: None)
        with obs.observability(metrics=registry):
            result = SweepRunner(config=config).run(specs)
        assert result.n_failed == 1
        snapshot = registry.snapshot()
        assert snapshot["runner_quarantined_total"]["values"][0]["value"] == 1.0
        assert snapshot["runner_retries_total"]["values"][0]["value"] == 2.0
        (entry,) = [
            v
            for v in snapshot["runner_trials_total"]["values"]
            if v["labels"].get("status") == "failed"
        ]
        assert entry["value"] == 1.0


# ---------------------------------------------------------------------- #
# bit-identity: instrumented == uninstrumented
# ---------------------------------------------------------------------- #


def _assert_identical(plain, traced):
    np.testing.assert_array_equal(plain.finish_times, traced.finish_times)
    assert plain.completion_time == traced.completion_time or (
        np.isnan(plain.completion_time) and np.isnan(traced.completion_time)
    )
    assert plain.n_configs == traced.n_configs
    assert plain.makespan == traced.makespan
    assert plain.served_ocs_direct == traced.served_ocs_direct
    assert plain.served_composite == traced.served_composite
    assert plain.served_eps == traced.served_eps
    assert plain.released_composite == traced.released_composite
    assert len(plain.segments) == len(traced.segments)


class TestBitIdentity:
    @given(demand=demands(), plan=plans())
    @settings(max_examples=25, deadline=None)
    def test_instrumented_run_is_bit_identical(self, demand, plan):
        scheduler = SolsticeScheduler()
        h_schedule = scheduler.schedule(demand, PARAMS)
        cp_schedule = CpSwitchScheduler(scheduler).schedule(demand, PARAMS)
        h_plain = simulate_hybrid(demand, h_schedule, PARAMS, faults=plan)
        cp_plain = simulate_cp(demand, cp_schedule, PARAMS, faults=plan)

        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            instrumented = SolsticeScheduler()
            h_schedule_t = instrumented.schedule(demand, PARAMS)
            cp_schedule_t = CpSwitchScheduler(instrumented).schedule(demand, PARAMS)
            h_traced = simulate_hybrid(demand, h_schedule_t, PARAMS, faults=plan)
            cp_traced = simulate_cp(demand, cp_schedule_t, PARAMS, faults=plan)

        _assert_identical(h_plain, h_traced)
        _assert_identical(cp_plain, cp_traced)


# ---------------------------------------------------------------------- #
# CLI end to end
# ---------------------------------------------------------------------- #


class TestCli:
    def test_compare_trace_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "2",
                "--workload", "skewed",
                "--no-journal",
                "--isolation", "inline",
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        assert trace.exists() and metrics.exists()
        snapshot = json.loads(metrics.read_text())
        assert snapshot["runner_trials_total"]["values"][0]["value"] == 2.0
        data = load_trace(trace)
        names = {s["name"] for s in data.spans}
        assert {"repro.compare", "runner.trial", "engine.phase"} <= names
        assert data.metrics  # snapshot embedded in the trace
        capsys.readouterr()

        code = main(["obs", "summarize", str(trace), "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.compare" in out
        assert "runner.trial" in out
        assert "engine_phases_total" in out

    def test_summarize_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(tmp_path / "nope.jsonl")])

    def test_trace_off_by_default(self, tmp_path, capsys):
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "1",
                "--no-journal",
                "--isolation", "inline",
            ]
        )
        assert code == 0
        assert not obs.active()
        capsys.readouterr()
