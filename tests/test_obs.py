"""Tests for the observability layer (``repro.obs``).

Covers the tracer and metrics primitives, the null-backend defaults, the
fork-worker span shipping, the scheduler/engine/runner instrumentation,
the CLI flags, and — the load-bearing property — that an instrumented run
is bit-identical to an uninstrumented one across random demand matrices
and fault plans.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import obs
from repro.cli import main
from repro.core.scheduler import CpSwitchScheduler
from repro.faults import FaultPlan
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import load_trace, render_summary
from repro.obs.tracer import JsonlTracer, NULL_TRACER
from repro.runner import SweepConfig, SweepRunner, TrialSpec
from repro.runner.isolation import run_in_subprocess
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams

N = 6
PARAMS = SwitchParams(n_ports=N, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def demands():
    return st.tuples(
        arrays(np.float64, (N, N), elements=st.floats(0.0, 30.0, allow_nan=False, width=32)),
        arrays(np.bool_, (N, N)),
    ).map(lambda pair: pair[0] * pair[1])


def plans():
    rates = st.floats(0.0, 1.0, allow_nan=False)
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**16),
        reconfig_failure_rate=rates,
        reconfig_straggle_rate=rates,
        straggle_factor=st.floats(1.0, 8.0, allow_nan=False),
        circuit_failure_rate=rates,
        o2m_outage_rate=rates,
        m2o_outage_rate=rates,
        eps_degradation_rate=rates,
        eps_degradation_factor=st.floats(0.1, 1.0, allow_nan=False),
    )


# ---------------------------------------------------------------------- #
# tracer primitives
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_nesting_parents(self):
        tracer = JsonlTracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.event("ping", value=1)
        tracer.end(inner)
        tracer.end(outer)
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["ping"]["span"] == by_name["inner"]["id"]

    def test_span_context_manager(self):
        tracer = JsonlTracer()
        with tracer.span("block") as span:
            span.set(items=3)
        (record,) = tracer.records()
        assert record["attrs"]["items"] == 3
        assert record["end"] >= record["start"]

    def test_end_closes_orphans(self):
        tracer = JsonlTracer()
        outer = tracer.begin("outer")
        tracer.begin("leaked")
        tracer.end(outer)  # must close "leaked" too
        assert {r["name"] for r in tracer.records()} == {"outer", "leaked"}
        assert tracer.current_span_id is None

    def test_numpy_attrs_are_json_safe(self, tmp_path):
        tracer = JsonlTracer()
        with tracer.span("s") as span:
            span.set(count=np.int64(3), volume=np.float64(1.5), flag=np.bool_(True))
        path = tracer.dump(tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # every record round-trips

    def test_dump_roundtrip_and_open_span_flag(self, tmp_path):
        tracer = JsonlTracer()
        tracer.begin("still-open")
        with tracer.span("closed"):
            tracer.event("e")
        path = tracer.dump(tmp_path / "t.jsonl", meta={"command": "test"})
        data = load_trace(path)
        assert data.meta["command"] == "test"
        assert {s["name"] for s in data.spans} == {"still-open", "closed"}
        open_spans = [s for s in data.spans if s.get("open")]
        assert [s["name"] for s in open_spans] == ["still-open"]
        assert len(data.events) == 1

    def test_absorb_remaps_and_grafts(self):
        worker = JsonlTracer()
        w_outer = worker.begin("w.outer")
        worker.begin("w.inner")
        worker.event("w.event")
        worker.end(w_outer)  # closes inner too
        parent = JsonlTracer()
        trial = parent.begin("trial")
        parent.absorb(worker.drain())
        parent.end(trial)
        data = {r["name"]: r for r in parent.records()}
        assert data["w.outer"]["parent"] == data["trial"]["id"]
        assert data["w.inner"]["parent"] == data["w.outer"]["id"]
        assert data["w.event"]["span"] == data["w.inner"]["id"]
        ids = [r["id"] for r in parent.records() if r["kind"] == "span"]
        assert len(ids) == len(set(ids))

    def test_null_tracer_is_inert(self):
        handle = NULL_TRACER.begin("x")
        handle.set(anything=1)
        NULL_TRACER.end(handle)
        NULL_TRACER.event("y")
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.enabled is False


# ---------------------------------------------------------------------- #
# metrics primitives
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_counter_labels_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").labels(kind="a").inc()
        registry.counter("hits_total").labels(kind="a").inc(2)
        registry.counter("hits_total").labels(kind="b").inc()
        values = {
            tuple(sorted(v["labels"].items())): v["value"]
            for v in registry.snapshot()["hits_total"]["values"]
        }
        assert values[(("kind", "a"),)] == 3.0
        assert values[(("kind", "b"),)] == 1.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        (entry,) = registry.snapshot()["lat"]["values"]
        assert entry["count"] == 3
        assert entry["bucket_counts"] == [1, 1, 1]
        assert entry["sum"] == pytest.approx(5.55)

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        b.gauge("level").set(7.0)
        b.histogram("lat", buckets=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["n_total"]["values"][0]["value"] == 5.0
        assert snapshot["level"]["values"][0]["value"] == 7.0
        assert snapshot["lat"]["values"][0]["count"] == 1

    def test_null_registry_is_inert(self):
        registry = obs.get_metrics()
        assert registry.enabled is False
        registry.counter("anything").labels(a=1).inc()
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------- #
# defaults + helpers
# ---------------------------------------------------------------------- #


class TestObsDefaults:
    def test_defaults_are_null(self):
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False
        assert obs.active() is False

    def test_observability_installs_and_restores(self):
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            assert obs.get_tracer() is tracer
            assert obs.get_metrics() is registry
            assert obs.active()
        assert not obs.active()

    def test_profiled_records_span_and_histogram(self):
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            with obs.profiled("work.unit", n=4) as span:
                span.set(status="ok")
        (record,) = tracer.records()
        assert record["name"] == "work.unit"
        assert record["attrs"] == {"n": 4, "status": "ok"}
        (entry,) = registry.snapshot()["phase_seconds"]["values"]
        assert entry["labels"] == {"name": "work.unit"}
        assert entry["count"] == 1

    def test_profiled_is_noop_when_off(self):
        with obs.profiled("anything") as span:
            span.set(ignored=True)  # null handle accepts everything


# ---------------------------------------------------------------------- #
# instrumentation sites
# ---------------------------------------------------------------------- #


def _demand(seed=0):
    rng = np.random.default_rng(seed)
    demand = rng.uniform(0.0, 40.0, (N, N))
    np.fill_diagonal(demand, 0.0)
    return demand


class TestInstrumentation:
    def test_engine_and_solstice_spans(self):
        demand = _demand()
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            schedule = SolsticeScheduler().schedule(demand, PARAMS)
            simulate_hybrid(demand, schedule, PARAMS)
        names = {r["name"] for r in tracer.records()}
        assert "solstice.schedule" in names
        assert "solstice.stuffing" in names
        assert "engine.phase" in names
        snapshot = registry.snapshot()
        assert snapshot["engine_phases_total"]["values"][0]["value"] > 0
        assert snapshot["solstice_slices_total"]["values"][0]["value"] > 0

    def test_cp_pipeline_spans(self):
        demand = _demand(1)
        tracer = JsonlTracer()
        with obs.observability(tracer=tracer):
            CpSwitchScheduler(SolsticeScheduler()).schedule(demand, PARAMS)
        by_name = {r["name"]: r for r in tracer.records()}
        for stage in ("cpsched.reduce", "cpsched.inner", "cpsched.interpret"):
            assert stage in by_name
        # The inner h-Switch scheduler's span nests under cpsched.inner.
        assert by_name["solstice.schedule"]["parent"] == by_name["cpsched.inner"]["id"]

    def test_eclipse_watchdog_event(self):
        demand = _demand(2)
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            EclipseScheduler(max_steps=0).schedule(demand, PARAMS)
        events = [r for r in tracer.records() if r["kind"] == "event"]
        watchdog = [e for e in events if e["name"] == "scheduler.watchdog"]
        assert watchdog and watchdog[0]["attrs"]["event"] == "step-cap"
        assert watchdog[0]["attrs"]["scheduler"] == "eclipse"
        (entry,) = registry.snapshot()["scheduler_watchdog_trips_total"]["values"]
        assert entry["labels"] == {"scheduler": "eclipse", "event": "step-cap"}
        assert entry["value"] == 1.0

    def test_composite_release_event(self):
        from repro.sim.engine import FluidEngine

        demand = np.zeros((N, N))
        demand[0, 1:4] = 10.0
        engine = FluidEngine(demand, PARAMS)
        filtered = np.zeros_like(demand)
        filtered[0, 1:4] = 10.0
        engine.assign_composite(filtered)
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            released = engine.release_composite("o2m", 0)
        assert released == pytest.approx(30.0)
        (event,) = [r for r in tracer.records() if r["kind"] == "event"]
        assert event["name"] == "engine.composite_release"
        assert event["attrs"]["released_mb"] == pytest.approx(30.0)
        snapshot = registry.snapshot()
        assert snapshot["engine_composite_released_mb_total"]["values"][0][
            "value"
        ] == pytest.approx(30.0)


# ---------------------------------------------------------------------- #
# runner integration
# ---------------------------------------------------------------------- #


def _trial_fn(volume: float = 10.0) -> dict:
    demand = np.zeros((N, N))
    demand[0, 1] = volume
    schedule = SolsticeScheduler().schedule(demand, PARAMS)
    result = simulate_hybrid(demand, schedule, PARAMS)
    return {"completion": result.completion_time}


class TestRunnerObservability:
    def test_inline_trial_spans_join_journal_keys(self):
        specs = [
            TrialSpec(experiment="exp", key=f"exp:{i}", fn="tests.test_obs:_trial_fn")
            for i in range(2)
        ]
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            result = SweepRunner(config=SweepConfig(isolation="inline")).run(specs)
        assert len(result.completed) == 2
        trials = [r for r in tracer.records() if r["name"] == "runner.trial"]
        assert {t["attrs"]["key"] for t in trials} == {"exp:0", "exp:1"}
        assert all(t["attrs"]["status"] == "ok" for t in trials)
        # Inline trials run in-process: engine spans nest under the trial.
        engine_spans = [r for r in tracer.records() if r["name"] == "engine.phase"]
        trial_ids = {t["id"] for t in trials}
        assert engine_spans and all(s["parent"] in trial_ids for s in engine_spans)
        (entry,) = registry.snapshot()["runner_trials_total"]["values"]
        assert entry["labels"] == {"status": "ok"} and entry["value"] == 2.0

    def test_subprocess_trial_ships_spans_back(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        spec = TrialSpec(experiment="exp", key="exp:0", fn="tests.test_obs:_trial_fn")
        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            with obs.profiled("runner.trial", key=spec.key):
                outcome = run_in_subprocess(spec, timeout_s=60.0)
        assert outcome.ok
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        # The worker's scheduler/engine spans were absorbed and grafted
        # under the parent's trial span.
        assert by_name["engine.phase"]["parent"] == by_name["runner.trial"]["id"]
        assert by_name["solstice.schedule"]["parent"] == by_name["runner.trial"]["id"]
        # And its counters merged into the parent registry.
        snapshot = registry.snapshot()
        assert snapshot["engine_phases_total"]["values"][0]["value"] > 0

    def test_quarantine_counter(self, tmp_path):
        specs = [
            TrialSpec(
                experiment="exp", key="exp:bad", fn="tests.test_obs:_no_such_fn"
            )
        ]
        registry = MetricsRegistry()
        config = SweepConfig(isolation="inline", sleep=lambda s: None)
        with obs.observability(metrics=registry):
            result = SweepRunner(config=config).run(specs)
        assert result.n_failed == 1
        snapshot = registry.snapshot()
        assert snapshot["runner_quarantined_total"]["values"][0]["value"] == 1.0
        assert snapshot["runner_retries_total"]["values"][0]["value"] == 2.0
        (entry,) = [
            v
            for v in snapshot["runner_trials_total"]["values"]
            if v["labels"].get("status") == "failed"
        ]
        assert entry["value"] == 1.0


# ---------------------------------------------------------------------- #
# bit-identity: instrumented == uninstrumented
# ---------------------------------------------------------------------- #


def _assert_identical(plain, traced):
    np.testing.assert_array_equal(plain.finish_times, traced.finish_times)
    assert plain.completion_time == traced.completion_time or (
        np.isnan(plain.completion_time) and np.isnan(traced.completion_time)
    )
    assert plain.n_configs == traced.n_configs
    assert plain.makespan == traced.makespan
    assert plain.served_ocs_direct == traced.served_ocs_direct
    assert plain.served_composite == traced.served_composite
    assert plain.served_eps == traced.served_eps
    assert plain.released_composite == traced.released_composite
    assert len(plain.segments) == len(traced.segments)


class TestBitIdentity:
    @given(demand=demands(), plan=plans())
    @settings(max_examples=25, deadline=None)
    def test_instrumented_run_is_bit_identical(self, demand, plan):
        scheduler = SolsticeScheduler()
        h_schedule = scheduler.schedule(demand, PARAMS)
        cp_schedule = CpSwitchScheduler(scheduler).schedule(demand, PARAMS)
        h_plain = simulate_hybrid(demand, h_schedule, PARAMS, faults=plan)
        cp_plain = simulate_cp(demand, cp_schedule, PARAMS, faults=plan)

        tracer, registry = JsonlTracer(), MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            instrumented = SolsticeScheduler()
            h_schedule_t = instrumented.schedule(demand, PARAMS)
            cp_schedule_t = CpSwitchScheduler(instrumented).schedule(demand, PARAMS)
            h_traced = simulate_hybrid(demand, h_schedule_t, PARAMS, faults=plan)
            cp_traced = simulate_cp(demand, cp_schedule_t, PARAMS, faults=plan)

        _assert_identical(h_plain, h_traced)
        _assert_identical(cp_plain, cp_traced)


# ---------------------------------------------------------------------- #
# CLI end to end
# ---------------------------------------------------------------------- #


class TestCli:
    def test_compare_trace_and_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "2",
                "--workload", "skewed",
                "--no-journal",
                "--isolation", "inline",
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        assert trace.exists() and metrics.exists()
        snapshot = json.loads(metrics.read_text())
        assert snapshot["runner_trials_total"]["values"][0]["value"] == 2.0
        data = load_trace(trace)
        names = {s["name"] for s in data.spans}
        assert {"repro.compare", "runner.trial", "engine.phase"} <= names
        assert data.metrics  # snapshot embedded in the trace
        capsys.readouterr()

        code = main(["obs", "summarize", str(trace), "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.compare" in out
        assert "runner.trial" in out
        assert "engine_phases_total" in out

    def test_summarize_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(tmp_path / "nope.jsonl")])

    def test_trace_off_by_default(self, tmp_path, capsys):
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "1",
                "--no-journal",
                "--isolation", "inline",
            ]
        )
        assert code == 0
        assert not obs.active()
        capsys.readouterr()


# ---------------------------------------------------------------------- #
# cross-process merge edge cases
# ---------------------------------------------------------------------- #


class TestAbsorbCollisions:
    def test_absorb_remaps_collision_heavy_ids(self):
        """Two workers whose id spaces fully overlap graft without clashing."""
        parent = JsonlTracer()
        trial = parent.begin("runner.trial")

        def worker_records(label):
            worker = JsonlTracer()
            outer = worker.begin(f"{label}.outer")
            with worker.span(f"{label}.inner"):
                worker.event(f"{label}.tick")
            worker.end(outer)
            return worker.drain()

        a, b = worker_records("a"), worker_records("b")
        # Both workers used ids 1..2 — the collision-heavy case.
        assert {r["id"] for r in a if r["kind"] == "span"} == {
            r["id"] for r in b if r["kind"] == "span"
        }
        parent.absorb(a)
        parent.absorb(b)
        parent.end(trial)

        records = parent.records()
        spans = [r for r in records if r["kind"] == "span"]
        ids = [r["id"] for r in spans]
        assert len(ids) == len(set(ids)) == 5  # 2 per worker + the trial span
        by_name = {r["name"]: r for r in spans}
        trial_id = by_name["runner.trial"]["id"]
        # Parentless worker roots graft under the open trial span...
        assert by_name["a.outer"]["parent"] == trial_id
        assert by_name["b.outer"]["parent"] == trial_id
        # ...and intra-worker parent links follow the remap, never the raw id.
        assert by_name["a.inner"]["parent"] == by_name["a.outer"]["id"]
        assert by_name["b.inner"]["parent"] == by_name["b.outer"]["id"]
        events = {r["name"]: r for r in records if r["kind"] == "event"}
        assert events["a.tick"]["span"] == by_name["a.inner"]["id"]
        assert events["b.tick"]["span"] == by_name["b.inner"]["id"]

    def test_absorbed_trace_keeps_valid_paths(self):
        """group_paths on an absorbed trace resolves every span."""
        from repro.obs.summarize import TraceData, group_paths

        parent = JsonlTracer()
        trial = parent.begin("runner.trial")
        for _ in range(2):
            worker = JsonlTracer()
            with worker.span("engine.run"):
                with worker.span("engine.phase"):
                    pass
            parent.absorb(worker.drain())
        parent.end(trial)
        groups = group_paths(TraceData(spans=parent.records()))
        assert groups["runner.trial/engine.run"].count == 2
        assert groups["runner.trial/engine.run/engine.phase"].count == 2


class TestMergeLabelConflicts:
    def test_merge_conflicting_label_sets(self):
        """Same counter name, disjoint label sets: children stay separate."""
        parent = MetricsRegistry()
        parent.counter("trials_total").labels(status="ok").inc(2)
        parent.counter("trials_total").inc(1)  # unlabeled parent value too

        worker = MetricsRegistry()
        worker.counter("trials_total").labels(status="failed").inc(1)
        worker.counter("trials_total").labels(host="w1", status="ok").inc(3)

        parent.merge(worker.snapshot())
        values = {
            tuple(sorted((entry["labels"] or {}).items())): entry["value"]
            for entry in parent.snapshot()["trials_total"]["values"]
        }
        assert values[(("status", "ok"),)] == 2.0
        assert values[(("status", "failed"),)] == 1.0
        assert values[(("host", "w1"), ("status", "ok"))] == 3.0
        assert values[()] == 1.0

    def test_merge_histogram_label_conflict_and_foreign_buckets(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).labels(stage="x").observe(0.5)
        worker_snapshot = {
            "h": {
                "type": "histogram",
                "description": "",
                "values": [
                    # Same name, different label set.
                    {"labels": {"stage": "y"}, "count": 1, "sum": 1.5,
                     "buckets": [1.0, 2.0], "bucket_counts": [0, 1, 0]},
                    # Foreign bucket layout: totals survive, shape dropped.
                    {"labels": {"stage": "x"}, "count": 2, "sum": 9.0,
                     "buckets": [5.0], "bucket_counts": [1, 1]},
                ],
            }
        }
        parent.merge(worker_snapshot)
        entries = {
            entry["labels"]["stage"]: entry
            for entry in parent.snapshot()["h"]["values"]
        }
        assert entries["y"]["count"] == 1
        assert entries["x"]["count"] == 3
        assert entries["x"]["sum"] == pytest.approx(9.5)
        # Foreign layout's 2 observations landed in the +Inf overflow slot.
        assert entries["x"]["bucket_counts"][-1] == 2


# ---------------------------------------------------------------------- #
# summarize satellites: metrics-only artifacts, malformed JSONL, defaults
# ---------------------------------------------------------------------- #


class TestSummarizeSatellites:
    def test_metrics_only_snapshot_renders(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("engine_phases_total", "phases").inc(7)
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot — 1 metric(s), no span records" in out
        assert "engine_phases_total" in out
        assert "span tree" not in out  # no empty tree section

    def test_span_free_trace_renders(self, tmp_path, capsys):
        tracer = JsonlTracer()
        tracer.event("lonely.event")
        path = tmp_path / "trace.jsonl"
        tracer.dump(path, meta={"command": "unit"})
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 spans, 1 events" in out
        assert "lonely.event" in out

    def test_malformed_mid_file_raises_actionable(self, tmp_path):
        from repro.obs.summarize import TraceParseError

        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "format": 1}) + "\n"
            + "{this is not json\n"
            + json.dumps({"kind": "event", "name": "after", "t": 0.0}) + "\n"
        )
        with pytest.raises(TraceParseError, match="corrupted, not merely torn"):
            load_trace(path)
        with pytest.raises(SystemExit, match="re-record the trace"):
            main(["obs", "summarize", str(path)])

    def test_torn_trailing_line_tolerated(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "format": 1}) + "\n"
            + json.dumps(
                {"kind": "span", "id": 1, "parent": None, "name": "x",
                 "start": 0.0, "end": 1.0}
            ) + "\n"
            + '{"kind": "span", "id": 2, "na'  # killed writer
        )
        data = load_trace(path)
        assert data.torn_lines == 1
        assert len(data.spans) == 1
        assert main(["obs", "summarize", str(path)]) == 0
        assert "torn trailing line" in capsys.readouterr().out

    def test_not_a_trace_raises(self, tmp_path):
        path = tmp_path / "readme.txt"
        path.write_text("hello\nworld\n")
        with pytest.raises(SystemExit):
            main(["obs", "summarize", str(path)])


class TestObsPathDefaults:
    def test_bare_trace_flag_defaults_into_run_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path))
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "1",
                "--no-journal",
                "--isolation", "inline",
                "--trace",
                "--metrics",
            ]
        )
        assert code == 0
        assert (tmp_path / "compare-trace.jsonl").exists()
        assert (tmp_path / "compare-metrics.json").exists()
        capsys.readouterr()

    def test_run_dir_flag_beats_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "env"))
        explicit = tmp_path / "flag"
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "1",
                "--no-journal",
                "--isolation", "inline",
                "--run-dir", str(explicit),
                "--trace",
            ]
        )
        assert code == 0
        assert (explicit / "compare-trace.jsonl").exists()
        assert not (tmp_path / "env").exists()
        capsys.readouterr()

    def test_explicit_path_still_wins(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "env"))
        trace = tmp_path / "explicit.jsonl"
        code = main(
            [
                "compare",
                "--radix", "8",
                "--trials", "1",
                "--no-journal",
                "--isolation", "inline",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        assert trace.exists()
        capsys.readouterr()
