"""Tests for Algorithm 1 — cp-SwitchDemandReduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FilterConfig
from repro.core.reduction import cp_switch_demand_reduction, reduce_with_config
from repro.switch.params import fast_ocs_params, slow_ocs_params


def figure2_demand() -> np.ndarray:
    """A 6-port demand reconstructing every value the paper's Figure 2
    walk-through states (Bt=10, Rt=4): the 'orange' entry D[5,2] = 3
    (1-based) belongs to both a qualifying row and a qualifying column,
    with DI[5, n+1] = 15 and DI[n+1, 2] = 14 at the moment it is assigned,
    so it lands on the many-to-one path, making DI[n+1, 2] = 17."""
    demand = np.zeros((6, 6))
    demand[0, 1] = 5.0
    demand[1, 1] = 4.0
    demand[2, 1] = 5.0
    demand[1, 3] = 20.0  # above Bt: never composite, stays regular
    demand[4, 0] = 4.0
    demand[4, 1] = 3.0  # the "orange" entry: row 5 / col 2 in paper numbering
    demand[4, 2] = 5.0
    demand[4, 3] = 6.0
    return demand


class TestFigure2Example:
    """The worked demand-reduction example of the paper (Figure 2)."""

    @pytest.fixture
    def reduction(self):
        return cp_switch_demand_reduction(figure2_demand(), fanout_threshold=4, volume_threshold=10.0)

    def test_qualifying_row_aggregates_to_o2m_column(self, reduction):
        # Row 5 (0-based 4) is the only qualifying row; its three row-only
        # entries 4+5+6 = 15 aggregate into the one-to-many column.
        assert reduction.reduced[4, 6] == pytest.approx(15.0)
        assert reduction.reduced[:4, 6].sum() == 0.0
        assert reduction.reduced[5, 6] == 0.0

    def test_orange_entry_balances_to_lighter_path(self, reduction):
        # At assignment time the o2m sum is 15 and the m2o sum is 14, so
        # the orange entry joins the many-to-one path: 14 + 3 = 17.
        assert reduction.reduced[6, 1] == pytest.approx(17.0)
        assert reduction.reduced[4, 6] == pytest.approx(15.0)
        assert reduction.m2o_assignment[4, 1]
        assert not reduction.o2m_assignment[4, 1]

    def test_entry_above_bt_stays_regular(self, reduction):
        assert reduction.filtered[1, 3] == 0.0
        assert reduction.reduced[1, 3] == pytest.approx(20.0)

    def test_filtered_matches_paper(self, reduction):
        expected_filtered = np.zeros((6, 6))
        expected_filtered[0, 1] = 5.0
        expected_filtered[1, 1] = 4.0
        expected_filtered[2, 1] = 5.0
        expected_filtered[4, 0] = 4.0
        expected_filtered[4, 1] = 3.0
        expected_filtered[4, 2] = 5.0
        expected_filtered[4, 3] = 6.0
        np.testing.assert_allclose(reduction.filtered, expected_filtered)

    def test_regular_block_is_demand_minus_filtered(self, reduction):
        np.testing.assert_allclose(
            reduction.reduced[:6, :6], figure2_demand() - reduction.filtered
        )

    def test_volume_conserved(self, reduction):
        assert reduction.reduced.sum() == pytest.approx(figure2_demand().sum())


class TestReductionBasics:
    def test_empty_demand_reduces_to_empty(self):
        reduction = cp_switch_demand_reduction(np.zeros((4, 4)), 2, 1.0)
        assert reduction.reduced.shape == (5, 5)
        assert reduction.reduced.sum() == 0.0
        assert reduction.filtered.sum() == 0.0

    def test_no_qualifying_fanout_keeps_everything_regular(self):
        demand = np.diag([1.0, 2.0, 3.0, 4.0])
        reduction = cp_switch_demand_reduction(demand, fanout_threshold=2, volume_threshold=10.0)
        assert reduction.filtered.sum() == 0.0
        np.testing.assert_allclose(reduction.reduced[:4, :4], demand)

    def test_uniform_row_above_threshold_goes_composite(self):
        demand = np.zeros((6, 6))
        demand[2, [0, 1, 3, 4, 5]] = 2.0
        reduction = cp_switch_demand_reduction(demand, fanout_threshold=4, volume_threshold=5.0)
        assert reduction.reduced[2, 6] == pytest.approx(10.0)
        assert reduction.reduced[:6, :6].sum() == 0.0

    def test_big_entries_never_composite(self):
        demand = np.zeros((6, 6))
        demand[2, [0, 1, 3, 4, 5]] = 100.0  # huge fan-out but entries > Bt
        reduction = cp_switch_demand_reduction(demand, fanout_threshold=4, volume_threshold=5.0)
        assert reduction.filtered.sum() == 0.0

    def test_composite_row_and_column_corner_is_zero(self):
        demand = np.zeros((6, 6))
        demand[2, [0, 1, 3, 4, 5]] = 2.0
        demand[[0, 1, 3, 4], 5] += 2.0
        reduction = cp_switch_demand_reduction(demand, fanout_threshold=4, volume_threshold=5.0)
        assert reduction.reduced[6, 6] == 0.0

    def test_masks_partition_filtered(self):
        rng = np.random.default_rng(7)
        demand = rng.uniform(0, 3, (10, 10)) * (rng.random((10, 10)) < 0.6)
        reduction = cp_switch_demand_reduction(demand, 3, 2.0)
        both = reduction.o2m_assignment & reduction.m2o_assignment
        assert not both.any(), "an entry may ride only one composite path"
        covered = reduction.o2m_assignment | reduction.m2o_assignment
        np.testing.assert_array_equal(covered, reduction.filtered > 0)

    def test_loads_match_assignment_masks(self):
        rng = np.random.default_rng(8)
        demand = rng.uniform(0, 3, (10, 10)) * (rng.random((10, 10)) < 0.6)
        reduction = cp_switch_demand_reduction(demand, 3, 2.0)
        o2m_expected = (demand * reduction.o2m_assignment).sum(axis=1)
        m2o_expected = (demand * reduction.m2o_assignment).sum(axis=0)
        np.testing.assert_allclose(reduction.o2m_loads, o2m_expected)
        np.testing.assert_allclose(reduction.m2o_loads, m2o_expected)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            cp_switch_demand_reduction(np.zeros((3, 3)), 0, 1.0)
        with pytest.raises(ValueError):
            cp_switch_demand_reduction(np.zeros((3, 3)), 1, -1.0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            cp_switch_demand_reduction(np.zeros((3, 4)), 1, 1.0)


class TestFilterConfig:
    def test_paper_defaults_fast_ocs(self):
        params = fast_ocs_params(128)
        config = FilterConfig()
        # Bt = alpha * delta * Co = 1 * 0.02 ms * 100 Mb/ms = 2 Mb.
        assert config.resolve_volume_threshold(params) == pytest.approx(2.0)
        # Rt = ceil(0.7 * 128) = 90.
        assert config.resolve_fanout_threshold(params) == 90

    def test_paper_defaults_slow_ocs(self):
        params = slow_ocs_params(64)
        config = FilterConfig()
        # Bt = 0.1 * 20 ms * 100 Mb/ms = 200 Mb.
        assert config.resolve_volume_threshold(params) == pytest.approx(200.0)
        assert config.resolve_fanout_threshold(params) == 45

    def test_explicit_overrides_win(self):
        params = fast_ocs_params(32)
        config = FilterConfig(volume_threshold=7.5, fanout_threshold=5)
        assert config.resolve_volume_threshold(params) == 7.5
        assert config.resolve_fanout_threshold(params) == 5

    def test_alpha_beta_knobs(self):
        params = fast_ocs_params(32)
        config = FilterConfig(alpha=0.5, beta=0.5)
        assert config.resolve_volume_threshold(params) == pytest.approx(1.0)
        assert config.resolve_fanout_threshold(params) == 16

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            FilterConfig(beta=0.0)
        with pytest.raises(ValueError):
            FilterConfig(beta=1.5)

    def test_reduce_with_config(self):
        params = fast_ocs_params(6)
        demand = figure2_demand()
        reduction = reduce_with_config(
            demand, params, FilterConfig(volume_threshold=10.0, fanout_threshold=4)
        )
        assert reduction.reduced[6, 1] == pytest.approx(17.0)


class TestFrozenReduction:
    """ReducedDemand arrays are provenance shared by every derived
    schedule; mutating them must fail loudly, not corrupt silently."""

    def test_arrays_read_only(self):
        reduction = cp_switch_demand_reduction(figure2_demand(), 4, 10.0)
        for name in ("reduced", "filtered", "o2m_assignment", "m2o_assignment"):
            with pytest.raises(ValueError):
                getattr(reduction, name)[0, 0] = 1

    def test_load_views_inherit_read_only(self):
        reduction = cp_switch_demand_reduction(figure2_demand(), 4, 10.0)
        with pytest.raises(ValueError):
            reduction.o2m_loads[0] = 1.0
        with pytest.raises(ValueError):
            reduction.m2o_loads[0] = 1.0
