"""Tests for sweep heartbeats and ``repro obs watch``."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs.watch import (
    STALE_AFTER_S,
    WatchState,
    _percentile,
    collect_state,
    render_watch,
    watch,
)
from repro.runner.heartbeat import (
    HEARTBEAT_FORMAT,
    _safe_filename,
    heartbeat_dir,
    read_heartbeats,
    write_heartbeat,
)
from repro.runner.isolation import TrialSpec
from repro.runner.journal import RunJournal
from repro.runner.retry import RetryPolicy
from repro.runner.sweep import SweepConfig, SweepRunner

_OK = "tests._runner_trials:ok_trial"
_FLAKY = "tests._runner_trials:flaky_trial"


def _spec(fn: str = _OK, trial: int = 0, **kwargs) -> TrialSpec:
    kwargs.setdefault("trial", trial)
    return TrialSpec(experiment="unit", key=f"unit:{trial:04d}", fn=fn, kwargs=kwargs)


def _config(**overrides) -> SweepConfig:
    overrides.setdefault("isolation", "inline")
    overrides.setdefault("retry", RetryPolicy(max_attempts=1))
    overrides.setdefault("sleep", lambda _s: None)
    return SweepConfig(**overrides)


def _rewrite_beat(hb, key, *, drop=(), **updates):
    """Hand-edit a heartbeat file into a *wall-clock-only* legacy record.

    The monotonic fields are stripped so the staleness judgement falls
    back to the wall-clock fields the test is manipulating (records with
    monotonic readings ignore wall-clock edits entirely — that is the
    point of the monotonic contract, tested separately below).
    """
    path = hb / f"{key}.json"
    beat = json.loads(path.read_text())
    beat.pop("started_at_mono", None)
    beat.pop("last_progress_mono", None)
    for name in drop:
        beat.pop(name, None)
    beat.update(updates)
    path.write_text(json.dumps(beat))
    return beat


class TestHeartbeatFiles:
    def test_safe_filename_passthrough(self):
        assert _safe_filename("unit:0001") == "unit:0001.json"

    def test_safe_filename_sanitizes_uniquely(self):
        a = _safe_filename("weird/key one")
        b = _safe_filename("weird key/one")
        assert a != b  # digest keeps sanitized collisions apart
        assert "/" not in a and " " not in a
        assert a.endswith(".json")

    def test_write_read_roundtrip(self, tmp_path):
        hb = tmp_path / "j.jsonl.hb"
        hb.mkdir()
        write_heartbeat(hb, "unit:0001", phase="running", experiment="unit", attempt=2)
        records = read_heartbeats(hb)
        record = records["unit:0001"]
        assert record["format"] == HEARTBEAT_FORMAT
        assert record["phase"] == "running"
        assert record["attempt"] == 2
        assert record["retries"] == 1
        assert record["last_progress"] >= record["started_at"] - 1e-6
        assert isinstance(record["pid"], int)

    def test_write_swallows_oserror(self, tmp_path):
        # A file where the directory should be: every write must EEXIST/ENOTDIR.
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("x")
        write_heartbeat(bogus, "unit:0001", phase="running")  # must not raise

    def test_read_skips_torn_and_foreign(self, tmp_path):
        hb = tmp_path / "hb"
        hb.mkdir()
        (hb / "torn.json").write_text('{"key": "un')
        (hb / "foreign.json").write_text('["not", "a", "record"]')
        (hb / "keyless.json").write_text('{"phase": "running"}')
        write_heartbeat(hb, "unit:0001", phase="done")
        assert set(read_heartbeats(hb)) == {"unit:0001"}

    def test_read_missing_dir_is_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "nope") == {}

    def test_heartbeat_dir_sibling(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        assert heartbeat_dir(journal) == tmp_path / "sweep.jsonl.hb"


def _seed_journal(tmp_path, *, n_specs=4, ok=(), failed=(), elapsed=1.0):
    """A synthetic sweep journal with some settled trials."""
    journal = RunJournal(tmp_path / "sweep.jsonl")
    spec = [
        {"experiment": "unit", "key": f"unit:{i:04d}", "fn": _OK, "kwargs": {}}
        for i in range(n_specs)
    ]
    journal.write_header("unit-sweep", spec)
    for i in ok:
        journal.record_success(
            f"unit:{i:04d}", {"trial": i}, attempts=1, elapsed_s=elapsed
        )
    for i in failed:
        journal.record_failure(
            f"unit:{i:04d}",
            {"key": f"unit:{i:04d}", "experiment": "unit", "fn": _OK, "kwargs": {},
             "attempts": 1, "error": {"type": "RuntimeError", "message": "boom"},
             "reproducer": None},
            attempts=3,
        )
    return journal


class TestCollectState:
    def test_requires_sweep_header(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        journal = RunJournal(path)
        journal.append({"kind": "note", "text": "hi"})
        with pytest.raises(ValueError, match="no sweep header"):
            collect_state(path)

    def test_counts_and_eta(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=6, ok=(0, 1, 2), failed=(3,))
        state = collect_state(journal.path)
        assert (state.total, state.done, state.failed) == (6, 3, 1)
        assert state.pending == 2
        assert state.retries == 2  # one failed record with attempts=3
        assert state.eta_s == pytest.approx(2 * 1.0)  # 2 remaining × median 1s
        assert not state.finished

    def test_finished_state(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=2, ok=(0, 1))
        state = collect_state(journal.path)
        assert state.finished
        assert "sweep complete" in render_watch(state)

    def test_in_flight_straggler_and_stale(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=6, ok=(0, 1, 2))
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        now = 1000.0
        # Straggler: started far beyond the p95 of 1s-completions, still ticking.
        write_heartbeat(hb, "unit:0004", phase="running", started_at=now - 50.0)
        _rewrite_beat(hb, "unit:0004", last_progress=now - 0.1)
        # Stale: no progress tick for longer than STALE_AFTER_S.
        write_heartbeat(hb, "unit:0005", phase="running", started_at=now - 0.5)
        _rewrite_beat(hb, "unit:0005", last_progress=now - STALE_AFTER_S - 5.0)
        # Settled trials' heartbeats must not count as in-flight.
        write_heartbeat(hb, "unit:0000", phase="done")
        write_heartbeat(hb, "unit:0003", phase="running", started_at=now - 1.0)
        journal.record_success("unit:0003", {}, attempts=1, elapsed_s=1.0)

        state = collect_state(journal.path, now=now)
        by_key = {status.key: status for status in state.in_flight}
        assert set(by_key) == {"unit:0004", "unit:0005"}
        assert by_key["unit:0004"].straggler and not by_key["unit:0004"].stale
        assert by_key["unit:0005"].stale and not by_key["unit:0005"].straggler
        text = render_watch(state)
        assert "straggler" in text and "STALE" in text

    def test_stale_scales_with_declared_interval(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=4, ok=())
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        now = 1000.0
        # A 10s-cadence writer idle for 20s is fine (< 3×10); a 1s-cadence
        # writer idle just as long has missed twenty beats — stale.
        for key, interval in (("unit:0000", 10.0), ("unit:0001", 1.0)):
            write_heartbeat(
                hb, key, phase="running", started_at=now - 30.0, interval_s=interval
            )
            _rewrite_beat(hb, key, last_progress=now - 20.0)
        by_key = {
            s.key: s for s in collect_state(journal.path, now=now).in_flight
        }
        assert not by_key["unit:0000"].stale
        assert by_key["unit:0001"].stale

    def test_stale_fallback_without_interval(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=2, ok=())
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        now = 1000.0
        # Pre-interval_s heartbeat records fall back to STALE_AFTER_S.
        write_heartbeat(hb, "unit:0000", phase="running", started_at=now - 30.0)
        _rewrite_beat(
            hb, "unit:0000", drop=("interval_s",),
            last_progress=now - STALE_AFTER_S - 1.0,
        )
        (status,) = collect_state(journal.path, now=now).in_flight
        assert status.stale
        assert status.stale_after_s == STALE_AFTER_S

    def test_unsettled_heartbeat_is_live_regardless_of_phase(self, tmp_path):
        # A worker that crashed mid-phase leaves an arbitrary phase string;
        # it must render (flagged stale once idle), never silently vanish.
        journal = _seed_journal(tmp_path, n_specs=2, ok=())
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        now = 1000.0
        write_heartbeat(hb, "unit:0000", phase="done", started_at=now - 60.0)
        _rewrite_beat(hb, "unit:0000", last_progress=now - 50.0)
        state = collect_state(journal.path, now=now)
        (status,) = state.in_flight
        assert status.key == "unit:0000"
        assert status.stale
        assert "STALE" in render_watch(state)

    def test_deadline_miss_rate_rendered(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=2, ok=())
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        now = 1000.0
        write_heartbeat(
            hb,
            "unit:0000",
            phase="running",
            started_at=now - 1.0,
            extra={"deadline_miss_rate": 0.25},
        )
        state = collect_state(journal.path, now=now)
        assert state.in_flight[0].deadline_miss_rate == pytest.approx(0.25)
        assert "miss-rate 25%" in render_watch(state)

    def test_render_progress_bar(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=4, ok=(0, 1), failed=(2,))
        text = render_watch(collect_state(journal.path))
        assert re.search(r"\[#+x+-*\] 2/4 done, 1 failed", text)

    def test_percentile_interpolates(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert _percentile([5.0], 95.0) == 5.0
        assert _percentile([], 95.0) == 0.0


class TestMonotonicStaleness:
    """Liveness judged on the writer's monotonic tick, never the wall clock.

    These tests step the two clocks *independently* via the injectable
    seams: the wall clock models NTP steps, the monotonic clock models
    true elapsed time.
    """

    def _journal_with_beat(self, tmp_path, *, wall, mono, interval_s=1.0):
        journal = _seed_journal(tmp_path, n_specs=2, ok=())
        hb = heartbeat_dir(journal.path)
        hb.mkdir()
        write_heartbeat(
            hb,
            "unit:0000",
            phase="running",
            interval_s=interval_s,
            wall_clock=lambda: wall,
            mono_clock=lambda: mono,
        )
        return journal

    def test_writer_records_monotonic_fields(self, tmp_path):
        journal = self._journal_with_beat(tmp_path, wall=1000.0, mono=500.0)
        beat = read_heartbeats(heartbeat_dir(journal.path))["unit:0000"]
        assert beat["started_at"] == pytest.approx(1000.0)
        assert beat["started_at_mono"] == pytest.approx(500.0)
        assert beat["last_progress_mono"] == pytest.approx(500.0)

    def test_wall_clock_jump_does_not_flag_stale(self, tmp_path):
        # +1h NTP step between the beat and the watch: the trial last beat
        # 0.5 *monotonic* seconds ago, so it is fresh — the wall delta of
        # 3600.5s must be ignored.
        journal = self._journal_with_beat(tmp_path, wall=1000.0, mono=500.0)
        state = collect_state(
            journal.path, now=1000.0 + 3600.0, now_mono=500.5
        )
        (status,) = state.in_flight
        assert not status.stale
        assert status.idle_s == pytest.approx(0.5)
        assert status.age_s == pytest.approx(0.5)

    def test_backward_wall_step_does_not_hide_wedged_trial(self, tmp_path):
        # Wall clock stepped *backwards* past the beat; monotonically the
        # writer has been idle for 3× its declared interval + slack → STALE.
        journal = self._journal_with_beat(
            tmp_path, wall=1000.0, mono=500.0, interval_s=1.0
        )
        state = collect_state(journal.path, now=990.0, now_mono=500.0 + 3.5)
        (status,) = state.in_flight
        assert status.stale
        assert status.idle_s == pytest.approx(3.5)

    def test_monotonic_idle_flags_stale(self, tmp_path):
        journal = self._journal_with_beat(
            tmp_path, wall=1000.0, mono=500.0, interval_s=1.0
        )
        # Wall clock says fresh (same instant); monotonic says long idle.
        state = collect_state(journal.path, now=1000.0, now_mono=504.0)
        (status,) = state.in_flight
        assert status.stale

    def test_legacy_record_falls_back_to_wall(self, tmp_path):
        journal = self._journal_with_beat(
            tmp_path, wall=1000.0, mono=500.0, interval_s=1.0
        )
        hb = heartbeat_dir(journal.path)
        _rewrite_beat(hb, "unit:0000", last_progress=1000.0 - 20.0)
        state = collect_state(journal.path, now=1000.0, now_mono=500.1)
        (status,) = state.in_flight
        assert status.stale  # wall path: 20s idle > 3×1s
        assert status.idle_s == pytest.approx(20.0)


class TestRunnerIntegration:
    def test_sweep_writes_heartbeats(self, tmp_path):
        journal = RunJournal(tmp_path / "sweep.jsonl")
        runner = SweepRunner(journal, _config())
        runner.run([_spec(trial=i) for i in range(3)], sweep_name="unit-sweep")
        beats = read_heartbeats(heartbeat_dir(journal.path))
        assert set(beats) == {"unit:0000", "unit:0001", "unit:0002"}
        assert all(beat["phase"] == "done" for beat in beats.values())

    def test_no_heartbeat_config_writes_none(self, tmp_path):
        journal = RunJournal(tmp_path / "sweep.jsonl")
        runner = SweepRunner(journal, _config(heartbeat=False))
        runner.run([_spec()], sweep_name="unit-sweep")
        assert not heartbeat_dir(journal.path).exists()

    def test_quarantined_trial_heartbeat(self, tmp_path):
        journal = RunJournal(tmp_path / "sweep.jsonl")
        runner = SweepRunner(journal, _config())
        runner.run(
            [_spec("tests._runner_trials:failing_trial")], sweep_name="unit-sweep"
        )
        beats = read_heartbeats(heartbeat_dir(journal.path))
        assert beats["unit:0000"]["phase"] == "quarantined"

    def test_retry_increments_attempt(self, tmp_path):
        journal = RunJournal(tmp_path / "sweep.jsonl")
        marker = tmp_path / "flaky.marker"
        runner = SweepRunner(journal, _config(retry=RetryPolicy(max_attempts=2)))
        result = runner.run(
            [_spec(_FLAKY, marker=str(marker))], sweep_name="unit-sweep"
        )
        assert result.completed["unit:0000"]["recovered"] is True
        beats = read_heartbeats(heartbeat_dir(journal.path))
        assert beats["unit:0000"]["phase"] == "done"
        assert beats["unit:0000"]["attempt"] == 2

    def test_monitoring_does_not_perturb_journal(self, tmp_path):
        """Journals are bit-identical with heartbeats on vs. off (after
        scrubbing wall-clock fields, per the kill-and-resume convention)."""

        def run(heartbeat: bool, name: str) -> list:
            journal = RunJournal(tmp_path / name)
            runner = SweepRunner(journal, _config(heartbeat=heartbeat))
            runner.run([_spec(trial=i) for i in range(3)], sweep_name="unit-sweep")
            records = []
            for line in journal.path.read_text().splitlines():
                record = json.loads(line)
                record.pop("elapsed_s", None)
                records.append(record)
            return records

        assert run(True, "on.jsonl") == run(False, "off.jsonl")


class TestWatchLoop:
    def test_watch_single_frame(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=2, ok=(0,))
        frames = []
        state = watch(journal.path, emit=frames.append)
        assert len(frames) == 1
        assert "1/2 done" in frames[0]
        assert not state.finished

    def test_follow_stops_when_finished(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=2, ok=(0,))
        frames, naps = [], []

        def sleep(seconds):
            naps.append(seconds)
            journal.record_success("unit:0001", {}, attempts=1, elapsed_s=1.0)

        state = watch(
            journal.path, follow=True, interval_s=0.01, emit=frames.append, sleep=sleep
        )
        assert state.finished
        assert naps == [0.01]
        assert "sweep complete" in frames[-1]

    def test_follow_respects_max_frames(self, tmp_path):
        journal = _seed_journal(tmp_path, n_specs=4, ok=(0,))
        frames = []
        watch(
            journal.path,
            follow=True,
            interval_s=0.0,
            max_frames=3,
            emit=frames.append,
            sleep=lambda _s: None,
        )
        assert len([f for f in frames if f]) == 3

    def test_cli_watch_renders(self, tmp_path, capsys):
        from repro.cli import main

        journal = _seed_journal(tmp_path, n_specs=2, ok=(0, 1))
        assert main(["obs", "watch", str(journal.path)]) == 0
        assert "sweep complete" in capsys.readouterr().out

    def test_cli_watch_rejects_non_sweep_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "not-a-journal.jsonl"
        journal = RunJournal(path)
        journal.append({"kind": "note", "text": "hi"})
        with pytest.raises(SystemExit):
            main(["obs", "watch", str(path)])


class TestServiceJournal:
    """A headerless service journal renders as a service row, not an error."""

    def _service_journal(self, tmp_path, *, epochs=3):
        journal = RunJournal(tmp_path / "service.jsonl")
        for epoch in range(epochs):
            journal.append(
                {
                    "kind": "epoch",
                    "report": {
                        "epoch": epoch,
                        "backlog_after": 1.5 * (epoch + 1),
                        "fallback_level": epoch % 2,
                    },
                    "diagnostics": [],
                }
            )
        return journal

    def test_epoch_records_render_service_row(self, tmp_path):
        journal = self._service_journal(tmp_path)
        state = collect_state(journal.path)
        assert state.service is not None
        assert state.sweep == "service"
        assert state.service.epoch == 2
        assert state.service.epochs_done == 3
        assert state.service.backlog_mb == pytest.approx(4.5)
        text = render_watch(state)
        assert text.startswith("service — ")
        assert "epoch 2 (3 done)" in text
        assert "backlog 4.5 Mb" in text
        assert "heartbeat: missing" in text

    def test_heartbeat_extras_override_journal(self, tmp_path):
        journal = self._service_journal(tmp_path)
        hb = heartbeat_dir(journal.path)
        write_heartbeat(
            hb,
            "service",
            phase="serving",
            experiment="service",
            extra={
                "service_epoch": 9,
                "epochs_done": 10,
                "backlog_mb": 0.25,
                "fallback_level": 2,
                "slo_burn_rate": {"1m": 0.5, "10m": 0.1},
            },
        )
        state = collect_state(journal.path)
        status = state.service
        assert status is not None and status.has_beat
        assert status.epoch == 9
        assert status.epochs_done == 10
        assert status.backlog_mb == 0.25
        assert status.fallback_level == 2
        text = render_watch(state)
        assert "epoch 9 (10 done)" in text
        assert "fallback L2" in text
        assert "slo burn rate:" in text
        assert "1m 50%" in text and "10m 10%" in text
        assert "heartbeat: fresh" in text
        assert not state.finished

    def test_heartbeat_alone_is_a_service(self, tmp_path):
        path = tmp_path / "service.jsonl"
        RunJournal(path)  # journal exists but holds no records yet
        write_heartbeat(
            heartbeat_dir(path), "service", phase="serving", experiment="service"
        )
        state = collect_state(path)
        assert state.service is not None
        assert state.service.epoch is None
        assert "epoch ?" in render_watch(state)

    def test_stale_service_beat_flags_and_finishes(self, tmp_path):
        journal = self._service_journal(tmp_path)
        write_heartbeat(
            heartbeat_dir(journal.path),
            "service",
            phase="serving",
            experiment="service",
            interval_s=1.0,
            mono_clock=lambda: 0.0,
        )
        state = collect_state(journal.path, now_mono=100.0)
        assert state.service is not None
        assert state.service.stale
        assert state.finished  # the follow loop must stop on a dead service
        assert "heartbeat: STALE" in render_watch(state)

    def test_plain_note_journal_still_rejected(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        journal = RunJournal(path)
        journal.append({"kind": "note", "text": "hi"})
        with pytest.raises(ValueError, match="no sweep header"):
            collect_state(path)

    def test_cli_watch_renders_service_journal(self, tmp_path, capsys):
        from repro.cli import main

        journal = self._service_journal(tmp_path)
        assert main(["obs", "watch", str(journal.path)]) == 0
        assert "service — " in capsys.readouterr().out


def test_watchstate_finished_property():
    state = WatchState(
        sweep="s", journal_path="p", total=3, done=2, failed=1, pending=0
    )
    assert state.finished
