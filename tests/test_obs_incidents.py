"""Tests for the flight recorder and ``repro obs incidents``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.incidents import (
    INCIDENT_FORMAT,
    TRIGGER_CRASH,
    TRIGGER_FALLBACK,
    TRIGGER_KINDS,
    TRIGGER_REROUTE,
    TRIGGER_SLO,
    EpochFrame,
    FlightRecorder,
    _frame_triggers,
    list_incidents,
    load_incident,
    render_incident,
    render_incident_listing,
)


def _frame(epoch: int = 0, **overrides) -> EpochFrame:
    report = {
        "epoch": epoch,
        "offered_volume": 10.0,
        "served_volume": 9.0,
        "backlog_after": 1.0,
        "fallback_level": 0,
        "deadline_hit": False,
        "reroute_swaps": 0,
    }
    report.update(overrides.pop("report", {}))
    outcome = {"slo_violation": False, "epoch_latency_s": 0.01}
    outcome.update(overrides.pop("outcome", {}))
    return EpochFrame(epoch=epoch, report=report, outcome=outcome, **overrides)


class TestTriggers:
    def test_quiet_frame_fires_nothing(self):
        assert _frame_triggers(_frame(), 2) == []

    def test_each_kind_fires_alone(self):
        cases = {
            TRIGGER_CRASH: _frame(worker_deaths=[{"pid": 42, "reason": "crashed"}]),
            TRIGGER_FALLBACK: _frame(report={"fallback_level": 2}),
            TRIGGER_SLO: _frame(outcome={"slo_violation": True}),
            TRIGGER_REROUTE: _frame(report={"reroute_swaps": 3}),
        }
        for kind, frame in cases.items():
            kinds = [k for k, _ in _frame_triggers(frame, 2)]
            assert kinds == [kind]

    def test_fallback_threshold_respected(self):
        frame = _frame(report={"fallback_level": 1})
        assert _frame_triggers(frame, 2) == []
        assert [k for k, _ in _frame_triggers(frame, 1)] == [TRIGGER_FALLBACK]

    def test_one_frame_can_fire_every_kind(self):
        frame = _frame(
            report={"fallback_level": 3, "reroute_swaps": 1},
            outcome={"slo_violation": True, "slo_reasons": ["schedule_deadline"]},
            worker_deaths=[{"pid": 1}],
        )
        assert sorted(k for k, _ in _frame_triggers(frame, 2)) == sorted(TRIGGER_KINDS)


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(window_epochs=3)
        for epoch in range(5):
            recorder.observe_epoch(_frame(epoch))
        assert [frame.epoch for frame in recorder.frames] == [2, 3, 4]

    def test_quiet_epochs_write_nothing(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "incidents")
        for epoch in range(4):
            assert recorder.observe_epoch(_frame(epoch)) == []
        assert not (tmp_path / "incidents").exists()
        assert recorder.triggered == {}

    def test_trigger_dumps_one_bundle_per_kind(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "incidents", window_epochs=4)
        recorder.observe_epoch(_frame(0))
        written = recorder.observe_epoch(
            _frame(
                1,
                report={"fallback_level": 2},
                outcome={"slo_violation": True},
            ),
            metrics_snapshot={"x": {"type": "counter", "values": []}},
        )
        assert len(written) == 2
        kinds = sorted(load_incident(path)["trigger"] for path in written)
        assert kinds == sorted([TRIGGER_FALLBACK, TRIGGER_SLO])
        bundle = load_incident(written[0])
        assert bundle["format"] == INCIDENT_FORMAT
        assert bundle["epoch"] == 1
        assert bundle["window_epochs"] == [0, 1]
        assert len(bundle["frames"]) == 2
        assert bundle["metrics"] == {"x": {"type": "counter", "values": []}}

    def test_no_directory_counts_but_never_writes(self):
        recorder = FlightRecorder(None)
        written = recorder.observe_epoch(_frame(0, outcome={"slo_violation": True}))
        assert written == []
        assert recorder.triggered == {TRIGGER_SLO: 1}
        assert recorder.bundles_written == []

    def test_max_incidents_caps_disk_not_detection(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "incidents", max_incidents=1)
        first = recorder.observe_epoch(_frame(0, outcome={"slo_violation": True}))
        second = recorder.observe_epoch(_frame(1, outcome={"slo_violation": True}))
        assert len(first) == 1 and second == []
        assert recorder.triggered == {TRIGGER_SLO: 2}

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="window_epochs"):
            FlightRecorder(window_epochs=0)


class TestBundleIO:
    def _dump_one(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "incidents")
        recorder.observe_epoch(_frame(0))
        spans = [
            {"kind": "span", "id": 1, "parent": None, "name": "service.stage",
             "start": 0.0, "end": 0.5, "attrs": {"stage": "arm"}},
            {"kind": "event", "name": "controller.epoch", "time": 0.1, "attrs": {}},
        ]
        written = recorder.observe_epoch(
            _frame(1, report={"reroute_swaps": 2}, records=spans),
            metrics_snapshot={
                "service_epochs_total": {
                    "type": "counter",
                    "description": "",
                    "values": [{"labels": {}, "value": 2}],
                }
            },
        )
        assert len(written) == 1
        return written[0]

    def test_listing_in_sequence_order(self, tmp_path):
        path = self._dump_one(tmp_path)
        assert list_incidents(path.parent) == [path]

    def test_load_rejects_foreign_json(self, tmp_path):
        alien = tmp_path / "incident-0000-epoch00000-x.json"
        alien.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not an incident bundle"):
            load_incident(alien)

    def test_load_rejects_future_format(self, tmp_path):
        path = self._dump_one(tmp_path)
        bundle = json.loads(path.read_text())
        bundle["format"] = INCIDENT_FORMAT + 1
        path.write_text(json.dumps(bundle))
        with pytest.raises(ValueError, match="unsupported incident bundle format"):
            load_incident(path)

    def test_render_shows_window_flags_spans_and_counters(self, tmp_path):
        bundle = load_incident(self._dump_one(tmp_path))
        text = render_incident(bundle)
        assert "incident: reroute_swap at epoch 1" in text
        assert "2 reroute swap(s)" in text
        assert "epoch    0" in text and "epoch    1" in text
        assert "service.stage" in text  # span tree rendered
        assert "service_epochs_total" in text  # counters rendered

    def test_listing_render(self, tmp_path):
        self._dump_one(tmp_path)
        text = render_incident_listing(tmp_path / "incidents")
        assert "1 incident bundle(s)" in text
        assert "reroute_swap" in text

    def test_listing_empty_dir(self, tmp_path):
        assert "no incident bundles" in render_incident_listing(tmp_path)


class TestCli:
    def test_cli_renders_directory_listing(self, tmp_path, capsys):
        recorder = FlightRecorder(tmp_path / "incidents")
        recorder.observe_epoch(_frame(0, outcome={"slo_violation": True}))
        assert main(["obs", "incidents", str(tmp_path / "incidents")]) == 0
        out = capsys.readouterr().out
        assert "1 incident bundle(s)" in out
        assert "slo_violation" in out

    def test_cli_renders_single_bundle(self, tmp_path, capsys):
        recorder = FlightRecorder(tmp_path / "incidents")
        [path] = recorder.observe_epoch(
            _frame(3, worker_deaths=[{"pid": 7, "reason": "crashed"}])
        )
        assert main(["obs", "incidents", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incident: worker_crash at epoch 3" in out
        assert "1 worker death(s)" in out

    def test_cli_missing_path_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["obs", "incidents", str(tmp_path / "nope")])

    def test_cli_foreign_file_errors(self, tmp_path):
        alien = tmp_path / "x.json"
        alien.write_text("{}")
        with pytest.raises(SystemExit, match="not an incident bundle"):
            main(["obs", "incidents", str(alien)])
