"""Tests for the analytic completion-time bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import (
    cp_bound,
    efficiency,
    eps_only_bound,
    hybrid_bound,
    reconfiguration_bound,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload


@pytest.fixture
def params():
    return fast_ocs_params(16)


class TestBoundValues:
    def test_eps_only_bound(self, params):
        demand = np.zeros((16, 16))
        demand[0, 1] = 30.0
        assert eps_only_bound(demand, params) == pytest.approx(3.0)

    def test_hybrid_bound_includes_delta_when_ocs_needed(self, params):
        demand = np.zeros((16, 16))
        demand[0, 1] = 110.0  # EPS alone: 11 ms >> (Ce+Co) bound: 1 ms
        assert hybrid_bound(demand, params) == pytest.approx(1.0 + 0.02)

    def test_cp_bound_below_hybrid_bound(self, params):
        demand = np.zeros((16, 16))
        demand[0, 1:15] = 10.0
        assert cp_bound(demand, params) <= hybrid_bound(demand, params)

    def test_zero_demand(self, params):
        zeros = np.zeros((16, 16))
        assert eps_only_bound(zeros, params) == 0.0
        assert hybrid_bound(zeros, params) == 0.0
        assert cp_bound(zeros, params) == 0.0

    def test_reconfiguration_bound_counts_fanout(self, params):
        demand = np.zeros((16, 16))
        demand[0, 1:13] = 1.0  # fan-out 12
        assert reconfiguration_bound(demand, params, horizon=1.0) == pytest.approx(
            12 * 0.02
        )

    def test_reconfiguration_bound_rejects_negative_horizon(self, params):
        with pytest.raises(ValueError):
            reconfiguration_bound(np.zeros((16, 16)), params, horizon=-1.0)


class TestBoundsAreActualLowerBounds:
    """No simulated schedule may beat the bounds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_h_switch_never_beats_hybrid_bound(self, params, seed):
        spec = CombinedWorkload.typical(params).generate(16, np.random.default_rng(seed))
        schedule = SolsticeScheduler().schedule(spec.demand, params)
        result = simulate_hybrid(spec.demand, schedule, params)
        assert result.completion_time >= hybrid_bound(spec.demand, params) - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cp_switch_never_beats_cp_bound(self, params, seed):
        spec = SkewedWorkload().generate(16, np.random.default_rng(seed))
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(spec.demand, params)
        result = simulate_cp(spec.demand, cp_schedule, params)
        assert result.completion_time >= cp_bound(spec.demand, params) - 1e-9

    def test_eps_only_execution_meets_its_bound_exactly(self, params):
        # A pure fan-in saturates one port: the fluid EPS achieves the
        # bound with equality.
        from repro.hybrid.schedule import Schedule

        demand = np.zeros((16, 16))
        demand[0:10, 15] = 2.0
        result = simulate_hybrid(
            demand, Schedule(entries=(), reconfig_delay=params.reconfig_delay), params
        )
        assert result.completion_time == pytest.approx(eps_only_bound(demand, params))


class TestEfficiency:
    def test_perfect(self):
        assert efficiency(2.0, 2.0) == 1.0

    def test_partial(self):
        assert efficiency(4.0, 2.0) == 0.5

    def test_capped_at_one(self):
        assert efficiency(1.0, 2.0) == 1.0

    def test_zero_completion(self):
        assert efficiency(0.0, 0.0) == 1.0
