"""Tests for the offline-execution reordering policies (§4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import (
    POLICIES,
    composite_first,
    longest_first,
    online_order,
    reorder,
    reversed_order,
    shortest_first,
)
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.workloads.combined import CombinedWorkload


@pytest.fixture(scope="module")
def schedules():
    params = fast_ocs_params(16)
    spec = CombinedWorkload.typical(params).generate(16, np.random.default_rng(2))
    h_schedule = SolsticeScheduler().schedule(spec.demand, params)
    cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(spec.demand, params)
    return params, spec, h_schedule, cp_schedule


class TestPolicies:
    def test_all_policies_are_permutations(self, schedules):
        _params, _spec, h_schedule, cp_schedule = schedules
        for name, policy in POLICIES.items():
            for schedule in (h_schedule, cp_schedule):
                order = policy(schedule)
                assert sorted(order) == list(range(len(schedule.entries))), name

    def test_online_is_identity(self, schedules):
        _params, _spec, h_schedule, _cp = schedules
        assert online_order(h_schedule) == list(range(h_schedule.n_configs))

    def test_reversed(self, schedules):
        _params, _spec, h_schedule, _cp = schedules
        assert reversed_order(h_schedule) == list(range(h_schedule.n_configs))[::-1]

    def test_longest_and_shortest_are_opposite_extremes(self, schedules):
        _params, _spec, h_schedule, _cp = schedules
        longest = longest_first(h_schedule)
        shortest = shortest_first(h_schedule)
        durations = [entry.duration for entry in h_schedule.entries]
        assert durations[longest[0]] == max(durations)
        assert durations[shortest[0]] == min(durations)

    def test_composite_first_puts_grants_up_front(self, schedules):
        _params, _spec, _h, cp_schedule = schedules
        order = composite_first(cp_schedule)
        seen_regular = False
        for index in order:
            entry = cp_schedule.entries[index]
            has_composite = entry.o2m_port is not None or entry.m2o_port is not None
            if not has_composite:
                seen_regular = True
            else:
                assert not seen_regular, "composite grant after a regular-only config"


class TestReorderSemantics:
    def test_unknown_policy_rejected(self, schedules):
        _params, _spec, h_schedule, _cp = schedules
        with pytest.raises(ValueError):
            reorder(h_schedule, "random")

    def test_total_completion_near_invariant_h(self, schedules):
        # §4: under the paper's fixed demand-partition accounting,
        # reordering leaves the total completion unchanged.  The fluid
        # model lets the EPS co-serve whatever the circuits have not
        # reached yet, so reordering may *improve* the total slightly —
        # but it must never make it worse (same configurations, same
        # makespan).
        params, spec, h_schedule, _cp = schedules
        base = simulate_hybrid(spec.demand, h_schedule, params)
        for name in POLICIES:
            alt = simulate_hybrid(spec.demand, reorder(h_schedule, name), params)
            assert alt.completion_time <= base.completion_time * 1.02, name
            assert alt.n_configs == base.n_configs
            assert alt.makespan == pytest.approx(base.makespan)

    def test_total_completion_invariant_cp(self, schedules):
        params, spec, _h, cp_schedule = schedules
        base = simulate_cp(spec.demand, cp_schedule, params)
        alt = simulate_cp(spec.demand, reorder(cp_schedule, "composite-first"), params)
        assert alt.completion_time == pytest.approx(base.completion_time, rel=0.05)

    def test_composite_first_not_worse_for_skew_cp(self, schedules):
        params, spec, _h, cp_schedule = schedules
        base = simulate_cp(spec.demand, cp_schedule, params)
        alt = simulate_cp(spec.demand, reorder(cp_schedule, "composite-first"), params)
        assert alt.coflow_completion(spec.skewed_mask) <= (
            base.coflow_completion(spec.skewed_mask) * 1.10
        )
