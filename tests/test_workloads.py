"""Tests for the paper's demand models (§3.2–§3.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FilterConfig
from repro.switch.params import fast_ocs_params, slow_ocs_params
from repro.workloads.background import TypicalBackgroundWorkload
from repro.workloads.base import DemandSpec, merge_specs, volume_scale_for
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload
from repro.workloads.varying import VaryingSkewWorkload


class TestVolumeScale:
    def test_fast_is_unit(self):
        assert volume_scale_for(fast_ocs_params(32)) == 1.0

    def test_slow_is_hundredfold(self):
        assert volume_scale_for(slow_ocs_params(32)) == 100.0


class TestSkewedWorkload:
    def test_structure(self, rng):
        spec = SkewedWorkload().generate(32, rng)
        assert len(spec.o2m_senders) == 1
        assert len(spec.m2o_receivers) == 1
        sender = spec.o2m_senders[0]
        receiver = spec.m2o_receivers[0]
        # All o2m entries in the sender's row, all m2o in receiver's column.
        assert set(np.nonzero(spec.o2m_mask)[0]) == {sender}
        assert set(np.nonzero(spec.m2o_mask)[1]) == {receiver}

    def test_fanout_in_paper_range(self, rng):
        for _ in range(10):
            spec = SkewedWorkload().generate(32, rng)
            fanout = int(spec.o2m_mask.sum())
            assert int(np.ceil(0.7 * 32)) <= fanout <= 31

    def test_volumes_in_paper_range(self, rng):
        spec = SkewedWorkload().generate(32, rng)
        # Entries hosting both an o2m and an m2o contribution may sum to
        # up to 2 * 1.3; pure entries sit in [1, 1.3].
        pure_o2m = spec.o2m_mask & ~spec.m2o_mask
        values = spec.demand[pure_o2m]
        assert (values >= 1.0).all() and (values <= 1.3).all()

    def test_slow_scale_applied(self, rng):
        spec = SkewedWorkload(volume_scale=100.0).generate(32, rng)
        pure = spec.o2m_mask & ~spec.m2o_mask
        values = spec.demand[pure]
        assert (values >= 100.0).all() and (values <= 130.0).all()

    def test_no_self_traffic(self, rng):
        for _ in range(5):
            spec = SkewedWorkload(n_senders=2, n_receivers=2).generate(16, rng)
            assert np.diagonal(spec.demand).sum() == 0.0

    def test_passes_paper_filter(self, rng):
        # The §3.2 demand must be captured by the §2.2 filter at paper
        # defaults; otherwise the composite paths would sit idle.
        params = fast_ocs_params(32)
        config = FilterConfig()
        spec = SkewedWorkload.for_params(params).generate(32, rng)
        assert VaryingSkewWorkload.filter_captures_skew(
            spec,
            config.resolve_fanout_threshold(params),
            config.resolve_volume_threshold(params),
        )

    def test_too_many_ports_rejected(self, rng):
        with pytest.raises(ValueError):
            SkewedWorkload(n_senders=5, n_receivers=5).generate(8, rng)

    def test_reproducible_per_seed(self):
        a = SkewedWorkload().generate(32, np.random.default_rng(3))
        b = SkewedWorkload().generate(32, np.random.default_rng(3))
        np.testing.assert_array_equal(a.demand, b.demand)


class TestBackgroundWorkload:
    def test_flow_mix(self, rng):
        workload = TypicalBackgroundWorkload(active_port_fraction=1.0)
        spec = workload.generate(64, rng)
        row_sums = spec.demand.sum(axis=1)
        # Every active port carries 4*30 + 12*3 = 156 Mb.
        np.testing.assert_allclose(row_sums[row_sums > 0], 156.0)
        assert (row_sums > 0).sum() == 64

    def test_active_fraction(self, rng):
        workload = TypicalBackgroundWorkload(active_port_fraction=0.25)
        spec = workload.generate(64, rng)
        assert (spec.demand.sum(axis=1) > 0).sum() == 16

    def test_elephant_byte_share(self, rng):
        workload = TypicalBackgroundWorkload()
        spec = workload.generate(128, rng)
        total = spec.total_volume
        elephant_bytes = 4 * 30.0 * 32  # 4 per active port, 32 active
        assert elephant_bytes / total == pytest.approx(120 / 156, rel=1e-9)

    def test_intensive_quadruples_density(self, rng):
        typical = TypicalBackgroundWorkload()
        intensive = typical.intensive(4)
        assert intensive.active_port_fraction == pytest.approx(1.0)
        assert intensive.n_elephants == typical.n_elephants
        spec_t = typical.generate(64, np.random.default_rng(0))
        spec_i = intensive.generate(64, np.random.default_rng(0))
        density_t = (spec_t.demand > 0).mean()
        density_i = (spec_i.demand > 0).mean()
        assert density_i > 3.0 * density_t  # ~4x, minus collision merging

    def test_intensive_beyond_full_ports_scales_flows(self):
        workload = TypicalBackgroundWorkload(active_port_fraction=0.5)
        intensive = workload.intensive(4)
        assert intensive.active_port_fraction == 1.0
        assert intensive.n_elephants == 8

    def test_no_skew_masks(self, rng):
        spec = TypicalBackgroundWorkload().generate(32, rng)
        assert not spec.skewed_mask.any()

    def test_no_self_traffic(self, rng):
        spec = TypicalBackgroundWorkload(active_port_fraction=1.0).generate(16, rng)
        assert np.diagonal(spec.demand).sum() == 0.0

    def test_slow_scale(self, rng):
        spec = TypicalBackgroundWorkload(
            active_port_fraction=1.0, volume_scale=100.0
        ).generate(16, rng)
        row_sums = spec.demand.sum(axis=1)
        np.testing.assert_allclose(row_sums, 15600.0)


class TestCombinedWorkload:
    def test_reduction_removes_about_1_63n_entries(self):
        # §3.3: "the mean number of non-zero entries in the reduced demand
        # matrix for cp-Switch is lower by 1.63*n".  With fan-out uniform
        # in [0.7n, n] per direction the filtered entries average ~1.7n and
        # the reduction adds ~2 composite aggregates: ~1.6n-1.7n net.
        params = fast_ocs_params(32)
        config = FilterConfig()
        workload = CombinedWorkload.typical(params)
        from repro.core.reduction import cp_switch_demand_reduction

        deltas = []
        for seed in range(10):
            spec = workload.generate(32, np.random.default_rng(seed))
            reduction = cp_switch_demand_reduction(
                spec.demand,
                config.resolve_fanout_threshold(params),
                config.resolve_volume_threshold(params),
            )
            deltas.append(
                int((spec.demand > 0).sum()) - int((reduction.reduced > 0).sum())
            )
        mean_delta = np.mean(deltas) / 32
        assert 1.4 <= mean_delta <= 1.9

    def test_superposition(self, rng):
        params = fast_ocs_params(32)
        workload = CombinedWorkload.typical(params)
        spec = workload.generate(32, rng)
        assert spec.skewed_mask.any()
        assert spec.background_mask.any()
        assert spec.total_volume > spec.skewed_volume > 0

    def test_intensive_variant_denser(self):
        params = fast_ocs_params(64)
        typical = CombinedWorkload.typical(params).generate(64, np.random.default_rng(1))
        intensive = CombinedWorkload.intensive(params).generate(64, np.random.default_rng(1))
        assert (intensive.demand > 0).sum() > (typical.demand > 0).sum()

    def test_merge_specs_requires_same_radix(self, rng):
        a = SkewedWorkload().generate(16, rng)
        b = SkewedWorkload().generate(32, rng)
        with pytest.raises(ValueError):
            merge_specs(a, b)

    def test_merge_sums_demand_and_unions_masks(self, rng):
        a = SkewedWorkload().generate(16, rng)
        b = TypicalBackgroundWorkload().generate(16, rng)
        merged = merge_specs(a, b)
        np.testing.assert_allclose(merged.demand, a.demand + b.demand)
        assert merged.skewed_volume >= a.skewed_volume


class TestVaryingSkewWorkload:
    def test_port_counts(self, rng):
        params = fast_ocs_params(64)
        workload = VaryingSkewWorkload.for_params(params, n_skewed_ports=4)
        spec = workload.generate(64, rng)
        assert len(spec.o2m_senders) == 4
        assert len(spec.m2o_receivers) == 4

    def test_skew_always_captured_by_filter(self):
        # Figure 11's premise: the skewed demand is "generated such that
        # [it is] chosen to be served by the composite paths" — the
        # generator must guarantee full filter capture, every draw.
        params = fast_ocs_params(64)
        config = FilterConfig()
        workload = VaryingSkewWorkload.for_params(params, n_skewed_ports=2)
        for seed in range(10):
            spec = workload.generate(64, np.random.default_rng(seed))
            assert VaryingSkewWorkload.filter_captures_skew(
                spec,
                config.resolve_fanout_threshold(params),
                config.resolve_volume_threshold(params),
            )

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            VaryingSkewWorkload(n_skewed_ports=0)


class TestDemandSpec:
    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            DemandSpec(
                demand=np.zeros((3, 3)),
                skewed_mask=np.zeros((2, 2), dtype=bool),
                o2m_mask=np.zeros((3, 3), dtype=bool),
                m2o_mask=np.zeros((3, 3), dtype=bool),
            )

    def test_immutable(self, rng):
        spec = SkewedWorkload().generate(16, rng)
        with pytest.raises(ValueError):
            spec.demand[0, 0] = 1.0
