"""Tests for end-to-end schedule execution (hybrid and cp simulations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multipath import MultiPathCpScheduler
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid, simulate_multipath
from repro.switch.params import fast_ocs_params


@pytest.fixture
def params():
    return fast_ocs_params(8)


class TestSimulateHybrid:
    def test_empty_schedule_is_eps_only(self, params):
        demand = np.zeros((8, 8))
        demand[0, 1] = 30.0
        schedule = Schedule(entries=(), reconfig_delay=params.reconfig_delay)
        result = simulate_hybrid(demand, schedule, params)
        assert result.completion_time == pytest.approx(3.0)  # 30 Mb at Ce
        assert result.served_eps == pytest.approx(30.0)
        assert result.n_configs == 0

    def test_circuit_speeds_up_completion(self, params):
        demand = np.zeros((8, 8))
        demand[0, 1] = 30.0
        perm = np.zeros((8, 8), dtype=np.int8)
        perm[0, 1] = 1
        schedule = Schedule(
            entries=(ScheduleEntry(permutation=perm, duration=0.3),),
            reconfig_delay=params.reconfig_delay,
        )
        result = simulate_hybrid(demand, schedule, params)
        # δ = 0.02 of EPS-only (serves 0.2 Mb), then the circuit drains the
        # rest at 100 Mb/ms.
        assert result.completion_time == pytest.approx(0.02 + 29.8 / 100.0)
        assert result.completion_time < 3.0

    def test_solstice_schedule_executes_fully(self, params, sparse_demand):
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        result.check_conservation()
        assert result.completion_time > 0
        assert result.n_configs == schedule.n_configs

    def test_finish_times_cover_all_demanded_entries(self, params, sparse_demand):
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        demanded = sparse_demand > 0
        assert not np.isnan(result.finish_times[demanded]).any()
        assert np.isnan(result.finish_times[~demanded]).all()

    def test_rejects_reduced_schedule(self, params, sparse_demand):
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(sparse_demand, params)
        with pytest.raises(ValueError):
            simulate_hybrid(sparse_demand, cp_schedule.reduced_schedule, params)


class TestSimulateCp:
    def test_cp_beats_h_on_skewed_demand(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_schedule = SolsticeScheduler().schedule(skewed_demand16, params)
        h_result = simulate_hybrid(skewed_demand16, h_schedule, params)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand16, params)
        cp_result = simulate_cp(skewed_demand16, cp_schedule, params)
        assert cp_result.completion_time < h_result.completion_time
        assert cp_result.n_configs < h_result.n_configs
        cp_result.check_conservation()

    def test_composite_volume_flows_through_ocs(self, params, skewed_demand):
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand, params)
        result = simulate_cp(skewed_demand, cp_schedule, params)
        assert result.served_composite > 0
        # Composite traffic counts towards the OCS volume integral.
        assert result.ocs_volume_by(result.completion_time) >= result.served_composite - 1e-6

    def test_leftover_filtered_demand_drains_on_eps(self, params):
        # A short schedule that cannot finish the composite demand.
        demand = np.zeros((8, 8))
        demand[0, 1:8] = 5.0
        scheduler = CpSwitchScheduler(EclipseScheduler(window=0.05))
        cp_schedule = scheduler.schedule(demand, params)
        result = simulate_cp(demand, cp_schedule, params)
        result.check_conservation()
        assert result.served_eps > 0

    def test_simulated_composite_residual_matches_scheduler(self, params, skewed_demand):
        # CPSched (closed form, used by the scheduler) and the fluid engine
        # must agree on what the composite paths deliver.
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand, params)
        result = simulate_cp(skewed_demand, cp_schedule, params)
        expected_served = cp_schedule.reduction.filtered.sum() - cp_schedule.filtered_residual.sum()
        assert result.served_composite == pytest.approx(expected_served, rel=1e-6)

    def test_eclipse_window_fraction_improves(self, skewed_demand16):
        params = fast_ocs_params(16)
        window = 1.0
        h_schedule = EclipseScheduler().schedule(skewed_demand16, params)
        h_result = simulate_hybrid(skewed_demand16, h_schedule, params)
        cp_schedule = CpSwitchScheduler(EclipseScheduler()).schedule(skewed_demand16, params)
        cp_result = simulate_cp(skewed_demand16, cp_schedule, params)
        assert cp_result.ocs_fraction_within(window) > h_result.ocs_fraction_within(window)


class TestSimulateMultipath:
    def test_single_path_matches_base_cp(self, params, skewed_demand):
        base = CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand, params)
        multi = MultiPathCpScheduler(SolsticeScheduler(), n_paths=1).schedule(
            skewed_demand, params
        )
        base_result = simulate_cp(skewed_demand, base, params)
        multi_result = simulate_multipath(skewed_demand, multi, params)
        assert multi_result.completion_time == pytest.approx(
            base_result.completion_time, rel=1e-6
        )

    def test_two_paths_help_two_skewed_senders(self):
        # Two one-to-many senders compete for the single composite path;
        # with k = 2 they are served concurrently.
        params = fast_ocs_params(16)
        demand = np.zeros((16, 16))
        demand[0, 1:16] = 1.0
        demand[1, np.r_[0, 2:16]] = 1.0
        single = MultiPathCpScheduler(SolsticeScheduler(), n_paths=1).schedule(demand, params)
        double = MultiPathCpScheduler(SolsticeScheduler(), n_paths=2).schedule(demand, params)
        r1 = simulate_multipath(demand, single, params)
        r2 = simulate_multipath(demand, double, params)
        assert r2.completion_time <= r1.completion_time + 1e-9
        r2.check_conservation()

    def test_conservation(self, params, sparse_demand):
        multi = MultiPathCpScheduler(SolsticeScheduler(), n_paths=3).schedule(
            sparse_demand, params
        )
        result = simulate_multipath(sparse_demand, multi, params)
        result.check_conservation()


class TestMetricsSurface:
    def test_coflow_completion_subset(self, params, skewed_demand):
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(skewed_demand, params)
        result = simulate_cp(skewed_demand, cp_schedule, params)
        o2m_mask = np.zeros((8, 8), dtype=bool)
        o2m_mask[0, 1:8] = True
        o2m_completion = result.coflow_completion(o2m_mask)
        assert 0 < o2m_completion <= result.completion_time + 1e-12

    def test_volume_integrals_monotone(self, params, sparse_demand):
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        t_end = result.completion_time
        previous = 0.0
        for t in np.linspace(0, t_end, 7):
            current = result.ocs_volume_by(float(t))
            assert current >= previous - 1e-9
            previous = current

    def test_full_window_integral_equals_served(self, params, sparse_demand):
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        total = result.ocs_volume_by(result.completion_time + 1.0)
        assert total == pytest.approx(result.served_ocs_direct, rel=1e-9)
