"""Tests for Algorithm 4 — CPSwitchSched (the full cp-Switch scheduler)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FilterConfig
from repro.core.cpsched import cpsched
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.switch.params import fast_ocs_params


@pytest.fixture
def params():
    return fast_ocs_params(8)


@pytest.fixture
def scheduler():
    return CpSwitchScheduler(SolsticeScheduler())


class TestCpSwitchScheduler:
    def test_name_composes_inner_name(self, scheduler):
        assert scheduler.name == "cp-solstice"

    def test_pure_one_to_many_uses_single_config(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        # One-to-many + many-to-one fit one permutation: sender 0 to the
        # o2m column and the m2o row to receiver 7 are disjoint circuits.
        assert cp_schedule.n_configs <= 2
        h_schedule = SolsticeScheduler().schedule(skewed_demand, params)
        assert cp_schedule.n_configs < h_schedule.n_configs

    def test_composite_served_matches_cpsched(self, params, skewed_demand):
        scheduler = CpSwitchScheduler(SolsticeScheduler())
        cp_schedule = scheduler.schedule(skewed_demand, params)
        # Replay CPSched manually over the schedule and compare residuals.
        filtered = cp_schedule.reduction.filtered.copy()
        for entry in cp_schedule:
            if entry.o2m_port is not None:
                filtered[entry.o2m_port, :] = cpsched(
                    filtered[entry.o2m_port, :],
                    entry.duration,
                    params.ocs_rate,
                    params.effective_eps_budget,
                )
            if entry.m2o_port is not None:
                filtered[:, entry.m2o_port] = cpsched(
                    filtered[:, entry.m2o_port],
                    entry.duration,
                    params.ocs_rate,
                    params.effective_eps_budget,
                )
        np.testing.assert_allclose(filtered, cp_schedule.filtered_residual)

    def test_served_volumes_sum_to_filtered_minus_residual(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        total_served = sum(entry.composite_volume for entry in cp_schedule)
        expected = cp_schedule.reduction.filtered.sum() - cp_schedule.filtered_residual.sum()
        assert total_served == pytest.approx(expected)

    def test_composite_served_is_nonnegative(self, params, scheduler, sparse_demand):
        cp_schedule = scheduler.schedule(sparse_demand, params)
        for entry in cp_schedule:
            assert (entry.composite_served >= -1e-12).all()

    def test_no_filterable_demand_degenerates_to_h_switch(self, params):
        # A diagonal demand has fan-out 1 everywhere: nothing is filtered
        # and the cp-Switch schedule equals the h-Switch schedule.
        demand = np.diag(np.full(8, 5.0))
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        h_schedule = SolsticeScheduler().schedule(demand, params)
        assert cp_schedule.reduction.composite_volume == 0.0
        assert cp_schedule.n_configs == h_schedule.n_configs
        for cp_entry, h_entry in zip(cp_schedule, h_schedule):
            np.testing.assert_array_equal(cp_entry.regular, h_entry.permutation)
            assert cp_entry.duration == pytest.approx(h_entry.duration)

    def test_works_with_eclipse_inner(self, params, skewed_demand):
        scheduler = CpSwitchScheduler(EclipseScheduler())
        cp_schedule = scheduler.schedule(skewed_demand, params)
        assert scheduler.name == "cp-eclipse"
        assert cp_schedule.composite_volume_served > 0

    def test_makespan_counts_reconfigurations(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        circuit_time = sum(entry.duration for entry in cp_schedule)
        assert cp_schedule.makespan == pytest.approx(
            circuit_time + cp_schedule.n_configs * params.reconfig_delay
        )

    def test_radix_mismatch_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule(np.zeros((4, 4)), fast_ocs_params(8))

    def test_reordered_preserves_entries(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        order = list(range(cp_schedule.n_configs))[::-1]
        reordered = cp_schedule.reordered(order)
        assert reordered.n_configs == cp_schedule.n_configs
        assert reordered.makespan == pytest.approx(cp_schedule.makespan)
        assert reordered.entries[0] is cp_schedule.entries[-1]

    def test_filter_config_is_honored(self, params, skewed_demand):
        # An impossible fan-out threshold disables composite paths entirely.
        strict = CpSwitchScheduler(
            SolsticeScheduler(), filter_config=FilterConfig(fanout_threshold=1000)
        )
        cp_schedule = strict.schedule(skewed_demand, params)
        assert cp_schedule.reduction.composite_volume == 0.0


class TestScheduleImmutability:
    def test_filtered_residual_read_only(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        with pytest.raises(ValueError):
            cp_schedule.filtered_residual[0, 0] = 1.0

    def test_entry_arrays_read_only(self, params, scheduler, skewed_demand):
        cp_schedule = scheduler.schedule(skewed_demand, params)
        entry = cp_schedule.entries[0]
        with pytest.raises(ValueError):
            entry.regular[0, 0] = 1
        with pytest.raises(ValueError):
            entry.composite_served[0, 0] = 1.0
