"""Tests for the experiment harness, aggregation, and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.aggregate import Aggregate, aggregate, ratio_of_means
from repro.analysis.experiment import (
    DEFAULT_TRIALS,
    ComparisonAggregate,
    ExperimentConfig,
    default_trials,
    run_comparison,
)
from repro.analysis.report import format_improvement, format_ratio, format_table
from repro.analysis.runtime import RuntimeCell, runtime_row
from repro.switch.params import fast_ocs_params
from repro.workloads.skewed import SkewedWorkload


class TestAggregate:
    def test_basic_stats(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.minimum == 1.0 and agg.maximum == 3.0
        assert agg.count == 3
        assert agg.std == pytest.approx(1.0)
        assert agg.stderr == pytest.approx(1.0 / np.sqrt(3))

    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.std == 0.0
        assert agg.stderr == 0.0

    def test_empty(self):
        agg = aggregate([])
        assert agg.count == 0
        assert np.isnan(agg.mean)

    def test_ratio_of_means(self):
        assert ratio_of_means(aggregate([4.0]), aggregate([2.0])) == 2.0
        assert np.isnan(ratio_of_means(aggregate([4.0]), aggregate([0.0])))

    def test_format(self):
        agg = aggregate([1.23456, 1.23456])
        assert f"{agg:.2f}" == "1.23"


class TestRunComparison:
    @pytest.fixture(scope="class")
    def result(self) -> ComparisonAggregate:
        params = fast_ocs_params(16)
        config = ExperimentConfig(
            workload=SkewedWorkload.for_params(params),
            params=params,
            scheduler="solstice",
            n_trials=3,
            seed=99,
        )
        return run_comparison(config)

    def test_trial_count(self, result):
        assert result.n_trials == 3
        assert result.h_completion_total.count == 3

    def test_cp_improves_skewed_completion(self, result):
        assert result.cp_completion_total.mean < result.h_completion_total.mean
        assert result.cp_completion_o2m.mean < result.h_completion_o2m.mean
        assert result.completion_improvement > 0

    def test_cp_uses_fewer_configs(self, result):
        assert result.cp_configs.mean < result.h_configs.mean

    def test_runtimes_recorded(self, result):
        assert result.h_sched_seconds.mean > 0
        assert result.cp_sched_seconds.mean > 0

    def test_reproducible(self):
        params = fast_ocs_params(16)

        def run():
            return run_comparison(
                ExperimentConfig(
                    workload=SkewedWorkload.for_params(params),
                    params=params,
                    scheduler="solstice",
                    n_trials=2,
                    seed=7,
                )
            )

        a, b = run(), run()
        assert a.h_completion_total.mean == b.h_completion_total.mean
        assert a.cp_completion_total.mean == b.cp_completion_total.mean

    def test_eclipse_scheduler_by_name(self):
        params = fast_ocs_params(16)
        result = run_comparison(
            ExperimentConfig(
                workload=SkewedWorkload.for_params(params),
                params=params,
                scheduler="eclipse",
                n_trials=2,
                seed=11,
            )
        )
        assert result.cp_ocs_fraction.mean >= result.h_ocs_fraction.mean

    def test_default_trials_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEEDS", raising=False)
        assert default_trials() == DEFAULT_TRIALS
        monkeypatch.setenv("REPRO_SEEDS", "9")
        assert default_trials() == 9
        monkeypatch.setenv("REPRO_SEEDS", "0")
        with pytest.raises(ValueError):
            default_trials()

    def test_default_trials_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "abc")
        with pytest.raises(ValueError, match="REPRO_SEEDS must be an integer.*'abc'"):
            default_trials()

    def test_unknown_scheduler_rejected(self):
        params = fast_ocs_params(16)
        config = ExperimentConfig(
            workload=SkewedWorkload.for_params(params),
            params=params,
            scheduler="magic",
            n_trials=1,
        )
        with pytest.raises(ValueError):
            run_comparison(config)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["radix", "h", "cp"],
            [[32, 1.234567, 0.5], [128, 10.0, 2.0]],
            title="Figure X",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure X"
        assert "radix" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[3:])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_improvement(self):
        assert format_improvement(10.0, 5.0) == "cp 50% lower"
        assert format_improvement(10.0, 12.0) == "cp 20% higher"
        assert format_improvement(0.0, 1.0) == "n/a"

    def test_format_ratio(self):
        assert format_ratio(3.0, 1.5) == "2.00x"
        assert format_ratio(1.0, 0.0) == "n/a"


class TestRuntimeTable:
    def _fake_result(self, n_ports: int, h_seconds: float, cp_seconds: float) -> ComparisonAggregate:
        one = aggregate([1.0])
        return ComparisonAggregate(
            n_ports=n_ports,
            h_completion_total=one,
            cp_completion_total=one,
            h_completion_o2m=one,
            cp_completion_o2m=one,
            h_completion_m2o=one,
            cp_completion_m2o=one,
            h_ocs_fraction=one,
            cp_ocs_fraction=one,
            h_configs=one,
            cp_configs=one,
            h_sched_seconds=aggregate([h_seconds]),
            cp_sched_seconds=aggregate([cp_seconds]),
            n_trials=1,
        )

    def test_runtime_row_builds_cells_in_ms(self):
        slow = self._fake_result(64, h_seconds=0.040, cp_seconds=0.020)
        fast = self._fake_result(64, h_seconds=0.100, cp_seconds=0.025)
        row = runtime_row(64, slow, fast)
        assert row.h_switch.slow_ms == pytest.approx(40.0)
        assert row.cp_switch.fast_ms == pytest.approx(25.0)
        assert row.ratio.slow_ms == pytest.approx(2.0)
        assert row.ratio.fast_ms == pytest.approx(4.0)

    def test_runtime_row_radix_check(self):
        slow = self._fake_result(64, 0.1, 0.1)
        fast = self._fake_result(128, 0.1, 0.1)
        with pytest.raises(ValueError):
            runtime_row(64, slow, fast)

    def test_cell_str(self):
        cell = RuntimeCell(slow_ms=7.123, fast_ms=16.5)
        assert str(cell) == "7.1, 16.5"
