"""Tests for maximum-weight matching (scipy path and Hungarian oracle)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.matching.max_weight import (
    assignment_to_permutation,
    max_weight_matching,
)


def brute_force_best(weights: np.ndarray) -> float:
    n = weights.shape[0]
    return max(
        sum(weights[i, p[i]] for i in range(n))
        for p in itertools.permutations(range(n))
    )


class TestMaxWeightMatching:
    def test_identity_optimal(self):
        weights = np.diag([5.0, 4.0, 3.0])
        assignment, value = max_weight_matching(weights)
        assert value == pytest.approx(12.0)
        np.testing.assert_array_equal(assignment, [0, 1, 2])

    def test_anti_diagonal(self):
        weights = np.array([[0.0, 10.0], [10.0, 0.0]])
        assignment, value = max_weight_matching(weights)
        assert value == pytest.approx(20.0)
        np.testing.assert_array_equal(assignment, [1, 0])

    @pytest.mark.parametrize("seed", range(10))
    def test_scipy_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0, 10, (5, 5))
        _assignment, value = max_weight_matching(weights)
        assert value == pytest.approx(brute_force_best(weights))

    @pytest.mark.parametrize("seed", range(10))
    def test_hungarian_matches_scipy(self, seed):
        rng = np.random.default_rng(50 + seed)
        weights = rng.uniform(0, 10, (7, 7))
        _a1, value_scipy = max_weight_matching(weights, use_scipy=True)
        _a2, value_hungarian = max_weight_matching(weights, use_scipy=False)
        assert value_hungarian == pytest.approx(value_scipy)

    def test_assignment_is_a_permutation(self):
        rng = np.random.default_rng(4)
        weights = rng.uniform(0, 1, (9, 9))
        assignment, _value = max_weight_matching(weights)
        assert sorted(assignment.tolist()) == list(range(9))

    def test_value_consistent_with_assignment(self):
        rng = np.random.default_rng(6)
        weights = rng.uniform(0, 1, (6, 6))
        assignment, value = max_weight_matching(weights)
        assert value == pytest.approx(weights[np.arange(6), assignment].sum())

    def test_negative_weights_allowed(self):
        weights = np.array([[-1.0, -5.0], [-5.0, -1.0]])
        _assignment, value = max_weight_matching(weights)
        assert value == pytest.approx(-2.0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            max_weight_matching(np.zeros((2, 3)))

    def test_rejects_nan(self):
        weights = np.zeros((2, 2))
        weights[0, 0] = np.nan
        with pytest.raises(ValueError):
            max_weight_matching(weights)


class TestAssignmentToPermutation:
    def test_roundtrip(self):
        assignment = np.array([2, 0, 1])
        perm = assignment_to_permutation(assignment)
        assert perm.shape == (3, 3)
        assert perm.sum() == 3
        np.testing.assert_array_equal(np.nonzero(perm)[1], assignment)
