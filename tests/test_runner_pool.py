"""Tests for the warm worker pool (:mod:`repro.runner.pool`)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.runner.pool import (
    StageResult,
    StageTask,
    WorkerPool,
    absorb_observations,
)

_PID = "tests._runner_trials:pid_stage"
_OK = "tests._runner_trials:ok_trial"
_FAIL = "tests._runner_trials:failing_trial"
_DIE_ONCE = "tests._runner_trials:die_once_stage"
_ALWAYS_DIE = "tests._runner_trials:always_die_stage"
_TRACED = "tests._runner_trials:traced_stage"


def _tasks(n, fn=_PID, **kwargs):
    return [StageTask(name=f"t{i}", fn=fn, kwargs=dict(kwargs, tag=f"t{i}")) for i in range(n)]


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            WorkerPool(1, retries=-1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout_s"):
            WorkerPool(1, timeout_s=0.0)

    def test_map_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_tasks(1))

    def test_empty_map_is_noop(self):
        with WorkerPool(1) as pool:
            assert pool.map([]) == []


class TestExecution:
    def test_results_in_task_order(self):
        with WorkerPool(2) as pool:
            results = pool.map(_tasks(6))
        assert [r.name for r in results] == [f"t{i}" for i in range(6)]
        assert all(r.ok and r.status == "ok" for r in results)
        assert all(r.payload["tag"] == r.name for r in results)

    def test_work_spreads_across_workers(self):
        with WorkerPool(2) as pool:
            results = pool.map(_tasks(8))
            pids = {r.pid for r in results}
            assert pids <= set(pool.pids)
        assert len(pids) == 2  # both warm workers actually executed stages

    def test_workers_stay_warm_across_maps(self):
        with WorkerPool(2) as pool:
            first = pool.map(_tasks(4))
            before = sorted(pool.pids)
            second = pool.map(_tasks(4))
            after = sorted(pool.pids)
        assert before == after  # no fork-per-call: the processes persist
        assert {r.pid for r in first} == {r.pid for r in second}

    def test_error_is_contained_not_retried(self):
        with WorkerPool(1, retries=2) as pool:
            (result,) = pool.map(
                [StageTask(name="bad", fn=_FAIL, kwargs={"message": "kaboom"})]
            )
        assert result.status == "error"
        assert not result.ok
        assert result.error["type"] == "RuntimeError"
        assert "kaboom" in result.error["message"]
        assert result.attempts == 1  # exceptions are deterministic: no retry

    def test_mixed_batch_keeps_slots_straight(self):
        tasks = [
            StageTask(name="ok", fn=_OK, kwargs={"trial": 1}),
            StageTask(name="bad", fn=_FAIL, kwargs={}),
            StageTask(name="ok2", fn=_OK, kwargs={"trial": 2}),
        ]
        with WorkerPool(2) as pool:
            results = pool.map(tasks)
        assert [r.status for r in results] == ["ok", "error", "ok"]
        assert results[0].payload["trial"] == 1
        assert results[2].payload["trial"] == 2


class TestCrashRecovery:
    def test_worker_death_respawns_and_retries(self, tmp_path):
        marker = tmp_path / "died.marker"
        with WorkerPool(2) as pool:
            (result,) = pool.map(
                [StageTask(name="flaky", fn=_DIE_ONCE, kwargs={"marker": str(marker)})]
            )
            assert pool.worker_deaths == 1
            assert pool.tasks_retried == 1
            assert pool.n_workers == 2  # the dead worker was replaced
        assert result.ok
        assert result.payload["recovered"] is True
        assert result.attempts == 2

    def test_death_log_records_structured_crash(self, tmp_path):
        marker = tmp_path / "died.marker"
        with WorkerPool(2) as pool:
            before = pool.liveness()
            assert before["deaths"] == 0 and before["alive"] == 2
            pool.map(
                [StageTask(name="flaky", fn=_DIE_ONCE, kwargs={"marker": str(marker)})]
            )
            (death,) = pool.death_log
            assert death["reason"] == "crashed"
            assert death["task"] == "flaky"
            assert isinstance(death["pid"], int)
            assert isinstance(death["respawned_pid"], int)
            assert death["respawned_pid"] != death["pid"]
            assert isinstance(death["mono"], float)
            after = pool.liveness()
            assert after["deaths"] == 1
            assert after["tasks_retried"] == 1
            assert after["alive"] == 2
            assert len(after["pids"]) == 2
        assert pool.liveness()["closed"] is True

    def test_retry_budget_exhaustion_reports_crashed(self):
        with WorkerPool(1, retries=1) as pool:
            (result,) = pool.map([StageTask(name="doom", fn=_ALWAYS_DIE, kwargs={})])
            assert pool.worker_deaths == 2  # initial + one retry, both died
        assert result.status == "crashed"
        assert result.error["type"] == "WorkerDied"
        assert result.attempts == 2

    def test_no_retries_crashes_immediately(self):
        with WorkerPool(1, retries=0) as pool:
            (result,) = pool.map([StageTask(name="doom", fn=_ALWAYS_DIE, kwargs={})])
        assert result.status == "crashed"
        assert result.attempts == 1

    def test_survivors_complete_around_a_crash(self, tmp_path):
        marker = tmp_path / "died.marker"
        tasks = _tasks(4) + [
            StageTask(name="flaky", fn=_DIE_ONCE, kwargs={"marker": str(marker)})
        ]
        with WorkerPool(2) as pool:
            results = pool.map(tasks)
        assert [r.status for r in results] == ["ok"] * 5

    def test_wedged_worker_times_out(self):
        with WorkerPool(1, retries=0, timeout_s=0.5) as pool:
            (result,) = pool.map(
                [
                    StageTask(
                        name="hang",
                        fn="tests._runner_trials:sleepy_trial",
                        kwargs={"seconds": 60.0},
                    )
                ]
            )
            assert pool.worker_deaths == 1
        assert result.status == "crashed"
        assert "wall-clock budget" in result.error["message"]


class TestObservability:
    def test_stage_obs_blobs_ship_and_absorb(self):
        tracer = obs.JsonlTracer()
        registry = obs.MetricsRegistry()
        with obs.observability(tracer=tracer, metrics=registry):
            # Workers fork after the backends are live, so they inherit
            # enabled obs and ship their spans/metrics back per task.
            with WorkerPool(2) as pool:
                results = pool.map(
                    [
                        StageTask(name=f"s{i}", fn=_TRACED, kwargs={"value": float(i)})
                        for i in range(3)
                    ]
                )
            root = tracer.begin("test.root")
            absorb_observations(results)
            tracer.end(root)
        assert all(r.obs for r in results)
        names = [record.get("name") for record in tracer.records()]
        assert names.count("pool.stage") == 3
        (entry,) = registry.snapshot()["pool_stage_total"]["values"]
        assert entry["value"] == 3

    def test_absorb_without_backends_is_noop(self):
        result = StageResult(
            name="s", status="ok", payload={}, obs={"spans": [], "metrics": {}}
        )
        absorb_observations([result])  # obs inactive: must not raise


class TestShutdown:
    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.map(_tasks(2))
        pool.close()
        pool.close()
        assert pool.pids == []

    def test_context_manager_reaps_workers(self):
        with WorkerPool(2) as pool:
            pool.map(_tasks(2))
            procs = [w.process for w in pool._workers]
        assert all(not p.is_alive() for p in procs)
