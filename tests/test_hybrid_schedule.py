"""Tests for the Schedule / ScheduleEntry containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.schedule import Schedule, ScheduleEntry


def entry(pairs, n=4, duration=1.0) -> ScheduleEntry:
    perm = np.zeros((n, n), dtype=np.int8)
    for i, j in pairs:
        perm[i, j] = 1
    return ScheduleEntry(permutation=perm, duration=duration)


class TestScheduleEntry:
    def test_circuits_lists_pairs(self):
        e = entry([(0, 1), (2, 3)])
        assert e.circuits == [(0, 1), (2, 3)]
        assert e.size == 4

    def test_rejects_double_row(self):
        perm = np.zeros((3, 3), dtype=np.int8)
        perm[0, 0] = perm[0, 1] = 1
        with pytest.raises(ValueError):
            ScheduleEntry(permutation=perm, duration=1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            entry([(0, 0)], duration=-0.1)

    def test_permutation_is_frozen(self):
        e = entry([(0, 0)])
        with pytest.raises(ValueError):
            e.permutation[0, 0] = 0


class TestSchedule:
    def test_makespan_counts_delta_per_config(self):
        schedule = Schedule(
            entries=(entry([(0, 0)], duration=1.0), entry([(1, 1)], duration=2.0)),
            reconfig_delay=0.5,
        )
        assert schedule.circuit_time == pytest.approx(3.0)
        assert schedule.reconfig_time == pytest.approx(1.0)
        assert schedule.makespan == pytest.approx(4.0)
        assert schedule.n_configs == 2

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            Schedule(
                entries=(entry([(0, 0)], n=4), entry([(0, 0)], n=5)),
                reconfig_delay=0.1,
            )

    def test_served_volume_respects_capacity(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 500.0
        schedule = Schedule(entries=(entry([(0, 1)], duration=1.0),), reconfig_delay=0.0)
        # 1 ms at 100 Mb/ms serves only 100 of the 500 Mb.
        assert schedule.served_volume(demand, ocs_rate=100.0) == pytest.approx(100.0)

    def test_served_volume_caps_at_demand(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 30.0
        schedule = Schedule(entries=(entry([(0, 1)], duration=1.0),), reconfig_delay=0.0)
        assert schedule.served_volume(demand, ocs_rate=100.0) == pytest.approx(30.0)

    def test_served_volume_tracks_residual_across_entries(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 150.0
        schedule = Schedule(
            entries=(entry([(0, 1)], duration=1.0), entry([(0, 1)], duration=1.0)),
            reconfig_delay=0.0,
        )
        assert schedule.served_volume(demand, ocs_rate=100.0) == pytest.approx(150.0)

    def test_reordered(self):
        first, second = entry([(0, 0)], duration=1.0), entry([(1, 1)], duration=2.0)
        schedule = Schedule(entries=(first, second), reconfig_delay=0.1)
        flipped = schedule.reordered([1, 0])
        assert flipped[0] is second
        assert flipped.makespan == pytest.approx(schedule.makespan)

    def test_reordered_rejects_bad_order(self):
        schedule = Schedule(entries=(entry([(0, 0)]),), reconfig_delay=0.1)
        with pytest.raises(ValueError):
            schedule.reordered([0, 0])

    def test_iteration_and_indexing(self):
        entries = (entry([(0, 0)]), entry([(1, 1)]))
        schedule = Schedule(entries=entries, reconfig_delay=0.1)
        assert list(schedule) == list(entries)
        assert schedule[1] is entries[1]
        assert len(schedule) == 2
