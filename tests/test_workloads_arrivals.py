"""Tests for the arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.controller import EpochController
from repro.hybrid.solstice import SolsticeScheduler
from repro.switch.params import fast_ocs_params
from repro.workloads.arrivals import OnOffArrivals, PoissonArrivals, WorkloadArrivals
from repro.workloads.skewed import SkewedWorkload


@pytest.fixture
def base():
    return WorkloadArrivals(workload=SkewedWorkload(), n_ports=16, seed=7)


class TestWorkloadArrivals:
    def test_shape_and_volume(self, base):
        demand = base(0)
        assert demand.shape == (16, 16)
        assert demand.sum() > 0

    def test_reproducible_per_epoch(self, base):
        np.testing.assert_array_equal(base(3), base(3))

    def test_epochs_are_independent_draws(self, base):
        assert not np.array_equal(base(0), base(1))

    def test_intensity_scales(self):
        unit = WorkloadArrivals(SkewedWorkload(), 16, seed=7)
        double = WorkloadArrivals(SkewedWorkload(), 16, seed=7, intensity=2.0)
        np.testing.assert_allclose(double(0), 2.0 * unit(0))

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            WorkloadArrivals(SkewedWorkload(), 16, intensity=-1.0)


class TestPoissonArrivals:
    def test_mean_volume_tracks_rate(self):
        low = PoissonArrivals(SkewedWorkload(), 16, mean_per_epoch=0.5, seed=1)
        high = PoissonArrivals(SkewedWorkload(), 16, mean_per_epoch=4.0, seed=1)
        low_volume = float(np.mean([low(e).sum() for e in range(20)]))
        high_volume = float(np.mean([high(e).sum() for e in range(20)]))
        assert high_volume > 3 * low_volume

    def test_zero_rate_gives_zero(self):
        arrivals = PoissonArrivals(SkewedWorkload(), 16, mean_per_epoch=0.0)
        assert arrivals(0).sum() == 0.0

    def test_reproducible(self):
        a = PoissonArrivals(SkewedWorkload(), 16, mean_per_epoch=2.0, seed=3)
        b = PoissonArrivals(SkewedWorkload(), 16, mean_per_epoch=2.0, seed=3)
        np.testing.assert_array_equal(a(5), b(5))


class TestOnOffArrivals:
    def test_gating(self, base):
        gated = OnOffArrivals(base, period=4, on_epochs=2)
        assert gated(0).sum() > 0
        assert gated(1).sum() > 0
        assert gated(2).sum() == 0.0
        assert gated(3).sum() == 0.0
        assert gated(4).sum() > 0

    def test_invalid_period(self, base):
        with pytest.raises(ValueError):
            OnOffArrivals(base, period=0)
        with pytest.raises(ValueError):
            OnOffArrivals(base, period=2, on_epochs=3)


class TestWithController:
    def test_bursty_load_drives_controller(self):
        params = fast_ocs_params(16)
        arrivals = OnOffArrivals(
            WorkloadArrivals(SkewedWorkload(), 16, seed=2), period=2, on_epochs=1
        )
        controller = EpochController(params, SolsticeScheduler(), epoch_duration=0.5)
        reports = controller.run(arrivals, n_epochs=4)
        # OFF epochs give the switch slack to catch up.
        assert reports[1].backlog_after <= reports[0].backlog_after + 1e-9
        controller.voqs.check_conservation()


class TestBurstOn:
    def test_gate_shape(self):
        from repro.workloads.arrivals import burst_on

        assert [burst_on(e, 4, 2) for e in range(6)] == [
            True, True, False, False, True, True,
        ]

    def test_onoff_arrivals_uses_it(self, base):
        # The refactor must not change OnOffArrivals' observable gating.
        gated = OnOffArrivals(base, period=3, on_epochs=1)
        assert gated(0).sum() > 0
        assert gated(1).sum() == 0.0
        assert gated(3).sum() > 0
