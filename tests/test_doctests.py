"""Keep the executable examples in docstrings honest."""

from __future__ import annotations

import doctest

import repro
import repro.hybrid.solstice.stuffing


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_stuffing_docstring_examples():
    results = doctest.testmod(repro.hybrid.solstice.stuffing, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
