"""Tests for the JSONL run journal (checkpoint store)."""

from __future__ import annotations

import json

import pytest

from repro.runner import JournalFormatError, RunJournal
from repro.utils.fileio import atomic_write_json, atomic_write_text


class TestAtomicWrites:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "one\n")
        atomic_write_text(target, "two\n")
        assert target.read_text() == "two\n"
        # No tmp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_json_helper_round_trips(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json({"b": 2, "a": 1}, target)
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}


class TestRunJournal:
    def test_append_persists_and_reloads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record_success("exp:0000", {"x": 1.5}, attempts=1, elapsed_s=0.01)
        journal.record_success("exp:0001", {"x": 2.5}, attempts=2, elapsed_s=0.02)

        reloaded = RunJournal(path)
        assert reloaded.completed() == {"exp:0000": {"x": 1.5}, "exp:0001": {"x": 2.5}}
        assert reloaded.completed_keys() == {"exp:0000", "exp:0001"}

    def test_in_memory_journal_has_no_file(self):
        journal = RunJournal()
        journal.record_success("k", {"v": 1}, attempts=1, elapsed_s=0.0)
        assert journal.path is None
        assert journal.completed_keys() == {"k"}

    def test_every_record_carries_the_envelope(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append({"kind": "note", "text": "hello"})
        record = json.loads(path.read_text())
        assert record["format"] == 1

    def test_append_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            RunJournal().append({"payload": 1})

    def test_tolerates_torn_trailing_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record_success("exp:0000", {"x": 1}, attempts=1, elapsed_s=0.0)
        with path.open("a") as handle:
            handle.write('{"format": 1, "kind": "trial", "key": "exp:0001", "stat')

        reloaded = RunJournal(path)
        assert reloaded.completed_keys() == {"exp:0000"}
        assert reloaded.torn_lines == 1

    def test_rejects_future_format(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"format": 99, "kind": "trial", "key": "k", "status": "ok"}\n')
        with pytest.raises(JournalFormatError, match="v99"):
            RunJournal(path)

    def test_header_written_once_and_checked(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.write_header("sweep-a", [{"key": "k"}], meta={"kind": "compare"})
        journal.write_header("sweep-a", [{"key": "k"}])  # idempotent
        assert sum(r["kind"] == "header" for r in journal.records) == 1

        with pytest.raises(ValueError, match="belongs to sweep"):
            RunJournal(path).write_header("sweep-b", [])

    def test_failures_query(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_failure("exp:0000", {"error_type": "RuntimeError"}, attempts=3)
        journal.record_success("exp:0001", {"x": 1}, attempts=1, elapsed_s=0.0)
        assert [r["key"] for r in journal.failures()] == ["exp:0000"]
        assert journal.completed_keys() == {"exp:0001"}
