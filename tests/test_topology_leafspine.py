"""Tests for the leaf-spine hybrid fabric (§4 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.topology.leafspine import (
    COMPOSITE_LINK,
    EPS_UPLINK,
    OCS_UPLINK,
    LeafSpineFabric,
    LeafSpineParams,
)


@pytest.fixture
def fabric():
    return LeafSpineFabric(
        LeafSpineParams(
            n_leaves=16,
            n_eps_spines=2,
            n_ocs_spines=1,
            eps_link_rate=5.0,
            ocs_link_rate=100.0,
            n_composite_links=2,
        )
    )


class TestConstruction:
    def test_node_counts(self, fabric):
        assert len(fabric.leaves()) == 16
        assert len(fabric.spines("eps-spine")) == 2
        assert len(fabric.spines("ocs-spine")) == 1

    def test_edge_counts(self, fabric):
        assert len(fabric.edges_of_kind(EPS_UPLINK)) == 16 * 2
        assert len(fabric.edges_of_kind(OCS_UPLINK)) == 16 * 1
        assert len(fabric.edges_of_kind(COMPOSITE_LINK)) == 2

    def test_composite_routes_cross_planes(self, fabric):
        for ocs, eps in fabric.composite_path_hops():
            assert ocs.startswith("ocs")
            assert eps.startswith("eps")

    def test_rejects_tiny_fabric(self):
        with pytest.raises(ValueError):
            LeafSpineParams(n_leaves=1)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            LeafSpineParams(n_leaves=4, eps_link_rate=0.0)


class TestCapacities:
    def test_leaf_eps_capacity_sums_uplinks(self, fabric):
        assert fabric.leaf_eps_capacity(0) == pytest.approx(10.0)  # 2 x 5
        assert fabric.leaf_eps_capacity("leaf3") == pytest.approx(10.0)

    def test_leaf_ocs_capacity_is_one_circuit(self, fabric):
        assert fabric.leaf_ocs_capacity(0) == pytest.approx(100.0)

    def test_bisection_bandwidth(self, fabric):
        assert fabric.eps_bisection_bandwidth() == pytest.approx(8 * 10.0)

    def test_oversubscription(self, fabric):
        # 220 Mb/ms of downlinks over 110 Mb/ms of uplinks -> 2:1.
        assert fabric.oversubscription(220.0) == pytest.approx(2.0)


class TestReduction:
    def test_equivalent_params_match_paper_switch(self, fabric):
        params = fabric.equivalent_switch_params()
        assert params.n_ports == 16
        assert params.eps_rate == pytest.approx(10.0)
        assert params.ocs_rate == pytest.approx(100.0)

    def test_plain_fabric_has_no_composite_support(self):
        fabric = LeafSpineFabric(LeafSpineParams(n_leaves=8, n_composite_links=0))
        assert not fabric.supports_cp_scheduling()

    def test_composite_fabric_supports_cp(self, fabric):
        assert fabric.supports_cp_scheduling()

    def test_end_to_end_scheduling_on_fabric_params(self, fabric):
        # The paper's scaling claim: the single-switch algorithms run
        # unmodified against the fabric's reduced parameters.
        params = fabric.equivalent_switch_params()
        demand = np.zeros((16, 16))
        demand[0, 1:15] = 1.2
        h_res = simulate_hybrid(
            demand, SolsticeScheduler().schedule(demand, params), params
        )
        cp_sched = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        cp_res = simulate_cp(demand, cp_sched, params)
        assert cp_res.completion_time < h_res.completion_time

    def test_validate_nonblocking_passes(self, fabric):
        fabric.validate_nonblocking()

    def test_validate_detects_missing_ocs_uplink(self, fabric):
        # Sever leaf0's OCS uplink and expect validation to fail.
        edges = [
            (u, v, k)
            for u, v, k, d in fabric.graph.edges(keys=True, data=True)
            if d["kind"] == OCS_UPLINK and ("leaf0" in (u, v))
        ]
        fabric.graph.remove_edges_from(edges)
        with pytest.raises(ValueError):
            fabric.validate_nonblocking()
