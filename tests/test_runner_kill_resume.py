"""End-to-end kill-and-resume test: SIGKILL a sweep, resume, compare.

Drives ``scripts/kill_resume_smoke.py`` — the same harness CI runs — at a
small radix: a journaled compare sweep is SIGKILLed mid-run, resumed with
``python -m repro sweep --resume``, and the merged journal must match an
uninterrupted run bit-for-bit (wall-clock fields excluded) with zero
re-executed trials.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SMOKE = REPO_ROOT / "scripts" / "kill_resume_smoke.py"


def test_kill_and_resume_is_bit_identical(tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            str(SMOKE),
            "--radix", "16",
            "--trials", "4",
            "--workdir", str(tmp_path / "smoke"),
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert "bit-identical" in proc.stdout
