"""Tests for Algorithm 3 — DivideByType."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.divide import divide_by_type


def reduced_permutation(n: int, pairs: "list[tuple[int, int]]") -> np.ndarray:
    perm = np.zeros((n + 1, n + 1), dtype=np.int8)
    for i, j in pairs:
        perm[i, j] = 1
    return perm


class TestDivideByType:
    def test_pure_regular_permutation(self):
        perm = reduced_permutation(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        divided = divide_by_type(perm)
        assert divided.o2m_port is None
        assert divided.m2o_port is None
        assert not divided.has_composite
        assert divided.regular.sum() == 4

    def test_one_to_many_grant(self):
        # Sender 2 matched to the composite column.
        perm = reduced_permutation(4, [(2, 4), (0, 1), (1, 0)])
        divided = divide_by_type(perm)
        assert divided.o2m_port == 2
        assert divided.m2o_port is None
        assert divided.regular.sum() == 2
        assert divided.regular[2].sum() == 0  # the grant is not a regular circuit

    def test_many_to_one_grant(self):
        perm = reduced_permutation(4, [(4, 3), (0, 0)])
        divided = divide_by_type(perm)
        assert divided.m2o_port == 3
        assert divided.o2m_port is None

    def test_both_grants_in_one_permutation(self):
        perm = reduced_permutation(4, [(1, 4), (4, 2), (0, 0), (3, 3)])
        divided = divide_by_type(perm)
        assert divided.o2m_port == 1
        assert divided.m2o_port == 2
        assert divided.has_composite
        assert divided.regular.sum() == 2

    def test_composite_to_composite_corner_ignored(self):
        # P[n, n] = 1 carries no demand (DI[n, n] == 0 by construction).
        perm = reduced_permutation(4, [(4, 4), (0, 1)])
        divided = divide_by_type(perm)
        assert divided.o2m_port is None
        assert divided.m2o_port is None
        assert divided.regular.sum() == 1

    def test_regular_block_is_a_copy(self):
        perm = reduced_permutation(3, [(0, 0)])
        divided = divide_by_type(perm)
        divided.regular[0, 0] = 0
        assert perm[0, 0] == 1

    def test_rejects_non_permutation(self):
        bad = np.zeros((5, 5), dtype=np.int8)
        bad[0, 0] = bad[0, 1] = 1  # two entries in one row
        with pytest.raises(ValueError):
            divide_by_type(bad)

    def test_rejects_tiny_matrix(self):
        with pytest.raises(ValueError):
            divide_by_type(np.zeros((1, 1), dtype=np.int8))

    def test_partial_permutation_accepted(self):
        perm = reduced_permutation(4, [(0, 2)])
        divided = divide_by_type(perm)
        assert divided.regular.sum() == 1
