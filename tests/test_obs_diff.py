"""Tests for ``repro obs diff`` (run alignment + schedule-quality drift)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    PhaseDelta,
    PhaseStats,
    QUALITY_COUNTERS,
    diff_to_json,
    diff_traces,
    render_diff,
)
from repro.obs.summarize import TraceData, group_paths, span_paths
from repro.obs.tracer import JsonlTracer


def _trace(counter_values: "dict | None" = None, extra_span: bool = False) -> TraceData:
    """A small deterministic trace: root → trial ×2 → schedule."""
    tracer = JsonlTracer(clock=iter(range(100)).__next__)
    root = tracer.begin("repro.compare")
    for _ in range(2):
        trial = tracer.begin("runner.trial")
        with tracer.span("solstice.schedule"):
            pass
        tracer.end(trial)
    if extra_span:
        with tracer.span("new.phase"):
            pass
    tracer.end(root)
    metrics = {}
    for name, value in (counter_values or {}).items():
        metrics[name] = {
            "type": "counter",
            "description": "",
            "values": [{"labels": {}, "value": value}],
        }
    return TraceData(spans=tracer.records(), metrics=metrics)


class TestPathAlignment:
    def test_span_paths_are_root_to_leaf(self):
        data = _trace()
        paths = set(span_paths(data).values())
        assert "repro.compare" in paths
        assert "repro.compare/runner.trial" in paths
        assert "repro.compare/runner.trial/solstice.schedule" in paths

    def test_group_paths_merges_repeated_spans(self):
        groups = group_paths(_trace())
        assert groups["repro.compare/runner.trial"].count == 2
        assert groups["repro.compare/runner.trial/solstice.schedule"].count == 2

    def test_orphan_span_roots_its_own_path(self):
        data = TraceData(
            spans=[{"id": 7, "parent": 99, "name": "lost", "start": 0.0, "end": 1.0}]
        )
        assert span_paths(data) == {7: "lost"}


class TestDiff:
    def test_identical_traces_have_no_drift(self):
        counters = {name: 3 for name in sorted(QUALITY_COUNTERS)[:3]}
        diff = diff_traces(_trace(counters), _trace(counters))
        assert not diff.has_quality_drift
        assert all(d.a is not None and d.b is not None for d in diff.phases)
        # every aligned phase has matching counts
        assert all(d.a.count == d.b.count for d in diff.phases)

    def test_quality_counter_change_is_drift(self):
        a = _trace({"solstice_slices_total": 22})
        b = _trace({"solstice_slices_total": 23})
        diff = diff_traces(a, b)
        assert diff.has_quality_drift
        (entry,) = diff.quality_drift
        assert entry["metric"] == "solstice_slices_total"
        assert (entry["a"], entry["b"]) == (22.0, 23.0)

    def test_timing_counter_change_is_not_drift(self):
        a = _trace({"runner_retries_total": 0})
        b = _trace({"runner_retries_total": 5})
        diff = diff_traces(a, b)
        assert not diff.has_quality_drift
        assert diff.counters["runner_retries_total"] == (0.0, 5.0)

    def test_volume_counter_uses_relative_tolerance(self):
        value = 1234.5678
        a = _trace({"cpsched_composite_volume_mb_total": value})
        dust = _trace({"cpsched_composite_volume_mb_total": value * (1 + 1e-12)})
        real = _trace({"cpsched_composite_volume_mb_total": value * 1.5})
        assert not diff_traces(a, dust).has_quality_drift
        assert diff_traces(a, real).has_quality_drift

    def test_new_and_gone_phases(self):
        path = "repro.compare/new.phase"
        diff = diff_traces(_trace(), _trace(extra_span=True))
        by_path = {d.path: d for d in diff.phases}
        assert by_path[path].a is None
        assert by_path[path].b is not None
        back = diff_traces(_trace(extra_span=True), _trace())
        assert {d.path: d for d in back.phases}[path].b is None

    def test_stats_min_median_over_repeats(self):
        data = TraceData(
            spans=[
                {"id": i, "parent": None, "name": "p", "start": 0.0, "end": end}
                for i, end in enumerate([1.0, 2.0, 10.0], start=1)
            ]
        )
        diff = diff_traces(data, data)
        (delta,) = diff.phases
        assert delta.a == PhaseStats(count=3, total=13.0, min=1.0, median=2.0)
        assert delta.ratio == pytest.approx(1.0)

    def test_render_and_json_shapes(self):
        diff = diff_traces(
            _trace({"solstice_slices_total": 1}), _trace({"solstice_slices_total": 2})
        )
        text = render_diff(diff)
        assert "SCHEDULE-QUALITY DRIFT" in text
        assert "solstice_slices_total" in text
        payload = diff_to_json(diff)
        assert payload["format"] == 1
        assert payload["quality_drift"]
        assert payload["counters"]["solstice_slices_total"]["delta"] == 1.0
        json.dumps(payload)  # fully serializable

    def test_ratio_none_when_a_empty(self):
        delta = PhaseDelta(path="p", a=None, b=PhaseStats(1, 1.0, 1.0, 1.0))
        assert delta.ratio is None
        assert delta.delta_total == 1.0


class TestDiffCli:
    def _run_traced(self, tmp_path, name: str) -> str:
        out = str(tmp_path / name)
        assert (
            main(
                [
                    "compare",
                    "--radix",
                    "8",
                    "--trials",
                    "1",
                    "--no-journal",
                    "--isolation",
                    "inline",
                    "--trace",
                    out,
                ]
            )
            == 0
        )
        return out

    def test_same_seeded_run_zero_drift(self, tmp_path, capsys):
        a = self._run_traced(tmp_path, "a.jsonl")
        b = self._run_traced(tmp_path, "b.jsonl")
        code = main(
            ["obs", "diff", a, b, "--fail-on-drift", "--json", str(tmp_path / "d.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule-quality drift: none" in out
        payload = json.loads((tmp_path / "d.json").read_text())
        assert payload["quality_drift"] == []

    def test_fail_on_drift_exits_nonzero(self, tmp_path, capsys):
        a = self._run_traced(tmp_path, "a.jsonl")
        # Different radix => genuinely different schedule decisions.
        out = str(tmp_path / "c.jsonl")
        assert (
            main(
                [
                    "compare",
                    "--radix",
                    "12",
                    "--trials",
                    "1",
                    "--no-journal",
                    "--isolation",
                    "inline",
                    "--trace",
                    out,
                ]
            )
            == 0
        )
        assert main(["obs", "diff", a, out, "--fail-on-drift"]) == 1

    def test_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "diff", str(tmp_path / "no.jsonl"), str(tmp_path / "no2.jsonl")])
