"""Tests for Hopcroft–Karp matching (pure-Python and scipy backends)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.matching.hopcroft_karp import (
    UNMATCHED,
    has_perfect_matching,
    hopcroft_karp,
    matching_to_permutation,
    maximum_matching_mask,
    perfect_matching_mask,
)


def brute_force_max_matching(mask: np.ndarray) -> int:
    """Exponential oracle: maximum matching size of a small boolean matrix."""
    n_rows, n_cols = mask.shape
    best = 0
    cols = list(range(n_cols))
    for size in range(min(n_rows, n_cols), 0, -1):
        for row_subset in itertools.combinations(range(n_rows), size):
            for col_perm in itertools.permutations(cols, size):
                if all(mask[r, c] for r, c in zip(row_subset, col_perm)):
                    return size
    return best


class TestHopcroftKarp:
    def test_simple_perfect(self):
        adjacency = [[0, 1], [0], [2]]
        match_left, match_right, size = hopcroft_karp(adjacency, 3)
        assert size == 3
        assert sorted(match_left.tolist()) == [0, 1, 2]

    def test_requires_augmenting_path(self):
        # Greedy picks 0->0; augmentation must reroute it via 0->1.
        adjacency = [[0, 1], [0]]
        _left, _right, size = hopcroft_karp(adjacency, 2)
        assert size == 2

    def test_no_edges(self):
        match_left, _right, size = hopcroft_karp([[], []], 2)
        assert size == 0
        assert (match_left == UNMATCHED).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((5, 5)) < 0.35
        _match, size = maximum_matching_mask(mask, use_scipy=False)
        assert size == brute_force_max_matching(mask)

    @pytest.mark.parametrize("seed", range(12))
    def test_scipy_and_python_backends_agree(self, seed):
        rng = np.random.default_rng(100 + seed)
        mask = rng.random((9, 9)) < 0.4
        _m1, size_py = maximum_matching_mask(mask, use_scipy=False)
        _m2, size_sp = maximum_matching_mask(mask, use_scipy=True)
        assert size_py == size_sp

    def test_matching_is_valid(self):
        rng = np.random.default_rng(5)
        mask = rng.random((12, 12)) < 0.5
        match, size = maximum_matching_mask(mask)
        matched = match[match != UNMATCHED]
        assert len(set(matched.tolist())) == len(matched), "columns must be distinct"
        for row, col in enumerate(match.tolist()):
            if col != UNMATCHED:
                assert mask[row, col], "matched pair must be an edge"


class TestPerfectMatching:
    def test_identity_has_perfect_matching(self):
        assert has_perfect_matching(np.eye(4, dtype=bool))

    def test_empty_row_fails_fast(self):
        mask = np.ones((4, 4), dtype=bool)
        mask[2, :] = False
        assert not has_perfect_matching(mask)

    def test_rectangular_never_perfect(self):
        assert not has_perfect_matching(np.ones((3, 4), dtype=bool))

    def test_hall_violation_detected(self):
        # Rows {0,1,2} all map into columns {0,1}: no perfect matching.
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, [0, 1]] = True
        mask[1, [0, 1]] = True
        mask[2, [0, 1]] = True
        mask[3, :] = True
        assert not has_perfect_matching(mask)

    def test_perfect_matching_mask_returns_permutation(self):
        mask = np.array(
            [
                [1, 1, 0],
                [1, 0, 0],
                [0, 1, 1],
            ],
            dtype=bool,
        )
        match = perfect_matching_mask(mask)
        assert match is not None
        perm = matching_to_permutation(match, 3)
        assert perm.sum() == 3
        assert (perm.sum(axis=0) == 1).all()
        assert (perm.sum(axis=1) == 1).all()
        assert (mask | (perm == 0)).all(), "permutation uses only edges"

    def test_perfect_matching_mask_none_when_infeasible(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[:, 0] = True
        assert perfect_matching_mask(mask) is None


class TestMatchingToPermutation:
    def test_partial_matching_gives_partial_permutation(self):
        match = np.array([1, UNMATCHED, 0])
        perm = matching_to_permutation(match, 3)
        assert perm.sum() == 2
        assert perm[0, 1] == 1 and perm[2, 0] == 1
