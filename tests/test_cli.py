"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestCompareCommand:
    def test_compare_skewed(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "skewed",
                "--radix",
                "16",
                "--trials",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "h-Switch" in out and "cp-Switch" in out
        assert "completion total (ms)" in out

    def test_compare_eclipse_slow(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "skewed",
                "--scheduler",
                "eclipse",
                "--ocs",
                "slow",
                "--radix",
                "16",
                "--trials",
                "1",
            ]
        )
        assert code == 0
        assert "OCS fraction" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_writes_npy(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        code = main(
            ["workload", "--workload", "typical", "--radix", "16", "--out", str(out)]
        )
        assert code == 0
        demand = np.load(out)
        assert demand.shape == (16, 16)
        assert demand.sum() > 0

    def test_writes_csv(self, tmp_path):
        out = tmp_path / "demand.csv"
        assert main(["workload", "--radix", "8", "--out", str(out)]) == 0
        demand = np.loadtxt(out, delimiter=",")
        assert demand.shape == (8, 8)

    def test_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["workload", "--radix", "8", "--out", str(tmp_path / "demand.txt")])


class TestScheduleCommand:
    def test_schedule_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        main(["workload", "--workload", "skewed", "--radix", "16", "--out", str(out)])
        capsys.readouterr()
        code = main(["schedule", str(out), "--switch", "cp"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cp-Switch / solstice" in text
        assert "completion" in text
        assert "o2m@" in text or "m2o@" in text

    def test_schedule_h_switch(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        main(["workload", "--workload", "skewed", "--radix", "16", "--out", str(out)])
        capsys.readouterr()
        assert main(["schedule", str(out), "--switch", "h"]) == 0
        assert "h-Switch / solstice" in capsys.readouterr().out


class TestRobustnessCommand:
    def test_fault_and_error_sweeps(self, capsys):
        code = main(
            [
                "robustness",
                "--radix",
                "16",
                "--trials",
                "1",
                "--fault-rates",
                "0,0.5",
                "--error-rates",
                "0,0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hardware fault sweep" in out
        assert "released (Mb)" in out
        assert "h/cp" in out
        assert "estimation-error sweep" in out

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            main(["robustness", "--radix", "16", "--trials", "1", "--fault-rates", "2"])

    def test_deadline_table_rendered(self, capsys):
        code = main(
            [
                "robustness", "--radix", "16", "--trials", "1",
                "--fault-rates", "0", "--error-rates", "0",
                "--deadline", "50", "--isolation", "inline", "--no-journal",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deadline-aware anytime scheduling vs unbounded" in out
        assert "miss rate" in out and "fallbacks" in out


class TestBudgetValidation:
    """Satellite: --timeout / --deadline reject zero, negative and NaN
    values with one actionable line instead of a downstream traceback."""

    @pytest.mark.parametrize("bad", ["0", "-3", "nan"])
    def test_deadline_rejected(self, bad):
        with pytest.raises(SystemExit, match="--deadline must be a positive"):
            main(
                [
                    "robustness", "--radix", "16", "--trials", "1",
                    "--deadline", bad, "--no-journal",
                ]
            )

    @pytest.mark.parametrize("bad", ["0", "-1", "nan"])
    def test_timeout_rejected(self, bad):
        with pytest.raises(SystemExit, match="--timeout must be a positive"):
            main(
                [
                    "compare", "--radix", "16", "--trials", "1",
                    "--timeout", bad, "--no-journal",
                ]
            )

    def test_error_message_suggests_the_fix(self):
        with pytest.raises(SystemExit, match="drop the flag"):
            main(
                [
                    "robustness", "--radix", "16", "--trials", "1",
                    "--deadline", "-1", "--no-journal",
                ]
            )


class TestDemandValidation:
    """Satellite: _load_demand rejects bad files with one actionable line."""

    def _run_schedule(self, path):
        return main(["schedule", str(path)])

    def test_rejects_nan(self, tmp_path):
        bad = tmp_path / "bad.npy"
        demand = np.ones((8, 8))
        demand[2, 3] = np.nan
        np.save(bad, demand)
        with pytest.raises(SystemExit, match="invalid demand file.*bad.npy"):
            self._run_schedule(bad)

    def test_rejects_negative(self, tmp_path):
        bad = tmp_path / "neg.csv"
        demand = np.ones((4, 4))
        demand[0, 0] = -1.0
        np.savetxt(bad, demand, delimiter=",")
        with pytest.raises(SystemExit, match="invalid demand file"):
            self._run_schedule(bad)

    def test_rejects_non_square(self, tmp_path):
        bad = tmp_path / "rect.npy"
        np.save(bad, np.ones((4, 6)))
        with pytest.raises(SystemExit, match="invalid demand file"):
            self._run_schedule(bad)

    def test_rejects_unreadable_file(self, tmp_path):
        bad = tmp_path / "garbage.npy"
        bad.write_bytes(b"not a numpy file at all")
        with pytest.raises(SystemExit, match="cannot read demand file"):
            self._run_schedule(bad)

    def test_error_message_suggests_the_fix(self, tmp_path):
        bad = tmp_path / "bad.npy"
        np.save(bad, np.full((4, 4), np.inf))
        with pytest.raises(SystemExit, match="python -m repro workload"):
            self._run_schedule(bad)


class TestSweepCommand:
    """Tentpole: journaled resumable sweeps via the CLI."""

    def test_compare_writes_journal_and_rerun_skips(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "compare", "--radix", "16", "--trials", "2",
            "--journal", str(journal), "--isolation", "inline",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert journal.exists()

        # Re-running the identical command resumes: no re-execution, same
        # table, and the journal does not grow.
        size = journal.stat().st_size
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "already journaled" in second.err
        assert second.out == first.out
        assert journal.stat().st_size == size

    def test_sweep_resume_finishes_interrupted_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "sweep", "compare", "--radix", "16", "--trials", "2",
            "--journal", str(journal), "--isolation", "inline",
        ]
        assert main(argv) == 0
        table = capsys.readouterr().out

        # Drop the last trial record to model a mid-sweep kill.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")
        assert main(["sweep", "--resume", str(journal), "--isolation", "inline"]) == 0
        resumed = capsys.readouterr()
        assert "1 trials restored, 1 executed now" in resumed.err

        # Bit-identical on everything except the wall-clock scheduler-time
        # row (host timing, not experiment output).
        def deterministic(text):
            return [ln for ln in text.splitlines() if "scheduler time" not in ln]

        assert deterministic(resumed.out) == deterministic(table)

    def test_failing_trial_quarantined_and_sweep_survives(self, tmp_path, capsys, monkeypatch):
        # Make one trial of the error sweep blow up inside the worker; the
        # sweep must finish, aggregate over the survivors, and quarantine
        # exactly the failing trial.
        import repro.analysis.robustness as robustness

        real_error_trial = robustness.error_trial

        def sabotaged(*, error=0.0, **kwargs):
            if error > 0:
                raise RuntimeError("sabotaged trial")
            return real_error_trial(error=error, **kwargs)

        monkeypatch.setattr(robustness, "error_trial", sabotaged)
        journal = tmp_path / "run.jsonl"
        code = main(
            [
                "robustness", "--radix", "16", "--trials", "1",
                "--fault-rates", "0", "--error-rates", "0,0.3",
                "--journal", str(journal), "--isolation", "inline",
                "--retries", "1", "--retry-base-delay", "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "1 trial(s) failed" in captured.err
        assert "sabotaged trial" in captured.err
        assert "point omitted" in captured.err
        # The fault table and the surviving error point still printed.
        assert "hardware fault sweep" in captured.out

        failed_dir = tmp_path / "run.jsonl.failed"
        archives = list(failed_dir.glob("*.npz"))
        assert len(archives) == 1
        archive = np.load(archives[0])
        assert archive["demand"].shape == (16, 16)

    def test_no_journal_flag_keeps_disk_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        assert main(
            ["compare", "--radix", "16", "--trials", "1", "--no-journal",
             "--isolation", "inline"]
        ) == 0
        assert not (tmp_path / "runs").exists()

    def test_sweep_resume_missing_journal_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["sweep", "--resume", str(tmp_path / "nope.jsonl")])

    def test_sweep_without_subcommand_or_resume_rejected(self):
        with pytest.raises(SystemExit, match="sub-command"):
            main(["sweep"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "nope"])


class TestFigureCommand:
    def test_fig5_tiny(self, capsys):
        code = main(["figure", "fig5", "--radices", "16", "--trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "h total (ms)" in out and "cp configs" in out

    def test_fig6_utilization_columns(self, capsys):
        code = main(["figure", "fig6", "--radices", "16", "--trials", "1"])
        assert code == 0
        assert "OCS fraction" in capsys.readouterr().out

    def test_fig11_has_k_column(self, capsys):
        code = main(["figure", "fig11", "--radices", "16", "--trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| k |" in out or " k |" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
