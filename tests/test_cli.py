"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestCompareCommand:
    def test_compare_skewed(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "skewed",
                "--radix",
                "16",
                "--trials",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "h-Switch" in out and "cp-Switch" in out
        assert "completion total (ms)" in out

    def test_compare_eclipse_slow(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "skewed",
                "--scheduler",
                "eclipse",
                "--ocs",
                "slow",
                "--radix",
                "16",
                "--trials",
                "1",
            ]
        )
        assert code == 0
        assert "OCS fraction" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_writes_npy(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        code = main(
            ["workload", "--workload", "typical", "--radix", "16", "--out", str(out)]
        )
        assert code == 0
        demand = np.load(out)
        assert demand.shape == (16, 16)
        assert demand.sum() > 0

    def test_writes_csv(self, tmp_path):
        out = tmp_path / "demand.csv"
        assert main(["workload", "--radix", "8", "--out", str(out)]) == 0
        demand = np.loadtxt(out, delimiter=",")
        assert demand.shape == (8, 8)

    def test_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["workload", "--radix", "8", "--out", str(tmp_path / "demand.txt")])


class TestScheduleCommand:
    def test_schedule_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        main(["workload", "--workload", "skewed", "--radix", "16", "--out", str(out)])
        capsys.readouterr()
        code = main(["schedule", str(out), "--switch", "cp"])
        assert code == 0
        text = capsys.readouterr().out
        assert "cp-Switch / solstice" in text
        assert "completion" in text
        assert "o2m@" in text or "m2o@" in text

    def test_schedule_h_switch(self, tmp_path, capsys):
        out = tmp_path / "demand.npy"
        main(["workload", "--workload", "skewed", "--radix", "16", "--out", str(out)])
        capsys.readouterr()
        assert main(["schedule", str(out), "--switch", "h"]) == 0
        assert "h-Switch / solstice" in capsys.readouterr().out


class TestRobustnessCommand:
    def test_fault_and_error_sweeps(self, capsys):
        code = main(
            [
                "robustness",
                "--radix",
                "16",
                "--trials",
                "1",
                "--fault-rates",
                "0,0.5",
                "--error-rates",
                "0,0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hardware fault sweep" in out
        assert "released (Mb)" in out
        assert "h/cp" in out
        assert "estimation-error sweep" in out

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            main(["robustness", "--radix", "16", "--trials", "1", "--fault-rates", "2"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "nope"])


class TestFigureCommand:
    def test_fig5_tiny(self, capsys):
        code = main(["figure", "fig5", "--radices", "16", "--trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "h total (ms)" in out and "cp configs" in out

    def test_fig6_utilization_columns(self, capsys):
        code = main(["figure", "fig6", "--radices", "16", "--trials", "1"])
        assert code == 0
        assert "OCS fraction" in capsys.readouterr().out

    def test_fig11_has_k_column(self, capsys):
        code = main(["figure", "fig11", "--radices", "16", "--trials", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "| k |" in out or " k |" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
