"""Tests for the fluid event-driven engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cpsched import cpsched
from repro.sim.engine import CompositeService, FluidEngine
from repro.switch.params import SwitchParams, fast_ocs_params


def make_engine(demand, n=4, **params_kwargs) -> FluidEngine:
    params = SwitchParams(n_ports=n, **params_kwargs)
    return FluidEngine(np.asarray(demand, dtype=float), params)


class TestEpsOnlyService:
    def test_single_entry_drains_at_eps_rate(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 20.0
        engine = make_engine(demand)
        engine.run_phase(None)
        # 20 Mb at Ce = 10 Mb/ms -> 2 ms.
        assert engine.finish_times[0, 1] == pytest.approx(2.0)
        assert engine.residual_total() == 0.0

    def test_fanout_row_shares_input(self):
        demand = np.zeros((4, 4))
        demand[0, 1:4] = 10.0
        engine = make_engine(demand)
        engine.run_phase(None)
        # 3 flows share Ce=10 -> 10/(10/3) = 3 ms each.
        for j in (1, 2, 3):
            assert engine.finish_times[0, j] == pytest.approx(3.0)

    def test_rates_rise_after_drain(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 5.0
        demand[0, 2] = 10.0
        engine = make_engine(demand)
        engine.run_phase(None)
        # Phase 1: both at 5 Mb/ms; entry (0,1) done at 1 ms.
        # Phase 2: (0,2) finishes its 5 Mb at full 10 Mb/ms: 1 + 0.5 ms.
        assert engine.finish_times[0, 1] == pytest.approx(1.0)
        assert engine.finish_times[0, 2] == pytest.approx(1.5)


class TestCircuitService:
    def test_circuit_drains_at_ocs_rate(self):
        demand = np.zeros((4, 4))
        demand[1, 2] = 50.0
        engine = make_engine(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[1, 2] = 1
        engine.run_phase(1.0, circuits=circuits)
        # 50 Mb at Co = 100 Mb/ms -> 0.5 ms.
        assert engine.finish_times[1, 2] == pytest.approx(0.5)

    def test_eps_does_not_double_serve_circuit_entries(self):
        demand = np.zeros((4, 4))
        demand[1, 2] = 110.0
        engine = make_engine(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[1, 2] = 1
        engine.run_phase(1.0, circuits=circuits)
        # Exactly 100 Mb through the circuit, none through EPS.
        assert engine.regular[1, 2] == pytest.approx(10.0)
        assert engine.served_eps == pytest.approx(0.0)
        assert engine.served_ocs_direct == pytest.approx(100.0)

    def test_eps_serves_other_entries_during_circuit(self):
        demand = np.zeros((4, 4))
        demand[1, 2] = 100.0
        demand[0, 3] = 5.0
        engine = make_engine(demand)
        circuits = np.zeros((4, 4), dtype=np.int8)
        circuits[1, 2] = 1
        engine.run_phase(1.0, circuits=circuits)
        assert engine.finish_times[0, 3] == pytest.approx(0.5)  # 5 Mb at Ce

    def test_reconfig_phase_is_eps_only(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = 1.0
        engine = make_engine(demand)
        engine.run_phase(0.2)  # no circuits: a reconfiguration gap
        assert engine.served_ocs_direct == 0.0
        assert engine.finish_times[0, 1] == pytest.approx(0.1)


class TestCompositeService:
    def test_o2m_path_matches_cpsched(self):
        n = 6
        demand = np.zeros((n, n))
        demand[0, 1:6] = np.array([3.0, 5.0, 2.0, 4.0, 1.0])
        params = fast_ocs_params(n)
        engine = FluidEngine(demand, params)
        engine.assign_composite(demand.copy())
        duration = 0.25
        engine.run_phase(duration, composites=[CompositeService("o2m", 0)])
        expected = cpsched(demand[0, :], duration, params.ocs_rate, params.eps_rate)
        np.testing.assert_allclose(engine.composite[0, :], expected, atol=1e-9)

    def test_m2o_path_matches_cpsched(self):
        n = 6
        demand = np.zeros((n, n))
        demand[0:5, 5] = np.array([3.0, 5.0, 2.0, 4.0, 1.0])
        params = fast_ocs_params(n)
        engine = FluidEngine(demand, params)
        engine.assign_composite(demand.copy())
        duration = 0.3
        engine.run_phase(duration, composites=[CompositeService("m2o", 5)])
        expected = cpsched(demand[:, 5], duration, params.ocs_rate, params.eps_rate)
        np.testing.assert_allclose(engine.composite[:, 5], expected, atol=1e-9)

    def test_eps_reservation_slows_regular_traffic(self):
        # Composite path to destination 1 at Ce* reserves the whole EPS
        # output link; a regular flow to 1 stalls until the phase ends.
        n = 4
        demand = np.zeros((n, n))
        demand[0, 1] = 100.0  # composite (via lane assignment below)
        demand[2, 1] = 1.0  # regular flow to the same output
        params = SwitchParams(n_ports=n)
        engine = FluidEngine(demand, params)
        filtered = np.zeros((n, n))
        filtered[0, 1] = 100.0
        engine.assign_composite(filtered)
        engine.run_phase(0.5, composites=[CompositeService("o2m", 0)])
        # Composite rate to port 1 is min(Ce*, Co/1) = 10 = Ce: no EPS
        # capacity remains for the regular flow.
        assert engine.regular[2, 1] == pytest.approx(1.0)
        engine.merge_composite_into_regular()
        engine.run_phase(None)
        assert engine.residual_total() == 0.0

    def test_budget_caps_composite_rate(self):
        n = 4
        demand = np.zeros((n, n))
        demand[0, 1] = 10.0
        params = SwitchParams(n_ports=n, eps_budget=5.0)
        engine = FluidEngine(demand, params)
        engine.assign_composite(demand.copy())
        engine.run_phase(1.0, composites=[CompositeService("o2m", 0)])
        # Rate = min(Ce*=5, Co/1) = 5 -> 5 Mb left of 10.
        assert engine.composite[0, 1] == pytest.approx(5.0)

    def test_lane_mask_restricts_service(self):
        n = 4
        demand = np.zeros((n, n))
        demand[0, 1] = 4.0
        demand[0, 2] = 4.0
        params = fast_ocs_params(n)
        engine = FluidEngine(demand, params)
        engine.assign_composite(demand.copy())
        lane = np.zeros(n, dtype=bool)
        lane[1] = True
        engine.run_phase(0.2, composites=[CompositeService("o2m", 0, lane_mask=lane)])
        assert engine.composite[0, 1] == pytest.approx(2.0)
        assert engine.composite[0, 2] == pytest.approx(4.0)


class TestLifecycle:
    def test_assign_composite_after_start_rejected(self):
        demand = np.ones((3, 3))
        engine = make_engine(demand, n=3)
        engine.run_phase(0.1)
        with pytest.raises(RuntimeError):
            engine.assign_composite(np.zeros((3, 3)))

    def test_assign_composite_exceeding_demand_rejected(self):
        engine = make_engine(np.ones((3, 3)), n=3)
        with pytest.raises(ValueError):
            engine.assign_composite(np.full((3, 3), 2.0))

    def test_result_requires_full_drain(self):
        engine = make_engine(np.ones((3, 3)), n=3)
        with pytest.raises(RuntimeError):
            engine.result(n_configs=0, makespan=0.0)

    def test_conservation_across_mechanisms(self):
        rng = np.random.default_rng(3)
        n = 6
        demand = rng.uniform(0, 5, (n, n)) * (rng.random((n, n)) < 0.5)
        params = fast_ocs_params(n)
        engine = FluidEngine(demand, params)
        filtered = np.where(demand < 2.0, demand, 0.0)
        engine.assign_composite(filtered)
        circuits = np.zeros((n, n), dtype=np.int8)
        circuits[0, 0] = 1
        engine.run_phase(0.05, circuits=circuits, composites=[CompositeService("o2m", 1)])
        engine.merge_composite_into_regular()
        engine.run_phase(None)
        result = engine.result(n_configs=1, makespan=0.07)
        result.check_conservation()
        delivered = result.served_eps + result.served_composite + result.served_ocs_direct
        assert delivered == pytest.approx(demand.sum(), rel=1e-6)

    def test_segments_are_contiguous(self):
        engine = make_engine(np.ones((3, 3)), n=3)
        engine.run_phase(None)
        for before, after in zip(engine.segments, engine.segments[1:]):
            assert after.start == pytest.approx(before.end)
