"""Tests for the coflow abstraction (§1 taxonomy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.schedule import Schedule
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.workloads.coflows import (
    Coflow,
    CoflowMixWorkload,
    CoflowSet,
    CoflowType,
    Flow,
)


class TestFlow:
    def test_valid(self):
        flow = Flow(0, 3, 2.0)
        assert flow.volume == 2.0

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Flow(1, 1, 2.0)

    def test_rejects_nonpositive_volume(self):
        with pytest.raises(ValueError):
            Flow(0, 1, 0.0)


class TestCoflowConstructors:
    def test_one_to_one(self):
        coflow = Coflow.one_to_one(0, 5, 100.0)
        assert coflow.kind is CoflowType.ONE_TO_ONE
        assert coflow.volume == 100.0
        assert not coflow.is_skewed()

    def test_one_to_many_scalar_volume(self):
        coflow = Coflow.one_to_many(0, [1, 2, 3], 2.0)
        assert coflow.kind is CoflowType.ONE_TO_MANY
        assert coflow.volume == pytest.approx(6.0)
        assert coflow.is_skewed()
        assert coflow.ports == {0, 1, 2, 3}

    def test_one_to_many_vector_volume(self):
        coflow = Coflow.one_to_many(0, [1, 2], [1.0, 3.0])
        assert coflow.volume == pytest.approx(4.0)

    def test_volume_length_mismatch(self):
        with pytest.raises(ValueError):
            Coflow.one_to_many(0, [1, 2], [1.0])

    def test_many_to_one(self):
        coflow = Coflow.many_to_one([1, 2, 3], 0, 1.5)
        assert coflow.kind is CoflowType.MANY_TO_ONE
        assert coflow.is_skewed()
        mask = coflow.entry_mask(4)
        assert mask[:, 0].sum() == 3

    def test_many_to_many_excludes_self_pairs(self):
        coflow = Coflow.many_to_many([0, 1], [0, 1], 1.0)
        assert len(coflow.flows) == 2  # (0,1) and (1,0), no self-loops
        assert not coflow.is_skewed()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Coflow(flows=(), kind=CoflowType.ONE_TO_ONE)

    def test_names_unique_by_default(self):
        a = Coflow.one_to_one(0, 1, 1.0)
        b = Coflow.one_to_one(0, 1, 1.0)
        assert a.name != b.name


class TestCoflowSet:
    def test_demand_sums_overlapping_flows(self):
        cs = CoflowSet(4)
        cs.add(Coflow.one_to_one(0, 1, 2.0))
        cs.add(Coflow.one_to_many(0, [1, 2], 1.0))
        demand = cs.demand()
        assert demand[0, 1] == pytest.approx(3.0)
        assert demand[0, 2] == pytest.approx(1.0)

    def test_rejects_out_of_range_ports(self):
        cs = CoflowSet(4)
        with pytest.raises(ValueError):
            cs.add(Coflow.one_to_one(0, 7, 1.0))

    def test_to_spec_masks(self):
        cs = CoflowSet(6)
        cs.add(Coflow.one_to_many(0, [1, 2, 3], 1.0))
        cs.add(Coflow.many_to_one([1, 2], 5, 1.0))
        cs.add(Coflow.one_to_one(3, 4, 50.0))
        spec = cs.to_spec()
        assert spec.o2m_mask.sum() == 3
        assert spec.m2o_mask.sum() == 2
        assert spec.o2m_senders == (0,)
        assert spec.m2o_receivers == (5,)
        assert not spec.skewed_mask[3, 4]

    def test_completion_times_per_coflow(self):
        params = fast_ocs_params(8)
        cs = CoflowSet(8)
        cs.add(Coflow.one_to_many(0, list(range(1, 8)), 1.2, name="fanout"))
        cs.add(Coflow.one_to_one(1, 2, 30.0, name="bulk"))
        demand = cs.demand()
        schedule = SolsticeScheduler().schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params)
        times = cs.completion_times(result)
        assert set(times) == {"fanout", "bulk"}
        assert all(t > 0 for t in times.values())
        assert max(times.values()) == pytest.approx(result.completion_time)

    def test_average_completion(self):
        params = fast_ocs_params(8)
        cs = CoflowSet(8)
        cs.add(Coflow.one_to_one(0, 1, 10.0))
        demand = cs.demand()
        result = simulate_hybrid(
            demand, Schedule(entries=(), reconfig_delay=params.reconfig_delay), params
        )
        assert cs.average_completion(result) == pytest.approx(1.0)

    def test_empty_average(self):
        params = fast_ocs_params(4)
        cs = CoflowSet(4)
        result = simulate_hybrid(
            np.zeros((4, 4)),
            Schedule(entries=(), reconfig_delay=params.reconfig_delay),
            params,
        )
        assert cs.average_completion(result) == 0.0


class TestCoflowMixWorkload:
    def test_builds_requested_mix(self):
        workload = CoflowMixWorkload(
            n_many_to_many=2, n_one_to_one=3, n_one_to_many=1, n_many_to_one=1
        )
        cs = workload.build(32, np.random.default_rng(0))
        kinds = [c.kind for c in cs]
        assert kinds.count(CoflowType.MANY_TO_MANY) == 2
        assert kinds.count(CoflowType.ONE_TO_ONE) == 3
        assert kinds.count(CoflowType.ONE_TO_MANY) == 1
        assert kinds.count(CoflowType.MANY_TO_ONE) == 1

    def test_workload_protocol(self):
        workload = CoflowMixWorkload()
        spec = workload.generate(32, np.random.default_rng(1))
        assert spec.demand.shape == (32, 32)
        assert spec.skewed_mask.any()

    def test_cp_improves_skewed_coflows_in_mix(self):
        params = fast_ocs_params(32)
        workload = CoflowMixWorkload(n_one_to_one=1)
        cs = workload.build(32, np.random.default_rng(3))
        demand = cs.demand()
        h_res = simulate_hybrid(
            demand, SolsticeScheduler().schedule(demand, params), params
        )
        cp_sched = CpSwitchScheduler(SolsticeScheduler()).schedule(demand, params)
        cp_res = simulate_cp(demand, cp_sched, params)
        h_times = cs.completion_times(h_res)
        cp_times = cs.completion_times(cp_res)
        skewed = [c.name for c in cs if c.is_skewed()]
        assert skewed
        h_skew = float(np.mean([h_times[name] for name in skewed]))
        cp_skew = float(np.mean([cp_times[name] for name in skewed]))
        assert cp_skew < h_skew


class TestBurstyCoflowWorkload:
    def _workload(self, **kw):
        from repro.workloads.coflows import BurstyCoflowWorkload

        return BurstyCoflowWorkload(base=CoflowMixWorkload(), **kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._workload(period=0)
        with pytest.raises(ValueError):
            self._workload(period=4, on_epochs=0)
        with pytest.raises(ValueError):
            self._workload(period=4, on_epochs=5)

    def test_time_averaged_load_matches_base(self):
        # Each flow is ON on_epochs/period of the time at x(period/on_epochs)
        # volume, so summing one full period with a fixed phase draw must
        # reproduce the base workload's total exactly.
        workload = self._workload(period=4, on_epochs=2)
        rngs = [np.random.default_rng(7) for _ in range(4)]
        totals = [
            workload.build(16, rngs[epoch], epoch=epoch).demand().sum()
            for epoch in range(4)
        ]
        base_total = CoflowMixWorkload().build(16, np.random.default_rng(7)).demand().sum()
        assert np.mean(totals) == pytest.approx(base_total)

    @staticmethod
    def _signature(coflow):
        """Structural identity (auto-names carry a global counter)."""
        return (coflow.kind, frozenset((f.source, f.destination) for f in coflow.flows))

    def test_epochs_only_reveal_base_flows(self):
        # Every flow any epoch shows is a (scaled) flow of the base draw.
        workload = self._workload(period=3, on_epochs=1)
        base = CoflowMixWorkload().build(16, np.random.default_rng(5))
        base_flows = {
            (f.source, f.destination) for c in base for f in c.flows
        }
        for epoch in range(3):
            bursty = workload.build(16, np.random.default_rng(5), epoch=epoch)
            flows = {(f.source, f.destination) for c in bursty for f in c.flows}
            assert flows <= base_flows

    def test_always_on_matches_base(self):
        # period == on_epochs means always ON: nothing is dropped and the
        # set matches the base coflow-for-coflow.
        workload = self._workload(period=2, on_epochs=2)
        bursty = workload.build(16, np.random.default_rng(11), epoch=0)
        base = CoflowMixWorkload().build(16, np.random.default_rng(11))
        assert {self._signature(c) for c in bursty} == {
            self._signature(c) for c in base
        }
        np.testing.assert_allclose(bursty.demand(), base.demand())

    def test_on_volumes_scaled_up(self):
        workload = self._workload(period=4, on_epochs=1)
        bursty = workload.build(16, np.random.default_rng(2), epoch=0)
        base = CoflowMixWorkload().build(16, np.random.default_rng(2))
        base_by_kind = {}
        for coflow in base:
            for f in coflow.flows:
                base_by_kind[(coflow.kind, f.source, f.destination)] = f.volume
        for coflow in bursty:
            for flow in coflow.flows:
                assert flow.volume == pytest.approx(
                    4.0 * base_by_kind[(coflow.kind, flow.source, flow.destination)]
                )

    def test_generate_protocol_adapter(self):
        spec = self._workload(period=4, on_epochs=2).generate(
            16, np.random.default_rng(9)
        )
        assert spec.demand.shape == (16, 16)
        assert (spec.demand >= 0).all()

    def test_deterministic_per_rng(self):
        workload = self._workload(period=4, on_epochs=2)
        a = workload.build(16, np.random.default_rng(4), epoch=1)
        b = workload.build(16, np.random.default_rng(4), epoch=1)
        np.testing.assert_array_equal(a.demand(), b.demand())
