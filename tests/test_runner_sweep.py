"""Tests for the crash-tolerant sweep runner (isolation, retry, resume)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runner import (
    RetryPolicy,
    RunJournal,
    SweepConfig,
    SweepRunner,
    TrialSpec,
    run_in_subprocess,
    specs_from_journal,
)

_OK = "tests._runner_trials:ok_trial"
_FAIL = "tests._runner_trials:failing_trial"
_FLAKY = "tests._runner_trials:flaky_trial"
_SLEEPY = "tests._runner_trials:sleepy_trial"
_CRASH = "tests._runner_trials:crashing_trial"
_DEMAND = "tests._runner_trials:demand_for"


def _spec(fn: str, trial: int = 0, **kwargs) -> TrialSpec:
    return TrialSpec(
        experiment="unit",
        key=f"unit:{trial:04d}",
        fn=fn,
        kwargs={"trial": trial, **kwargs},
        demand_fn=_DEMAND,
    )


def _config(**overrides) -> SweepConfig:
    defaults = dict(
        isolation="inline",
        retry=RetryPolicy(max_attempts=1),
        sleep=lambda _s: None,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=3.0, jitter=0.0)
        assert policy.delays() == pytest.approx([1.0, 2.0, 3.0, 3.0])

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(max_attempts=4, jitter=0.5, seed=7).delays()
        b = RetryPolicy(max_attempts=4, jitter=0.5, seed=7).delays()
        assert a == b

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestIsolation:
    def test_subprocess_returns_payload(self):
        outcome = run_in_subprocess(_spec(_OK, value=3.0))
        assert outcome.ok
        assert outcome.payload == {"trial": 0, "value": 3.0}

    def test_subprocess_captures_exception(self):
        outcome = run_in_subprocess(_spec(_FAIL, message="kaput"))
        assert outcome.status == "error"
        assert outcome.error["type"] == "RuntimeError"
        assert "kaput" in outcome.error["message"]
        assert "RuntimeError" in outcome.error["traceback"]

    def test_subprocess_timeout_kills_the_worker(self):
        outcome = run_in_subprocess(_spec(_SLEEPY, seconds=60.0), timeout_s=0.3)
        assert outcome.status == "timeout"
        assert outcome.error["type"] == "TrialTimeout"
        assert outcome.elapsed_s < 30.0

    def test_subprocess_detects_silent_death(self):
        outcome = run_in_subprocess(_spec(_CRASH))
        assert outcome.status == "crashed"
        assert outcome.error["type"] == "WorkerDied"
        assert "17" in outcome.error["message"]


class TestSweepRunner:
    def test_all_trials_succeed(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = SweepRunner(journal, _config())
        specs = [_spec(_OK, trial=t) for t in range(3)]
        result = runner.run(specs, sweep_name="unit")
        assert set(result.completed) == {s.key for s in specs}
        assert result.executed == {s.key for s in specs}
        assert not result.failures

    def test_failing_trial_is_quarantined_and_sweep_survives(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = SweepRunner(journal, _config(retry=RetryPolicy(max_attempts=2)))
        specs = [_spec(_OK, trial=0), _spec(_FAIL, trial=1, seed=42), _spec(_OK, trial=2)]
        result = runner.run(specs, sweep_name="unit")

        # Exactly the bad trial failed; the sweep aggregated over survivors.
        assert set(result.completed) == {"unit:0000", "unit:0002"}
        assert [f.key for f in result.failures] == ["unit:0001"]
        failure = result.failures[0]
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2
        assert failure.seed == 42
        assert "RuntimeError" in failure.traceback

        # The quarantined .npz replays the trial: demand + kwargs + error.
        archive = np.load(failure.quarantine_path)
        np.testing.assert_array_equal(archive["demand"], np.full((4, 4), 2.0))
        kwargs = json.loads(str(archive["kwargs_json"]))
        assert kwargs["trial"] == 1
        assert failure.demand_fingerprint is not None

        # The failure is journaled, so a resume restores it too.
        resumed = SweepRunner(RunJournal(journal.path), _config()).run(
            specs, sweep_name="unit"
        )
        assert [f.key for f in resumed.failures] == ["unit:0001", "unit:0001"]

    def test_flaky_trial_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "marker"
        spec = TrialSpec(
            experiment="unit",
            key="unit:0000",
            fn=_FLAKY,
            kwargs={"trial": 0, "marker": str(marker)},
        )
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = SweepRunner(journal, _config(retry=RetryPolicy(max_attempts=3)))
        result = runner.run([spec], sweep_name="unit")
        assert result.completed["unit:0000"] == {"trial": 0, "recovered": True}
        assert journal.trial_records()[0]["attempts"] == 2

    def test_timeout_trial_fails_structurally(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = SweepRunner(
            journal,
            _config(isolation="subprocess", timeout_s=0.3, retry=RetryPolicy(max_attempts=1)),
        )
        result = runner.run([_spec(_SLEEPY, seconds=60.0)], sweep_name="unit")
        assert [f.error_type for f in result.failures] == ["TrialTimeout"]

    def test_resume_skips_completed_keys(self, tmp_path):
        path = tmp_path / "run.jsonl"
        specs = [_spec(_OK, trial=t) for t in range(4)]
        first = SweepRunner(RunJournal(path), _config()).run(specs, sweep_name="unit")

        # Chop the journal down to the header + first two trial records to
        # model a mid-sweep kill, then resume.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        journal = RunJournal(path)
        resumed = SweepRunner(journal, _config()).run(specs, sweep_name="unit")

        assert resumed.skipped == {"unit:0000", "unit:0001"}
        assert resumed.executed == {"unit:0002", "unit:0003"}
        assert resumed.completed == first.completed

        # A second resume re-executes nothing at all.
        again = SweepRunner(RunJournal(path), _config()).run(specs, sweep_name="unit")
        assert again.executed == set()
        assert again.completed == first.completed

    def test_duplicate_keys_rejected(self):
        runner = SweepRunner(RunJournal(), _config())
        with pytest.raises(ValueError, match="duplicate"):
            runner.run([_spec(_OK, trial=0), _spec(_OK, trial=0)], sweep_name="unit")

    def test_specs_round_trip_through_the_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        specs = [_spec(_OK, trial=t) for t in range(2)]
        SweepRunner(RunJournal(path), _config()).run(specs, sweep_name="unit")
        assert specs_from_journal(RunJournal(path)) == specs

    def test_specs_from_headerless_journal_rejected(self):
        with pytest.raises(ValueError, match="header"):
            specs_from_journal(RunJournal())

    def test_backoff_sleeps_between_attempts(self, tmp_path):
        sleeps: "list[float]" = []
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = SweepRunner(
            journal,
            _config(
                retry=RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0),
                sleep=sleeps.append,
            ),
        )
        runner.run([_spec(_FAIL)], sweep_name="unit")
        assert sleeps == pytest.approx([0.5, 1.0])
