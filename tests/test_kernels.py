"""Kernel-vs-oracle bit-identity suite for the ``REPRO_KERNELS`` backends.

The kernel layer (:mod:`repro.matching.kernels`, the ``BigSliceState``
warm-start path, the Eclipse bound-pruned greedy) is only admissible if it
is **bit-identical** to the pure-Python/seed oracles it replaces — not
approximately equal: the repo's regression gates compare schedules and
simulations entry-for-entry.  This suite fuzzes that contract with
hypothesis over random demands and fault plans, plus targeted regressions
for the three bugfixes that rode along with the kernel work:

* the recursive Hopcroft–Karp DFS blowing Python's recursion limit on deep
  augmenting paths (now an explicit-stack walk);
* ``is_equal_sum`` spuriously rejecting large-φ stuffed matrices whose
  float error is a few ulps of φ (now a relative tolerance);
* tied-slack ordering in QuickStuff depending on numpy's unstable introsort
  (now ``kind="stable"`` everywhere ordering feeds arithmetic).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.faults import FaultPlan
from repro.hybrid.eclipse.scheduler import EclipseScheduler
from repro.hybrid.solstice.scheduler import SolsticeScheduler
from repro.hybrid.solstice.slicing import BigSliceState, big_slice
from repro.hybrid.solstice.stuffing import quick_stuff_diagnosed
from repro.matching import kernels
from repro.matching.birkhoff import birkhoff_von_neumann, is_equal_sum
from repro.matching.hopcroft_karp import maximum_matching_mask
from repro.sim import simulate_hybrid
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL

PARAMS = SwitchParams(n_ports=6, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def demand_matrices(max_n: int = 7, max_value: float = 30.0):
    """Square non-negative demand matrices with some sparsity."""
    return st.integers(min_value=2, max_value=max_n).flatmap(
        lambda n: st.tuples(
            arrays(
                np.float64,
                (n, n),
                elements=st.floats(0.0, max_value, allow_nan=False, width=32),
            ),
            arrays(np.bool_, (n, n)),
        ).map(lambda pair: pair[0] * pair[1])
    )


def masks(max_n: int = 8):
    """Square boolean biadjacency masks."""
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: arrays(np.bool_, (n, n))
    )


def fault_plans():
    """Arbitrary valid fault plans, including the all-zero one."""
    rates = st.floats(0.0, 1.0, allow_nan=False)
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**16),
        reconfig_failure_rate=rates,
        reconfig_straggle_rate=rates,
        straggle_factor=st.floats(1.0, 8.0, allow_nan=False),
        circuit_failure_rate=rates,
        eps_degradation_rate=rates,
        eps_degradation_factor=st.floats(0.1, 1.0, allow_nan=False),
    )


def _schedules_equal(a, b) -> bool:
    return len(a) == len(b) and all(
        ea.duration == eb.duration
        and np.array_equal(ea.permutation, eb.permutation)
        for ea, eb in zip(a, b)
    )


def _params_for(n: int) -> SwitchParams:
    return SwitchParams(
        n_ports=n, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02
    )


# ---------------------------------------------------------------------- #
# QuickStuff
# ---------------------------------------------------------------------- #


class TestQuickStuffIdentity:
    @given(demand=demand_matrices())
    @settings(max_examples=60, deadline=None)
    def test_kernel_matches_oracle_bitwise(self, demand):
        with kernels.use_backend(kernels.ORACLE):
            oracle, oracle_diag = quick_stuff_diagnosed(demand)
        with kernels.use_backend(kernels.KERNEL):
            kernel, kernel_diag = quick_stuff_diagnosed(demand)
        assert np.array_equal(oracle, kernel)
        assert (oracle_diag is None) == (kernel_diag is None)

    def test_tied_slack_ordering_is_deterministic(self):
        # Regression: every load duplicated, so pass 1's value sort and
        # pass 2's slack sorts are all ties.  The unstable introsort used
        # to order these differently across numpy builds; kind="stable"
        # pins one order, which both backends must share exactly.
        demand = np.zeros((6, 6))
        for i, j in ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)):
            demand[i, j] = 7.0
        demand[0, 3] = demand[1, 4] = demand[2, 5] = 7.0
        with kernels.use_backend(kernels.ORACLE):
            first, _ = quick_stuff_diagnosed(demand)
            second, _ = quick_stuff_diagnosed(demand)
        with kernels.use_backend(kernels.KERNEL):
            third, _ = quick_stuff_diagnosed(demand)
        assert np.array_equal(first, second)
        assert np.array_equal(first, third)
        phi = max(demand.sum(axis=0).max(), demand.sum(axis=1).max())
        np.testing.assert_allclose(first.sum(axis=0), phi, rtol=1e-12)
        np.testing.assert_allclose(first.sum(axis=1), phi, rtol=1e-12)


# ---------------------------------------------------------------------- #
# maximum matching
# ---------------------------------------------------------------------- #


class TestMatchingIdentity:
    @given(mask=masks())
    @settings(max_examples=80, deadline=None)
    def test_recycled_csr_matches_plain_scipy(self, mask):
        if not kernels.SCIPY_AVAILABLE:
            pytest.skip("scipy not available")
        plain_match, plain_size = maximum_matching_mask(mask)
        fast_match, fast_size = kernels.scipy_matching_mask(mask)
        assert plain_size == fast_size
        assert np.array_equal(plain_match, fast_match)

    @given(mask=masks())
    @settings(max_examples=80, deadline=None)
    def test_csr_direct_matches_mask_path(self, mask):
        if not kernels.SCIPY_AVAILABLE:
            pytest.skip("scipy not available")
        n = mask.shape[0]
        indices = np.flatnonzero(mask).astype(np.int32) % np.int32(n)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(mask.sum(axis=1, dtype=np.int32), out=indptr[1:])
        mask_match, mask_size = kernels.scipy_matching_mask(mask)
        csr_match, csr_size = kernels.scipy_matching_csr(indices, indptr, n)
        assert mask_size == csr_size
        assert np.array_equal(mask_match, csr_match)

    @given(mask=masks(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_cardinality_matches_pure_python(self, mask):
        # Matchings may legally differ between algorithms; their size may
        # not — feasibility verdicts hang off the cardinality alone.
        _, scipy_size = maximum_matching_mask(mask)
        _, python_size = maximum_matching_mask(mask, use_scipy=False)
        assert scipy_size == python_size

    @given(demand=demand_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_warm_matcher_verdicts_are_exact(self, demand):
        matrix = demand.copy()
        matcher = kernels.WarmMatcher(matrix)
        positive = np.unique(matrix[matrix > VOLUME_TOL])
        thresholds = list(positive[:: max(1, positive.size // 4)]) + [
            VOLUME_TOL,
            1e9,
        ]
        n = matrix.shape[0]
        for threshold in thresholds:
            threshold = float(threshold)
            expected = (
                maximum_matching_mask(matrix >= threshold)[1] == n
            )
            assert matcher.feasible(threshold) == expected

    def test_deep_augmenting_path_no_recursion_error(self):
        # Regression: rows 0..n-2 see columns {i, i+1}, row n-1 sees only
        # column 0 — the greedy first phase matches i -> i, and the last
        # row's augmenting path then rethreads the whole chain (length
        # ~2n).  The recursive DFS died on Python's 1000-frame limit here;
        # the explicit-stack version must find the perfect matching.
        n = 1500
        mask = np.zeros((n, n), dtype=bool)
        idx = np.arange(n - 1)
        mask[idx, idx] = True
        mask[idx, idx + 1] = True
        mask[n - 1, 0] = True
        match, size = maximum_matching_mask(mask, use_scipy=False)
        assert size == n
        assert np.array_equal(np.sort(match), np.arange(n))


# ---------------------------------------------------------------------- #
# BigSlice
# ---------------------------------------------------------------------- #


class TestBigSliceIdentity:
    @given(demand=demand_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_slicing_loop_bit_identity(self, demand):
        with kernels.use_backend(kernels.ORACLE):
            stuffed, _ = quick_stuff_diagnosed(demand)
        if stuffed.max(initial=0.0) <= VOLUME_TOL:
            return
        oracle = stuffed.copy()
        kernel = stuffed.copy()
        state = BigSliceState(kernel)
        n = stuffed.shape[0]
        rows = np.arange(n)
        for _ in range(n * n):
            if oracle.max(initial=0.0) <= VOLUME_TOL:
                break
            oracle_exc = kernel_exc = None
            try:
                o_threshold, o_perm = big_slice(oracle)
            except ValueError as exc:
                oracle_exc = str(exc)
            try:
                k_threshold, k_perm = big_slice(kernel, state=state)
            except ValueError as exc:
                kernel_exc = str(exc)
            # Exception parity: degraded matrices must degrade identically.
            assert oracle_exc == kernel_exc
            if oracle_exc is not None:
                break
            assert o_threshold == k_threshold
            assert np.array_equal(o_perm, k_perm)
            mask = o_perm.astype(bool)
            oracle[mask] = np.maximum(oracle[mask] - o_threshold, 0.0)
            cols = state.last_match
            kernel[rows, cols] = np.maximum(
                kernel[rows, cols] - k_threshold, 0.0
            )
            assert np.array_equal(oracle, kernel)


# ---------------------------------------------------------------------- #
# full schedulers, demands and fault plans
# ---------------------------------------------------------------------- #


class TestSchedulerIdentity:
    @given(demand=demand_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_solstice_schedule_bit_identity(self, demand):
        params = _params_for(demand.shape[0])
        with kernels.use_backend(kernels.ORACLE):
            scheduler = SolsticeScheduler()
            oracle = scheduler.schedule(demand, params)
            oracle_events = [d.event for d in scheduler.last_diagnostics]
        with kernels.use_backend(kernels.KERNEL):
            scheduler = SolsticeScheduler()
            kernel = scheduler.schedule(demand, params)
            kernel_events = [d.event for d in scheduler.last_diagnostics]
        assert _schedules_equal(oracle, kernel)
        assert oracle_events == kernel_events

    @given(demand=demand_matrices(max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_eclipse_schedule_bit_identity(self, demand):
        params = _params_for(demand.shape[0])
        with kernels.use_backend(kernels.ORACLE):
            oracle = EclipseScheduler().schedule(demand, params)
        with kernels.use_backend(kernels.KERNEL):
            kernel = EclipseScheduler().schedule(demand, params)
        assert _schedules_equal(oracle, kernel)

    @given(
        demand=demand_matrices(max_n=6, max_value=20.0),
        plan=fault_plans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_simulated_results_identical_under_faults(self, demand, plan):
        n = demand.shape[0]
        params = _params_for(n)
        with kernels.use_backend(kernels.ORACLE):
            oracle_sched = SolsticeScheduler().schedule(demand, params)
        with kernels.use_backend(kernels.KERNEL):
            kernel_sched = SolsticeScheduler().schedule(demand, params)
        oracle_result = simulate_hybrid(demand, oracle_sched, params, faults=plan)
        kernel_result = simulate_hybrid(demand, kernel_sched, params, faults=plan)
        assert np.array_equal(
            oracle_result.finish_times, kernel_result.finish_times, equal_nan=True
        )
        same_completion = (
            oracle_result.completion_time == kernel_result.completion_time
            or (
                np.isnan(oracle_result.completion_time)
                and np.isnan(kernel_result.completion_time)
            )
        )
        assert same_completion


# ---------------------------------------------------------------------- #
# equal-sum tolerance
# ---------------------------------------------------------------------- #


class TestEqualSumTolerance:
    def test_large_phi_ulp_noise_accepted(self):
        # Regression: a few ulps of φ = 1e12 is ~1e-4 in absolute terms —
        # far above the old absolute 1e-6 cutoff, but exactly the float
        # dust big stuffed matrices carry.  The relative tolerance must
        # accept it.
        matrix = np.full((4, 4), 2.5e11)
        matrix[0, 0] += 3e-4
        assert is_equal_sum(matrix)

    def test_genuinely_unequal_sums_rejected(self):
        matrix = np.full((4, 4), 2.5e11)
        matrix[0, 0] += 1e7  # 10 ppm of phi: a real imbalance
        assert not is_equal_sum(matrix)

    def test_large_phi_decomposes(self):
        rng = np.random.default_rng(7)
        demand = rng.random((8, 8)) * 1e9
        with kernels.use_backend(kernels.ORACLE):
            stuffed, diag = quick_stuff_diagnosed(demand)
        assert diag is None
        assert is_equal_sum(stuffed)
        # The dust threshold must scale with φ like the equal-sum check
        # does: at φ ~ 1e10 the subtraction noise alone dwarfs any fixed
        # absolute cutoff.
        phi = float(stuffed.sum(axis=1).max())
        terms = birkhoff_von_neumann(stuffed, tol=1e-9 * phi)
        total = sum(term.weight for term in terms)
        assert abs(total - phi) <= 1e-6 * phi
