"""Tests for the deadline-aware anytime scheduling subsystem.

The two contracts that matter (see ``src/repro/service/deadline.py``):

* with ``deadline_s=None`` (or an infinite budget) the wrapper is
  bit-identical to the unwrapped :class:`CpSwitchScheduler`, for both
  h-Switch schedulers and on both kernel backends (hypothesis-fuzzed);
* under any finite budget every rung of the fallback ladder yields a
  valid, conservation-clean schedule, with the rung recorded on
  ``last_outcome``.

All fallback-level assertions run on a :class:`TickClock`, which makes
budget exhaustion a function of checkpoint *count* — deterministic on any
machine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import FilterConfig
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.matching import kernels
from repro.service.deadline import (
    FALLBACK_EPS_ONLY,
    FALLBACK_FULL,
    FALLBACK_TDM,
    FALLBACK_TRUNCATED,
    FALLBACK_WARM_REUSE,
    AnytimeScheduler,
    DeadlineBudget,
    TickClock,
)
from repro.sim import simulate_cp
from repro.switch.params import fast_ocs_params

N = 16
PARAMS = fast_ocs_params(N)
FILTER = FilterConfig(fanout_threshold=4, volume_threshold=2.0)

BACKENDS = (kernels.ORACLE, kernels.KERNEL)


def covering_demand() -> np.ndarray:
    """The grant-covering workload from the fast-reroute tests: port 0
    fans out (o2m grant), ports 9..13 fan in (m2o grants), plus a direct
    elephant keeping the regular schedule busy."""
    demand = np.zeros((N, N))
    demand[0, 1:9] = 1.0
    demand[9:14, 1:9] = 1.0
    demand[14, 15] = 40.0
    return demand


def make_inner(name: str = "solstice") -> CpSwitchScheduler:
    inner = SolsticeScheduler() if name == "solstice" else EclipseScheduler()
    return CpSwitchScheduler(inner, filter_config=FILTER)


def fuzz_demands(n: int = 8, max_value: float = 12.0):
    """Strategy: sparse non-negative demand matrices at radix ``n``."""
    return st.tuples(
        arrays(
            np.float64,
            (n, n),
            elements=st.floats(0.0, max_value, allow_nan=False, width=32),
        ),
        arrays(np.bool_, (n, n)),
    ).map(lambda pair: pair[0] * pair[1] * (~np.eye(n, dtype=bool)))


def assert_schedules_equal(a, b) -> None:
    """Bit-identity of two CpSchedules, field by field."""
    assert len(a.entries) == len(b.entries)
    for entry_a, entry_b in zip(a.entries, b.entries):
        np.testing.assert_array_equal(entry_a.regular, entry_b.regular)
        assert entry_a.duration == entry_b.duration
        np.testing.assert_array_equal(
            entry_a.composite_served, entry_b.composite_served
        )
        assert entry_a.o2m_port == entry_b.o2m_port
        assert entry_a.m2o_port == entry_b.m2o_port
    np.testing.assert_array_equal(a.filtered_residual, b.filtered_residual)
    np.testing.assert_array_equal(a.reduction.filtered, b.reduction.filtered)
    assert len(a.reduced_schedule) == len(b.reduced_schedule)


class TestTickClock:
    def test_readings_advance_by_step(self):
        clock = TickClock(step=2.0)
        assert [clock(), clock(), clock()] == [0.0, 2.0, 4.0]

    def test_jump_advances_without_reading(self):
        clock = TickClock(step=1.0)
        clock()
        clock.jump(10.0)
        assert clock() == 11.0

    def test_zero_step_freezes_time(self):
        clock = TickClock(step=0.0)
        assert clock() == clock() == 0.0

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_rejects_bad_step(self, bad):
        with pytest.raises(ValueError):
            TickClock(step=bad)


class TestDeadlineBudget:
    def test_unbounded_never_exhausts(self):
        budget = DeadlineBudget(None, clock=TickClock(step=100.0)).start()
        for _ in range(10):
            assert budget.checkpoint("stage")
        assert not budget.exhausted
        assert budget.remaining_s() == math.inf

    def test_infinite_deadline_never_exhausts(self):
        budget = DeadlineBudget(math.inf, clock=TickClock(step=100.0)).start()
        assert budget.checkpoint("stage")
        assert not budget.exhausted
        assert not budget.overdrawn()

    def test_exhausts_at_deadline(self):
        budget = DeadlineBudget(2.5, clock=TickClock(step=1.0)).start()
        assert budget.checkpoint("a")  # elapsed 1
        assert budget.checkpoint("b")  # elapsed 2
        assert not budget.checkpoint("c")  # elapsed 3 >= 2.5
        assert budget.exhausted
        assert [stage for stage, _ in budget.checkpoints] == ["a", "b", "c"]

    def test_checkpoint_records_elapsed(self):
        budget = DeadlineBudget(10.0, clock=TickClock(step=1.0)).start()
        budget.checkpoint("x")
        (record,) = budget.checkpoints
        assert record == ("x", 1.0)

    def test_start_rearms(self):
        clock = TickClock(step=1.0)
        budget = DeadlineBudget(1.5, clock=clock).start()
        budget.checkpoint("a")
        budget.checkpoint("b")
        assert budget.exhausted
        budget.start()
        assert not budget.exhausted
        assert budget.checkpoints == []

    def test_overdrawn_needs_factor_times_deadline(self):
        clock = TickClock(step=0.0)
        budget = DeadlineBudget(1.0, clock=clock).start()
        clock.jump(2.0)
        assert not budget.overdrawn()  # 2 < 4×1
        clock.jump(2.0)
        assert budget.overdrawn()  # 4 >= 4×1

    @pytest.mark.parametrize("bad", [0.0, -2.0, float("nan")])
    def test_rejects_bad_deadline(self, bad):
        with pytest.raises(ValueError, match="deadline_s"):
            DeadlineBudget(bad)

    def test_remaining_clamped_at_zero(self):
        clock = TickClock(step=0.0)
        budget = DeadlineBudget(1.0, clock=clock).start()
        clock.jump(5.0)
        assert budget.remaining_s() == 0.0


class TestUnboundedBitIdentity:
    """deadline_s=None / inf must change nothing, on either backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["solstice", "eclipse"])
    def test_covering_workload_identical(self, backend, name):
        demand = covering_demand()
        with kernels.use_backend(backend):
            plain = make_inner(name).schedule(demand, PARAMS)
            wrapped = AnytimeScheduler(make_inner(name)).schedule(demand, PARAMS)
        assert_schedules_equal(plain, wrapped)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["solstice", "eclipse"])
    def test_infinite_budget_identical(self, backend, name):
        # An *installed* but infinite budget exercises every checkpoint
        # call site and still must not perturb a single number.
        demand = covering_demand()
        with kernels.use_backend(backend):
            plain = make_inner(name).schedule(demand, PARAMS)
            anytime = AnytimeScheduler(
                make_inner(name), deadline_s=math.inf, clock=TickClock(step=1.0)
            )
            wrapped = anytime.schedule(demand, PARAMS)
        assert_schedules_equal(plain, wrapped)
        assert anytime.last_outcome.fallback_level == FALLBACK_FULL
        assert not anytime.last_outcome.deadline_hit
        assert anytime.last_outcome.checkpoints  # budget was really installed

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["solstice", "eclipse"])
    @given(demand=fuzz_demands())
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_identity(self, backend, name, demand):
        params = fast_ocs_params(8)
        with kernels.use_backend(backend):
            plain = make_inner(name).schedule(demand, params)
            wrapped = AnytimeScheduler(
                make_inner(name), deadline_s=math.inf, clock=TickClock(step=1.0)
            ).schedule(demand, params)
        assert_schedules_equal(plain, wrapped)


class TestFallbackLadder:
    """Deterministic rung selection on a TickClock."""

    def test_l0_full_schedule_within_budget(self):
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=1e9, clock=TickClock(step=1.0)
        )
        anytime.schedule(covering_demand(), PARAMS)
        assert anytime.last_outcome.fallback_level == FALLBACK_FULL
        assert not anytime.last_outcome.deadline_hit

    def test_l1_truncated_prefix(self):
        # Budget 6.5 ticks: reduce(1) + stuffing(2) + a few slices, then
        # the solstice deadline watchdog truncates — entries exist, so L1.
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=6.5, clock=TickClock(step=1.0)
        )
        cp_schedule = anytime.schedule(covering_demand(), PARAMS)
        outcome = anytime.last_outcome
        assert outcome.fallback_level == FALLBACK_TRUNCATED
        assert outcome.deadline_hit
        assert len(cp_schedule.entries) > 0
        # The inner scheduler recorded the standard watchdog degradation.
        diagnostics = anytime.inner.inner.last_diagnostics
        assert any(diag.event == "deadline" for diag in diagnostics)
        stages = [stage for stage, _ in outcome.checkpoints]
        assert stages[0] == "cpsched.reduce"
        assert "solstice.stuffing" in stages
        assert "solstice.slice" in stages
        simulate_cp(covering_demand(), cp_schedule, PARAMS).check_conservation()

    def test_l1_prefix_shorter_than_full(self):
        full = make_inner().schedule(covering_demand(), PARAMS)
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=6.5, clock=TickClock(step=1.0)
        )
        truncated = anytime.schedule(covering_demand(), PARAMS)
        assert 0 < len(truncated.entries) < len(full.entries)

    def test_l2_warm_reuse_with_age(self):
        clock = TickClock(step=0.0)
        anytime = AnytimeScheduler(make_inner(), deadline_s=2.5, clock=clock)
        demand = covering_demand()
        # Call 1: frozen clock, full schedule -> remembered.
        anytime.schedule(demand, PARAMS)
        assert anytime.last_outcome.fallback_level == FALLBACK_FULL
        # Calls 2, 3: every checkpoint costs a tick -> exhausted before the
        # first slice; the remembered schedule is re-interpreted.
        clock.step = 1.0
        reused = anytime.schedule(demand, PARAMS)
        assert anytime.last_outcome.fallback_level == FALLBACK_WARM_REUSE
        assert anytime.last_outcome.schedule_age_epochs == 1
        assert len(reused.entries) > 0
        simulate_cp(demand, reused, PARAMS).check_conservation()
        anytime.schedule(demand, PARAMS)
        assert anytime.last_outcome.schedule_age_epochs == 2

    def test_l2_serves_composite_volume(self):
        clock = TickClock(step=0.0)
        anytime = AnytimeScheduler(make_inner(), deadline_s=2.5, clock=clock)
        demand = covering_demand()
        anytime.schedule(demand, PARAMS)
        clock.step = 1.0
        reused = anytime.schedule(demand, PARAMS)
        # Re-interpretation against identical demand re-derives the grants,
        # so the composite paths still carry volume.
        assert reused.composite_volume_served > 0

    def test_l3_tdm_when_no_predecessor(self):
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=2.5, clock=TickClock(step=1.0)
        )
        demand = covering_demand()
        cp_schedule = anytime.schedule(demand, PARAMS)
        outcome = anytime.last_outcome
        assert outcome.fallback_level == FALLBACK_TDM
        assert len(cp_schedule.entries) > 0
        assert cp_schedule.composite_volume_served == 0.0
        assert float(cp_schedule.reduction.filtered.sum()) == 0.0
        result = simulate_cp(demand, cp_schedule, PARAMS)
        result.check_conservation()
        # TDM + EPS still delivers everything eventually.
        assert result.stranded_volume == pytest.approx(0.0, abs=1e-9)

    def test_l3_not_remembered_for_reuse(self):
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=2.5, clock=TickClock(step=1.0)
        )
        demand = covering_demand()
        anytime.schedule(demand, PARAMS)
        assert anytime.last_outcome.fallback_level == FALLBACK_TDM
        anytime.schedule(demand, PARAMS)
        # Still TDM — a fallback schedule must never masquerade as a warm
        # predecessor.
        assert anytime.last_outcome.fallback_level == FALLBACK_TDM

    def test_l4_eps_only_when_overdrawn(self):
        # One 50-tick step blows past hard_overdraft×deadline at the very
        # first checkpoint.
        anytime = AnytimeScheduler(
            make_inner(), deadline_s=2.5, clock=TickClock(step=50.0)
        )
        demand = covering_demand()
        cp_schedule = anytime.schedule(demand, PARAMS)
        assert anytime.last_outcome.fallback_level == FALLBACK_EPS_ONLY
        assert len(cp_schedule.entries) == 0
        result = simulate_cp(demand, cp_schedule, PARAMS)
        result.check_conservation()
        assert result.served_eps == pytest.approx(float(demand.sum()), rel=1e-9)

    def test_l2_skipped_when_overdrawn(self):
        clock = TickClock(step=0.0)
        anytime = AnytimeScheduler(make_inner(), deadline_s=2.5, clock=clock)
        demand = covering_demand()
        anytime.schedule(demand, PARAMS)  # remembered
        clock.step = 50.0
        anytime.schedule(demand, PARAMS)
        # Overdraft outranks warm reuse: do no further scheduling work.
        assert anytime.last_outcome.fallback_level == FALLBACK_EPS_ONLY

    def test_rejects_bad_hard_overdraft(self):
        with pytest.raises(ValueError, match="hard_overdraft"):
            AnytimeScheduler(make_inner(), hard_overdraft=0.5)


class TestWarmReuseDeadPorts:
    def test_dead_port_grants_stripped(self):
        clock = TickClock(step=0.0)
        anytime = AnytimeScheduler(make_inner(), deadline_s=2.5, clock=clock)
        demand = covering_demand()
        warm = anytime.schedule(demand, PARAMS)
        granted_o2m = {e.o2m_port for e in warm.entries if e.o2m_port is not None}
        assert granted_o2m, "covering workload must grant o2m composite paths"
        dead = next(iter(granted_o2m))
        clock.step = 1.0
        reused = anytime.schedule(demand, PARAMS, blocked_o2m={dead})
        assert anytime.last_outcome.fallback_level == FALLBACK_WARM_REUSE
        assert f"dead-port grant" in anytime.last_outcome.detail
        assert all(entry.o2m_port != dead for entry in reused.entries)
        # The blocked reduction never assigns volume to the dead port's own
        # composite path (entries may still ride the receivers' m2o paths).
        assert float(reused.reduction.reduced[dead, N]) == 0.0
        assert not reused.reduction.o2m_assignment[dead, :].any()
        simulate_cp(demand, reused, PARAMS).check_conservation()


class TestFiniteBudgetValidity:
    """Any finite tick budget -> a valid, conservation-clean schedule."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["solstice", "eclipse"])
    @given(demand=fuzz_demands(), deadline=st.floats(0.5, 20.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_validity(self, backend, name, demand, deadline):
        params = fast_ocs_params(8)
        with kernels.use_backend(backend):
            anytime = AnytimeScheduler(
                make_inner(name), deadline_s=deadline, clock=TickClock(step=1.0)
            )
            cp_schedule = anytime.schedule(demand, params)
            result = simulate_cp(demand, cp_schedule, params)
        result.check_conservation()
        outcome = anytime.last_outcome
        assert outcome is not None
        assert 0 <= outcome.fallback_level <= 4
        if outcome.fallback_level > 0:
            assert outcome.deadline_hit

    def test_every_epoch_of_a_sequence_is_valid(self):
        clock = TickClock(step=1.0)
        anytime = AnytimeScheduler(make_inner(), deadline_s=6.5, clock=clock)
        rng = np.random.default_rng(5)
        levels = set()
        for _ in range(6):
            demand = rng.uniform(0.0, 4.0, size=(N, N))
            np.fill_diagonal(demand, 0.0)
            cp_schedule = anytime.schedule(demand, PARAMS)
            simulate_cp(demand, cp_schedule, PARAMS).check_conservation()
            levels.add(anytime.last_outcome.fallback_level)
        assert levels  # every epoch produced an outcome
