"""Regression tests for the silent metric-reporting bugs.

Three bugs, one test class each:

* ``coflow_completion`` used to drop NaN finish times and max the rest, so
  a coflow whose flows all never finished reported 0.0 ms — the *best*
  possible score for work that never completed.  It now reports
  ``math.inf`` and bumps the ``coflow_never_finished_total`` counter.
* ``ocs_fraction_within`` returned 0.0 on zero demand while
  ``delivered_fraction`` returned 1.0 — the vacuous case now agrees on 1.0
  everywhere.
* ``finished`` used an absolute 1e-9 Mb cutoff while ``check_conservation``
  scales its tolerance by the total demand — large-volume runs could fail
  ``finished`` over float dust that conservation happily accepted.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_hybrid
from repro.sim.metrics import SimulationResult
from repro.switch.params import SwitchParams

PARAMS = SwitchParams(n_ports=4, eps_rate=10.0, ocs_rate=100.0, reconfig_delay=0.02)


def _result(finish_times, residual=None, total_demand=0.0, **kwargs):
    finish_times = np.asarray(finish_times, dtype=np.float64)
    return SimulationResult(
        finish_times=finish_times,
        completion_time=0.0,
        n_configs=0,
        makespan=0.0,
        total_demand=total_demand,
        residual=None if residual is None else np.asarray(residual, dtype=np.float64),
        **kwargs,
    )


class TestCoflowNeverFinished:
    def test_all_pending_mask_reports_inf_not_zero(self):
        # Two flows demanded, neither finished: nan finish + residual left.
        finish = [[np.nan, np.nan], [np.nan, np.nan]]
        residual = [[5.0, 3.0], [0.0, 0.0]]
        result = _result(finish, residual=residual, total_demand=8.0)
        mask = np.array([[True, True], [False, False]])
        assert result.coflow_completion(mask) == math.inf

    def test_mixed_mask_reports_inf_when_any_flow_pending(self):
        finish = [[1.5, np.nan], [np.nan, np.nan]]
        residual = [[0.0, 4.0], [0.0, 0.0]]
        result = _result(finish, residual=residual, total_demand=10.0)
        mask = np.array([[True, True], [False, False]])
        assert result.coflow_completion(mask) == math.inf

    def test_undemanded_mask_still_reports_zero(self):
        # nan finish with no residual volume = never demanded, not pending.
        finish = [[1.5, np.nan], [np.nan, np.nan]]
        residual = [[0.0, 0.0], [0.0, 0.0]]
        result = _result(finish, residual=residual, total_demand=1.5)
        mask = np.array([[False, True], [True, True]])
        assert result.coflow_completion(mask) == 0.0

    def test_run_to_completion_results_unchanged(self):
        # residual=None (unbounded run): every nan is an undemanded entry.
        finish = [[2.0, np.nan], [np.nan, 3.5]]
        result = _result(finish, total_demand=7.0)
        mask = np.ones((2, 2), dtype=bool)
        assert result.coflow_completion(mask) == 3.5

    def test_horizon_bounded_simulation_reports_inf(self):
        # Integration: cut a real simulation off before any flow finishes.
        rng = np.random.default_rng(7)
        demand = rng.uniform(10.0, 50.0, (4, 4))
        np.fill_diagonal(demand, 0.0)
        schedule = SolsticeScheduler().schedule(demand, PARAMS)
        result = simulate_hybrid(demand, schedule, PARAMS, horizon=1e-6)
        assert not result.finished
        assert result.coflow_completion(demand > 0) == math.inf

    def test_counter_increments_when_metrics_enabled(self):
        finish = [[np.nan, np.nan], [np.nan, np.nan]]
        residual = [[5.0, 0.0], [0.0, 0.0]]
        result = _result(finish, residual=residual, total_demand=5.0)
        mask = np.array([[True, False], [False, False]])
        registry = obs.MetricsRegistry()
        with obs.observability(metrics=registry):
            assert result.coflow_completion(mask) == math.inf
            assert result.coflow_completion(mask) == math.inf
        snapshot = registry.snapshot()
        assert snapshot["coflow_never_finished_total"]["values"][0]["value"] == 2.0

    def test_inf_survives_mean_aggregation(self):
        # Callers average coflow completion times; inf must dominate the
        # mean instead of silently improving it the way 0.0 did.
        assert math.isinf(float(np.mean([1.0, math.inf, 2.0])))


class TestZeroDemandConvention:
    def test_ocs_fraction_matches_delivered_fraction_on_zero_demand(self):
        result = _result(np.full((2, 2), np.nan), total_demand=0.0)
        assert result.delivered_fraction == 1.0
        assert result.ocs_fraction_within(1.0) == 1.0
        assert result.finished

    def test_nonzero_demand_unchanged(self):
        rng = np.random.default_rng(3)
        demand = rng.uniform(0.0, 20.0, (4, 4))
        np.fill_diagonal(demand, 0.0)
        schedule = SolsticeScheduler().schedule(demand, PARAMS)
        result = simulate_hybrid(demand, schedule, PARAMS)
        fraction = result.ocs_fraction_within(1.0)
        assert 0.0 <= fraction <= 1.0 + 1e-9
        np.testing.assert_allclose(
            fraction, result.ocs_volume_by(1.0) / result.total_demand
        )


class TestFinishedRelativeTolerance:
    def test_large_volume_dust_counts_as_finished(self):
        # 1e-3 Mb of float dust on a petabit-scale run: conservation
        # accepts it, and now `finished` does too.
        result = _result(
            np.zeros((2, 2)),
            residual=[[1e-3, 0.0], [0.0, 0.0]],
            total_demand=1e12,
        )
        assert result.finished

    def test_small_demand_keeps_absolute_cutoff(self):
        # max(1, total) floors the scale factor, so tiny demands keep the
        # strict absolute threshold: a real 1e-3 Mb residual is unfinished.
        result = _result(
            np.zeros((2, 2)),
            residual=[[1e-3, 0.0], [0.0, 0.0]],
            total_demand=2e-3,
        )
        assert not result.finished

    def test_exact_zero_residual_finished(self):
        result = _result(
            np.zeros((2, 2)), residual=np.zeros((2, 2)), total_demand=100.0
        )
        assert result.finished

    def test_agreement_with_conservation_scaling(self):
        # The same residual either passes both checks or fails both.
        residual = [[0.5e-6, 0.0], [0.0, 0.0]]
        result = _result(
            np.zeros((2, 2)),
            residual=residual,
            total_demand=1e6,
            served_eps=1e6 - 0.5e-6,
        )
        result.check_conservation()  # scaled tolerance accepts the dust
        assert result.finished

    def test_genuinely_unfinished_run_detected(self):
        rng = np.random.default_rng(11)
        demand = rng.uniform(10.0, 50.0, (4, 4))
        np.fill_diagonal(demand, 0.0)
        schedule = SolsticeScheduler().schedule(demand, PARAMS)
        result = simulate_hybrid(demand, schedule, PARAMS, horizon=1e-6)
        assert not result.finished
        assert result.residual_total == pytest.approx(result.total_demand, rel=1e-3)
