"""Tests for the Birkhoff–von-Neumann decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.solstice.stuffing import quick_stuff
from repro.matching.birkhoff import birkhoff_von_neumann, is_equal_sum, recompose


class TestIsEqualSum:
    def test_doubly_stochastic_is_equal_sum(self):
        matrix = np.full((3, 3), 1 / 3)
        assert is_equal_sum(matrix)

    def test_unequal_sums_detected(self):
        assert not is_equal_sum(np.array([[1.0, 0.0], [0.0, 2.0]]))


class TestBirkhoffVonNeumann:
    def test_permutation_decomposes_to_itself(self):
        perm = np.array([[0.0, 2.0], [2.0, 0.0]])
        terms = birkhoff_von_neumann(perm)
        assert len(terms) == 1
        assert terms[0].weight == pytest.approx(2.0)
        np.testing.assert_array_equal(terms[0].permutation, [[0, 1], [1, 0]])

    def test_recompose_inverts_decompose(self):
        rng = np.random.default_rng(2)
        demand = rng.uniform(0, 4, (6, 6)) * (rng.random((6, 6)) < 0.5)
        stuffed = quick_stuff(demand)
        terms = birkhoff_von_neumann(stuffed)
        np.testing.assert_allclose(recompose(terms, 6), stuffed, atol=1e-8)

    def test_term_count_within_bvn_bound(self):
        rng = np.random.default_rng(3)
        demand = rng.uniform(0, 4, (5, 5)) * (rng.random((5, 5)) < 0.6)
        stuffed = quick_stuff(demand)
        terms = birkhoff_von_neumann(stuffed)
        nnz = int((stuffed > 0).sum())
        assert 1 <= len(terms) <= nnz

    def test_weights_positive_and_sum_to_phi(self):
        rng = np.random.default_rng(4)
        demand = rng.uniform(0, 4, (5, 5)) * (rng.random((5, 5)) < 0.6)
        stuffed = quick_stuff(demand)
        phi = stuffed.sum(axis=1)[0]
        terms = birkhoff_von_neumann(stuffed)
        assert all(term.weight > 0 for term in terms)
        assert sum(term.weight for term in terms) == pytest.approx(phi)

    def test_rejects_unequal_sums(self):
        with pytest.raises(ValueError):
            birkhoff_von_neumann(np.array([[1.0, 0.0], [0.0, 2.0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            birkhoff_von_neumann(np.array([[-1.0, 1.0], [1.0, -1.0]]))

    def test_empty_matrix_gives_no_terms(self):
        assert birkhoff_von_neumann(np.zeros((3, 3))) == []
