"""Tests for Algorithm 2 — CPSched (scheduling within a composite path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cpsched import composite_path_rate, cpsched, cpsched_with_served


class TestFigure3Example:
    """The paper's CPSched walk-through (Figure 3).

    A one-to-many composite path is granted for 3 time slots; it can serve
    up to 3 packets from each non-zero entry of the gray row [5, 3, 6], so
    only the first and third entries keep packets: [2, 0, 3].
    """

    def test_residuals_match_figure(self):
        demands = np.array([5.0, 3.0, 6.0])
        # "up to 3 packets from each entry" => per-entry rate 1 packet/slot:
        # Ce = 1, and Co large enough not to bind (Co/Rc >= 1).
        remaining = cpsched(demands, duration=3.0, ocs_rate=10.0, eps_rate=1.0)
        np.testing.assert_allclose(remaining, [2.0, 0.0, 3.0])

    def test_with_zero_entries_interleaved(self):
        demands = np.array([0.0, 5.0, 0.0, 3.0, 6.0, 0.0])
        remaining = cpsched(demands, duration=3.0, ocs_rate=10.0, eps_rate=1.0)
        np.testing.assert_allclose(remaining, [0.0, 2.0, 0.0, 0.0, 3.0, 0.0])


class TestRatePolicy:
    def test_eps_limited_when_few_endpoints(self):
        # 2 endpoints, Co/Rc = 50 >> Ce = 10: per-endpoint rate is Ce.
        demands = np.array([10.0, 10.0])
        remaining = cpsched(demands, duration=0.5, ocs_rate=100.0, eps_rate=10.0)
        np.testing.assert_allclose(remaining, [5.0, 5.0])

    def test_ocs_limited_when_many_endpoints(self):
        # 20 endpoints: Co/Rc = 5 < Ce = 10 -> rate 5 each.
        demands = np.full(20, 10.0)
        remaining = cpsched(demands, duration=1.0, ocs_rate=100.0, eps_rate=10.0)
        np.testing.assert_allclose(remaining, np.full(20, 5.0))

    def test_rate_rises_as_endpoints_drain(self):
        # Start OCS-limited with 4 endpoints (rate 2.5); when the small one
        # finishes the rest speed up to min(10, 10/3) = 10/3.
        demands = np.array([2.5, 10.0, 10.0, 10.0])
        remaining = cpsched(demands, duration=2.0, ocs_rate=10.0, eps_rate=10.0)
        # Phase 1: 1 ms at 2.5 each drains entry 0. Phase 2: 1 ms at 10/3.
        np.testing.assert_allclose(remaining, [0.0, 7.5 - 10 / 3, 7.5 - 10 / 3, 7.5 - 10 / 3])

    def test_zero_duration_serves_nothing(self):
        demands = np.array([1.0, 2.0])
        np.testing.assert_allclose(cpsched(demands, 0.0, 100.0, 10.0), demands)

    def test_all_drained_before_duration_ends(self):
        demands = np.array([1.0, 1.0])
        remaining = cpsched(demands, duration=100.0, ocs_rate=100.0, eps_rate=10.0)
        np.testing.assert_allclose(remaining, [0.0, 0.0])

    def test_never_negative(self):
        rng = np.random.default_rng(3)
        demands = rng.uniform(0, 5, 30)
        remaining = cpsched(demands, 1.7, 100.0, 10.0)
        assert (remaining >= 0).all()

    def test_monotone_in_duration(self):
        demands = np.array([4.0, 2.0, 7.0, 1.0])
        previous = demands.copy()
        for duration in (0.1, 0.2, 0.5, 1.0, 2.0):
            current = cpsched(demands, duration, 20.0, 5.0)
            assert (current <= previous + 1e-12).all()
            previous = current

    def test_input_not_mutated(self):
        demands = np.array([4.0, 2.0])
        cpsched(demands, 1.0, 100.0, 10.0)
        np.testing.assert_allclose(demands, [4.0, 2.0])


class TestServedTimeline:
    def test_segments_partition_used_time(self):
        demands = np.array([2.5, 10.0, 10.0, 10.0])
        remaining, segments = cpsched_with_served(demands, 2.0, 10.0, 10.0)
        assert segments[0].start == 0.0
        for before, after in zip(segments, segments[1:]):
            assert after.start == pytest.approx(before.end)
        assert segments[-1].end == pytest.approx(2.0)

    def test_segments_reconstruct_served_volume(self):
        demands = np.array([2.5, 10.0, 10.0, 10.0])
        remaining, segments = cpsched_with_served(demands, 2.0, 10.0, 10.0)
        reconstructed = np.zeros_like(demands)
        for segment in segments:
            reconstructed[segment.active] += segment.rate * (segment.end - segment.start)
        np.testing.assert_allclose(demands - remaining, reconstructed)

    def test_matches_plain_cpsched(self):
        rng = np.random.default_rng(11)
        demands = rng.uniform(0, 8, 12) * (rng.random(12) < 0.7)
        plain = cpsched(demands, 1.3, 40.0, 10.0)
        with_served, _ = cpsched_with_served(demands, 1.3, 40.0, 10.0)
        np.testing.assert_allclose(plain, with_served)


class TestCompositePathRate:
    def test_zero_endpoints(self):
        assert composite_path_rate(0, 100.0, 10.0) == 0.0

    def test_eps_bound(self):
        assert composite_path_rate(2, 100.0, 10.0) == 10.0

    def test_ocs_bound(self):
        assert composite_path_rate(50, 100.0, 10.0) == pytest.approx(2.0)


class TestValidation:
    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            cpsched(np.array([-1.0]), 1.0, 100.0, 10.0)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            cpsched(np.zeros((2, 2)), 1.0, 100.0, 10.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            cpsched(np.array([1.0]), -1.0, 100.0, 10.0)

    def test_rejects_zero_rates(self):
        with pytest.raises(ValueError):
            cpsched(np.array([1.0]), 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            cpsched(np.array([1.0]), 1.0, 100.0, 0.0)
