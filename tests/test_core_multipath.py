"""Tests for the §4 k-composite-paths extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multipath import (
    NO_PATH,
    MultiPathCpScheduler,
    divide_by_type_multipath,
    multi_path_reduction,
)
from repro.core.reduction import cp_switch_demand_reduction
from repro.hybrid.solstice import SolsticeScheduler
from repro.switch.params import fast_ocs_params


class TestMultiPathReduction:
    def test_k1_matches_base_algorithm(self, sparse_demand):
        base = cp_switch_demand_reduction(sparse_demand, 3, 2.0)
        multi = multi_path_reduction(sparse_demand, 1, 3, 2.0)
        np.testing.assert_allclose(multi.reduced, base.reduced)
        np.testing.assert_allclose(multi.filtered, base.filtered)
        np.testing.assert_array_equal(multi.o2m_path != NO_PATH, base.o2m_assignment)
        np.testing.assert_array_equal(multi.m2o_path != NO_PATH, base.m2o_assignment)

    def test_volume_conserved(self, sparse_demand):
        multi = multi_path_reduction(sparse_demand, 3, 3, 2.0)
        assert multi.reduced.sum() == pytest.approx(sparse_demand.sum())

    def test_matrix_shape(self, sparse_demand):
        multi = multi_path_reduction(sparse_demand, 3, 3, 2.0)
        assert multi.reduced.shape == (11, 11)
        # Composite endpoints never talk to each other.
        assert multi.reduced[8:, 8:].sum() == 0.0

    def test_sender_is_sticky_to_one_path(self):
        demand = np.zeros((8, 8))
        demand[0, 1:8] = 1.0
        multi = multi_path_reduction(demand, 3, 4, 2.0)
        paths = multi.o2m_path[0, 1:8]
        assert (paths == paths[0]).all()
        assert paths[0] != NO_PATH

    def test_two_senders_spread_across_paths(self):
        demand = np.zeros((8, 8))
        demand[0, 1:8] = 1.0
        demand[1, np.r_[0, 2:8]] = 1.0
        multi = multi_path_reduction(demand, 2, 4, 2.0)
        path0 = multi.o2m_path[0, 1]
        path1 = multi.o2m_path[1, 0]
        assert path0 != path1

    def test_path_loads_reflect_assignments(self):
        rng = np.random.default_rng(1)
        demand = rng.uniform(0, 2, (10, 10)) * (rng.random((10, 10)) < 0.7)
        multi = multi_path_reduction(demand, 2, 4, 3.0)
        n = 10
        for p in range(2):
            expected = demand[multi.o2m_path == p].sum()
            assert multi.reduced[:n, n + p].sum() == pytest.approx(expected)
            expected = demand[multi.m2o_path == p].sum()
            assert multi.reduced[n + p, :n].sum() == pytest.approx(expected)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            multi_path_reduction(np.zeros((4, 4)), 0, 2, 1.0)


class TestDivideByTypeMultipath:
    def test_extracts_multiple_grants(self):
        n, k = 4, 2
        perm = np.zeros((n + k, n + k), dtype=np.int8)
        perm[0, n] = 1  # sender 0 on o2m path 0
        perm[1, n + 1] = 1  # sender 1 on o2m path 1
        perm[n, 2] = 1  # receiver 2 on m2o path 0
        perm[2, 3] = 1  # a regular circuit
        regular, o2m, m2o = divide_by_type_multipath(perm, n)
        assert o2m == {0: 0, 1: 1}
        assert m2o == {0: 2}
        assert regular.sum() == 1

    def test_path_to_path_matches_ignored(self):
        n, k = 3, 2
        perm = np.zeros((n + k, n + k), dtype=np.int8)
        perm[n, n + 1] = 1
        regular, o2m, m2o = divide_by_type_multipath(perm, n)
        assert o2m == {}
        assert m2o == {}

    def test_rejects_undersized_permutation(self):
        with pytest.raises(ValueError):
            divide_by_type_multipath(np.zeros((3, 3), dtype=np.int8), 3)


class TestMultiPathScheduler:
    def test_name_encodes_k(self):
        scheduler = MultiPathCpScheduler(SolsticeScheduler(), n_paths=3)
        assert scheduler.name == "cp3-solstice"

    def test_composite_served_conserves_volume(self, skewed_demand16):
        params = fast_ocs_params(16)
        scheduler = MultiPathCpScheduler(SolsticeScheduler(), n_paths=2)
        schedule = scheduler.schedule(skewed_demand16, params)
        served = schedule.composite_volume_served
        expected = schedule.reduction.filtered.sum() - schedule.filtered_residual.sum()
        assert served == pytest.approx(expected)

    def test_radix_mismatch_rejected(self):
        scheduler = MultiPathCpScheduler(SolsticeScheduler(), n_paths=2)
        with pytest.raises(ValueError):
            scheduler.schedule(np.zeros((4, 4)), fast_ocs_params(8))

    def test_lanes_partition_service(self, skewed_demand16):
        # Each served entry must have been served through its own lane.
        params = fast_ocs_params(16)
        scheduler = MultiPathCpScheduler(SolsticeScheduler(), n_paths=2)
        schedule = scheduler.schedule(skewed_demand16, params)
        reduction = schedule.reduction
        for entry in schedule.entries:
            served = entry.composite_served > 0
            rows, cols = np.nonzero(served)
            for i, j in zip(rows, cols):
                on_o2m = reduction.o2m_path[i, j] in entry.o2m_grants and entry.o2m_grants.get(
                    int(reduction.o2m_path[i, j])
                ) == i
                on_m2o = reduction.m2o_path[i, j] in entry.m2o_grants and entry.m2o_grants.get(
                    int(reduction.m2o_path[i, j])
                ) == j
                assert on_o2m or on_m2o


class TestMultiPathImmutability:
    def test_reduction_arrays_read_only(self, sparse_demand):
        multi = multi_path_reduction(sparse_demand, 3, 3, 2.0)
        for name in ("reduced", "filtered", "o2m_path", "m2o_path"):
            with pytest.raises(ValueError):
                getattr(multi, name)[0, 0] = 1

    def test_schedule_residual_read_only(self, skewed_demand16):
        params = fast_ocs_params(16)
        scheduler = MultiPathCpScheduler(SolsticeScheduler(), n_paths=2)
        schedule = scheduler.schedule(skewed_demand16, params)
        with pytest.raises(ValueError):
            schedule.filtered_residual[0, 0] = 1.0
