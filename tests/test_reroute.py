"""Tests for fast-reroute: precomputed backup schedules (repro.faults.reroute).

The load-bearing invariants:

* a mid-epoch composite-port outage with backups armed swaps at the current
  phase boundary — under **every** scheduler/kernel backend combination;
* the conservation ledger balances through a swap (volume is re-parked,
  never lost);
* fast-reroute strands no more volume than degrade-to-EPS, and strictly
  less on a workload whose surviving grants cover the orphaned demand;
* a run in which no fault fires is bit-identical with backups armed
  (hypothesis-fuzzed) — arming the repair machinery costs nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.controller import EpochController
from repro.analysis.robustness import outage_plan, reroute_rate_trial, reroute_trial
from repro.core.config import FilterConfig
from repro.core.scheduler import CpSwitchScheduler
from repro.faults import FaultPlan
from repro.faults.reroute import (
    FALLBACK_KEY,
    BackupPlanner,
    BackupSchedule,
    BackupSet,
    RerouteOutcome,
    SwapEvent,
    backup_key,
)
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.matching import kernels
from repro.sim import simulate_cp
from repro.sim.engine import FluidEngine
from repro.switch.params import fast_ocs_params

N = 16
PARAMS = fast_ocs_params(N)
FILTER = FilterConfig(fanout_threshold=4, volume_threshold=2.0)


def covering_demand() -> np.ndarray:
    """A workload whose surviving grants cover each other's orphans.

    Port 0 fans out to ports 1..8 (one-to-many); ports 9..13 each fan in
    to columns 1..8 (many-to-one); a 40 Mb direct elephant keeps the
    regular schedule busy long enough for a mid-schedule outage to matter.
    Every filtered entry lies on both a granted o2m row and a granted m2o
    column, so when one composite port dies the other direction's grants
    can re-serve its parked demand.
    """
    demand = np.zeros((N, N))
    demand[0, 1:9] = 1.0
    demand[9:14, 1:9] = 1.0
    demand[14, 15] = 40.0
    return demand


def make_scheduler(name: str) -> CpSwitchScheduler:
    inner = SolsticeScheduler() if name == "solstice" else EclipseScheduler()
    return CpSwitchScheduler(inner, filter_config=FILTER)


def plan_backups(scheduler_name: str = "solstice"):
    """(demand, cp_schedule, scheduler, backups) on the covering workload."""
    demand = covering_demand()
    scheduler = make_scheduler(scheduler_name)
    cp_schedule = scheduler.schedule(demand, PARAMS)
    backups = BackupPlanner(scheduler).plan(demand, cp_schedule, PARAMS)
    return demand, cp_schedule, scheduler, backups


def killer(kind: str, port: int, n: int = N):
    """A deterministic injector: ``(kind, port)`` is dead, nothing else.

    A null plan consumes no entropy, so the only divergence from a
    fault-free run is the pre-seeded outage, discovered at first grant.
    """
    injector = FaultPlan().injector(n)
    injector.mark_dead(kind, [port])
    return injector


class TestBackupKey:
    def test_format(self):
        assert backup_key("o2m", 3) == "o2m:3"
        assert backup_key("m2o", 11) == "m2o:11"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            backup_key("sideways", 0)


class TestBackupSchedule:
    def test_filtered_is_frozen(self):
        backup = BackupSchedule(key="o2m:0", filtered=np.ones((4, 4)))
        with pytest.raises(ValueError):
            backup.filtered[0, 0] = 7.0

    def test_parkable_volume(self):
        backup = BackupSchedule(key="o2m:0", filtered=np.full((3, 3), 2.0))
        assert backup.parkable_volume == pytest.approx(18.0)

    def test_replace_requires_entries(self):
        with pytest.raises(ValueError, match="replace"):
            BackupSchedule(key="o2m:0", filtered=np.zeros((4, 4)), replace=True)


class TestBackupSetSelect:
    def _set(self):
        per_port = {
            ("m2o", 4): BackupSchedule(key="m2o:4", filtered=np.zeros((4, 4))),
            ("o2m", 1): BackupSchedule(key="o2m:1", filtered=np.zeros((4, 4))),
        }
        fallback = BackupSchedule(key=FALLBACK_KEY, filtered=np.zeros((4, 4)))
        return BackupSet(per_port=per_port, fallback=fallback, base_blocked_o2m={7})

    def test_single_new_death_selects_per_port(self):
        backups = self._set()
        assert backups.select(set(), {4}).key == "m2o:4"
        assert backups.select({1}, set()).key == "o2m:1"

    def test_multiple_deaths_select_fallback(self):
        backups = self._set()
        assert backups.select({1}, {4}).key == FALLBACK_KEY

    def test_unplanned_death_selects_fallback(self):
        backups = self._set()
        assert backups.select(set(), {9}).key == FALLBACK_KEY

    def test_base_blocked_ports_are_not_events(self):
        backups = self._set()
        # o2m:7 was dead at plan time; only m2o:4 is a *new* death.
        assert backups.select({7}, {4}).key == "m2o:4"

    def test_active_backup_selects_none(self):
        backups = self._set()
        assert backups.select(set(), {4}, current_key="m2o:4") is None

    def test_n_armed_excludes_fallback(self):
        assert self._set().n_armed == 2


class TestRerouteOutcome:
    def test_empty_outcome(self):
        outcome = RerouteOutcome()
        assert outcome.n_swaps == 0
        assert outcome.recovery_ms == 0.0
        assert outcome.reparked_mb == 0.0

    def test_aggregates_and_dict(self):
        swaps = (
            SwapEvent("m2o:4", 1.0, 1.5, released_mb=3.0, carried_mb=2.0),
            SwapEvent("o2m:0", 2.0, 2.2, released_mb=1.0, carried_mb=0.5),
        )
        outcome = RerouteOutcome(swaps=swaps, backups_armed=5)
        assert outcome.n_swaps == 2
        assert outcome.recovery_ms == pytest.approx(0.5)
        assert outcome.reparked_mb == pytest.approx(2.5)
        payload = outcome.to_dict()
        assert payload["backups_armed"] == 5
        assert len(payload["swaps"]) == 2


class TestMarkDeadValidation:
    """Regression: unknown kinds were silently treated as ``"m2o"``."""

    def test_unknown_kind_rejected(self):
        injector = FaultPlan().injector(8)
        with pytest.raises(ValueError, match="kind"):
            injector.mark_dead("o2n", [1])
        assert not injector.dead_o2m and not injector.dead_m2o

    def test_valid_kinds_accepted(self):
        injector = FaultPlan().injector(8)
        injector.mark_dead("o2m", [1])
        injector.mark_dead("m2o", [2, 3])
        assert injector.dead_o2m == {1}
        assert injector.dead_m2o == {2, 3}


class TestBackupPlanner:
    def test_one_backup_per_granted_port(self):
        _, cp_schedule, _, backups = plan_backups()
        granted = set()
        for entry in cp_schedule.entries:
            if entry.o2m_port is not None:
                granted.add(("o2m", entry.o2m_port))
            if entry.m2o_port is not None:
                granted.add(("m2o", entry.m2o_port))
        assert set(backups.per_port) == granted
        assert backups.n_armed == len(granted)
        assert granted, "covering workload must grant composite paths"

    def test_backup_blocks_its_failure_class(self):
        _, _, _, backups = plan_backups()
        for (kind, port), backup in backups.per_port.items():
            blocked = backup.blocked_o2m if kind == "o2m" else backup.blocked_m2o
            assert port in blocked

    def test_parkable_masked_to_surviving_grants(self):
        _, cp_schedule, _, backups = plan_backups()
        for (kind, port), backup in backups.per_port.items():
            rows = np.zeros(N, dtype=bool)
            cols = np.zeros(N, dtype=bool)
            for entry in cp_schedule.entries:
                if entry.o2m_port is not None and ("o2m", entry.o2m_port) != (kind, port):
                    rows[entry.o2m_port] = True
                if entry.m2o_port is not None and ("m2o", entry.m2o_port) != (kind, port):
                    cols[entry.m2o_port] = True
            uncovered = ~(rows[:, None] | cols[None, :])
            assert backup.filtered[uncovered].sum() == 0.0

    def test_fallback_parks_nothing(self):
        _, _, _, backups = plan_backups()
        assert backups.fallback.key == FALLBACK_KEY
        assert backups.fallback.parkable_volume == 0.0

    def test_planning_is_deterministic(self):
        _, _, _, a = plan_backups()
        _, _, _, b = plan_backups()
        assert set(a.per_port) == set(b.per_port)
        for key in a.per_port:
            np.testing.assert_array_equal(
                a.per_port[key].filtered, b.per_port[key].filtered
            )

    def test_plan_time_measured(self):
        _, _, _, backups = plan_backups()
        assert backups.plan_seconds > 0.0

    def test_base_blocked_ports_excluded(self):
        demand, cp_schedule, scheduler, _ = plan_backups()
        backups = BackupPlanner(scheduler).plan(
            demand, cp_schedule, PARAMS, blocked_m2o=[4]
        )
        assert 4 in backups.base_blocked_m2o
        for backup in backups.per_port.values():
            assert 4 in backup.blocked_m2o


class TestEngineRepark:
    def test_shape_checked(self):
        engine = FluidEngine(covering_demand(), PARAMS)
        with pytest.raises(ValueError):
            engine.repark_composite(np.zeros((4, 4)))

    def test_negative_rejected(self):
        engine = FluidEngine(covering_demand(), PARAMS)
        with pytest.raises(ValueError):
            engine.repark_composite(np.full((N, N), -1.0))

    def test_clamps_to_regular_residual(self):
        engine = FluidEngine(covering_demand(), PARAMS)
        ask = np.full((N, N), 1e6)
        regular_before = engine.regular.sum()
        parked = engine.repark_composite(ask)
        assert parked == pytest.approx(regular_before)
        assert engine.regular.sum() == pytest.approx(0.0)
        assert engine.composite.sum() == pytest.approx(regular_before)


@pytest.mark.parametrize("backend", [kernels.ORACLE, kernels.KERNEL])
@pytest.mark.parametrize("scheduler_name", ["solstice", "eclipse"])
class TestSwapEveryBackend:
    """ISSUE satellite: the swap must fire and balance under every
    scheduler/kernel backend combination."""

    def test_mid_epoch_outage_swaps_and_balances(self, backend, scheduler_name):
        with kernels.use_backend(backend):
            demand, cp_schedule, _, backups = plan_backups(scheduler_name)
            assert backups.n_armed > 0
            kind, port = sorted(backups.per_port)[-1]
            horizon = cp_schedule.makespan
            degrade = simulate_cp(
                demand, cp_schedule, PARAMS, horizon=horizon, faults=killer(kind, port)
            )
            reroute = simulate_cp(
                demand,
                cp_schedule,
                PARAMS,
                horizon=horizon,
                faults=killer(kind, port),
                backups=backups,
            )
        degrade.check_conservation()
        reroute.check_conservation()
        assert degrade.reroute is None
        outcome = reroute.reroute
        assert outcome is not None
        assert outcome.n_swaps == 1
        assert outcome.swaps[0].key == backup_key(kind, port)
        assert outcome.backups_armed == backups.n_armed
        # Fast-reroute never strands more than degrade-to-EPS.
        assert reroute.stranded_volume <= degrade.stranded_volume + 1e-9

    def test_zero_fault_run_bit_identical_with_backups(self, backend, scheduler_name):
        with kernels.use_backend(backend):
            demand, cp_schedule, _, backups = plan_backups(scheduler_name)
            plain = simulate_cp(demand, cp_schedule, PARAMS)
            armed = simulate_cp(
                demand, cp_schedule, PARAMS, faults=FaultPlan(), backups=backups
            )
        np.testing.assert_array_equal(plain.finish_times, armed.finish_times)
        assert plain.completion_time == armed.completion_time
        assert plain.served_eps == armed.served_eps
        assert plain.served_composite == armed.served_composite
        assert plain.served_ocs_direct == armed.served_ocs_direct
        outcome = armed.reroute
        assert outcome is not None and outcome.n_swaps == 0
        assert outcome.backups_armed == backups.n_armed


class TestSwapSemantics:
    """Solstice-specific checks on the validated covering workload."""

    def test_strictly_less_stranded_than_degrade(self):
        demand, cp_schedule, _, backups = plan_backups()
        kill = next(key for key in sorted(backups.per_port) if key[0] == "m2o")
        horizon = cp_schedule.makespan
        degrade = simulate_cp(
            demand, cp_schedule, PARAMS, horizon=horizon, faults=killer(*kill)
        )
        reroute = simulate_cp(
            demand,
            cp_schedule,
            PARAMS,
            horizon=horizon,
            faults=killer(*kill),
            backups=backups,
        )
        assert reroute.reroute.n_swaps == 1
        assert reroute.reroute.reparked_mb > 0.0
        assert reroute.stranded_volume < degrade.stranded_volume - 1e-9

    def test_recovery_within_one_phase(self):
        demand, cp_schedule, _, backups = plan_backups()
        kill = next(key for key in sorted(backups.per_port) if key[0] == "m2o")
        reroute = simulate_cp(
            demand,
            cp_schedule,
            PARAMS,
            horizon=cp_schedule.makespan,
            faults=killer(*kill),
            backups=backups,
        )
        max_phase = PARAMS.reconfig_delay + max(
            entry.duration for entry in cp_schedule.entries
        )
        outcome = reroute.reroute
        assert outcome.n_swaps == 1
        assert 0.0 <= outcome.recovery_ms <= max_phase + 1e-9

    def test_unplanned_port_kill_is_invisible(self):
        # A port the schedule never grants cannot strand anything: the
        # injector never discovers it dead, no swap fires, and the two
        # arms agree exactly.
        demand, cp_schedule, _, backups = plan_backups()
        dead = next(
            ("m2o", p) for p in range(N) if ("m2o", p) not in backups.per_port
        )
        horizon = cp_schedule.makespan
        degrade = simulate_cp(
            demand, cp_schedule, PARAMS, horizon=horizon, faults=killer(*dead)
        )
        reroute = simulate_cp(
            demand,
            cp_schedule,
            PARAMS,
            horizon=horizon,
            faults=killer(*dead),
            backups=backups,
        )
        assert reroute.reroute.n_swaps == 0
        assert reroute.stranded_volume == degrade.stranded_volume

    def test_second_outage_falls_back(self):
        # Two planned ports dead at once: the first discovery selects its
        # per-port backup, the second (now two new deaths) the fallback.
        demand, cp_schedule, _, backups = plan_backups()
        m2o_ports = sorted(p for k, p in backups.per_port if k == "m2o")
        if len(m2o_ports) < 2:
            pytest.skip("workload granted fewer than two m2o ports")
        injector = FaultPlan().injector(N)
        injector.mark_dead("m2o", m2o_ports[:2])
        reroute = simulate_cp(
            demand,
            cp_schedule,
            PARAMS,
            horizon=cp_schedule.makespan,
            faults=injector,
            backups=backups,
        )
        reroute.check_conservation()
        outcome = reroute.reroute
        assert outcome.n_swaps >= 1
        assert outcome.swaps[-1].key in (
            FALLBACK_KEY,
            *(backup_key("m2o", p) for p in m2o_ports[:2]),
        )

    def test_full_reschedule_mode_swaps(self):
        demand, cp_schedule, scheduler, _ = plan_backups()
        backups = BackupPlanner(scheduler, full_reschedule=True).plan(
            demand, cp_schedule, PARAMS
        )
        kill = sorted(backups.per_port)[-1]
        assert backups.per_port[kill].replace
        reroute = simulate_cp(
            demand,
            cp_schedule,
            PARAMS,
            horizon=cp_schedule.makespan,
            faults=killer(*kill),
            backups=backups,
        )
        reroute.check_conservation()
        assert reroute.reroute.n_swaps == 1


class TestRerouteTrials:
    def test_reroute_trial_pair(self):
        demand = covering_demand()
        degrade, reroute = reroute_trial(
            demand, SolsticeScheduler(), PARAMS, outage_plan(1.0, seed=3)
        )
        assert degrade.reroute is None
        assert reroute.reroute is not None
        assert reroute.stranded_volume <= degrade.stranded_volume + 1e-9

    def test_zero_rate_trial_identical_arms(self):
        payload = reroute_rate_trial(ocs="fast", radix=16, trial=0, rate=0.0)
        assert payload["swaps"] == 0
        assert payload["degrade_stranded"] == payload["reroute_stranded"]

    def test_rate_trial_payload_is_json_shaped(self):
        payload = reroute_rate_trial(
            ocs="fast", radix=16, trial=1, rate=0.5, rate_index=2
        )
        assert set(payload) == {
            "trial",
            "rate",
            "degrade_stranded",
            "reroute_stranded",
            "swaps",
            "recovery_ms",
            "reparked",
        }


class TestControllerFastReroute:
    def test_requires_composite_paths(self):
        with pytest.raises(ValueError, match="use_composite_paths"):
            EpochController(PARAMS, SolsticeScheduler(), fast_reroute=True)

    def test_epoch_report_carries_reroute_fields(self):
        controller = EpochController(
            PARAMS,
            SolsticeScheduler(),
            use_composite_paths=True,
            fast_reroute=True,
        )
        controller.offer(covering_demand())
        report, _ = controller.run_epoch()
        assert report.backups_armed > 0
        assert report.backup_plan_ms > 0.0
        assert report.reroute_swaps == 0
        assert report.recovery_ms == 0.0

    def test_outage_epoch_reports_swap(self):
        controller = EpochController(
            PARAMS,
            SolsticeScheduler(),
            use_composite_paths=True,
            fast_reroute=True,
            fault_plan=FaultPlan(seed=11, o2m_outage_rate=1.0, m2o_outage_rate=1.0),
        )
        controller.offer(covering_demand())
        report, _ = controller.run_epoch()
        assert report.reroute_swaps >= 1

    def test_without_fast_reroute_reports_zero(self):
        controller = EpochController(
            PARAMS, SolsticeScheduler(), use_composite_paths=True
        )
        controller.offer(covering_demand())
        report, _ = controller.run_epoch()
        assert report.backups_armed == 0
        assert report.backup_plan_ms == 0.0


def fuzz_demands(n: int = 8, max_value: float = 12.0):
    """Strategy: sparse non-negative demand matrices at radix ``n``."""
    return st.tuples(
        arrays(
            np.float64,
            (n, n),
            elements=st.floats(0.0, max_value, allow_nan=False, width=32),
        ),
        arrays(np.bool_, (n, n)),
    ).map(lambda pair: pair[0] * pair[1] * (~np.eye(n, dtype=bool)))


class TestFaultFreeBitIdentityFuzz:
    @given(demand=fuzz_demands())
    @settings(max_examples=25, deadline=None)
    def test_armed_backups_never_change_a_clean_run(self, demand):
        params = fast_ocs_params(8)
        scheduler = CpSwitchScheduler(SolsticeScheduler())
        cp_schedule = scheduler.schedule(demand, params)
        backups = BackupPlanner(scheduler).plan(demand, cp_schedule, params)
        plain = simulate_cp(demand, cp_schedule, params)
        armed = simulate_cp(
            demand, cp_schedule, params, faults=FaultPlan(), backups=backups
        )
        np.testing.assert_array_equal(plain.finish_times, armed.finish_times)
        assert plain.served_eps == armed.served_eps
        assert plain.served_composite == armed.served_composite
        assert plain.stranded_volume == armed.stranded_volume
