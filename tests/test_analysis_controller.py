"""Tests for the closed-loop epoch controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.solstice import SolsticeScheduler
from repro.analysis.controller import EpochController, EpochReport
from repro.switch.params import fast_ocs_params


def skew_arrivals(n: int):
    """Arrival process: a one-to-many burst every epoch."""
    def arrivals(epoch: int) -> np.ndarray:
        rng = np.random.default_rng(1000 + epoch)
        demand = np.zeros((n, n))
        sender = epoch % n
        targets = rng.choice(np.setdiff1d(np.arange(n), [sender]), size=int(0.8 * n), replace=False)
        demand[sender, targets] = rng.uniform(1.0, 1.3, targets.size)
        return demand

    return arrivals


class TestEpochController:
    def test_offer_enqueues(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        arrivals = np.zeros((8, 8))
        arrivals[0, 1] = 4.0
        offered = controller.offer(arrivals)
        assert offered == 4.0
        assert controller.voqs.backlog == pytest.approx(4.0)

    def test_offer_shape_checked(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        with pytest.raises(ValueError):
            controller.offer(np.zeros((4, 4)))

    def test_single_epoch_drains_backlog(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        controller.offer(skew_arrivals(16)(0))
        report, result = controller.run_epoch()
        assert report.kept_up
        assert controller.voqs.backlog == pytest.approx(0.0, abs=1e-6)
        assert report.completion_time == result.completion_time

    def test_multi_epoch_run(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        reports = controller.run(skew_arrivals(16), n_epochs=3)
        assert len(reports) == 3
        assert [r.epoch for r in reports] == [0, 1, 2]
        assert all(r.kept_up for r in reports)
        controller.voqs.check_conservation()

    def test_cp_controller_outpaces_h_controller(self):
        n = 32
        arrivals = skew_arrivals(n)
        h_controller = EpochController(fast_ocs_params(n), SolsticeScheduler())
        cp_controller = EpochController(
            fast_ocs_params(n), SolsticeScheduler(), use_composite_paths=True
        )
        h_reports = h_controller.run(arrivals, n_epochs=2)
        cp_reports = cp_controller.run(arrivals, n_epochs=2)
        for h_report, cp_report in zip(h_reports, cp_reports):
            assert cp_report.completion_time < h_report.completion_time
            assert cp_report.n_configs < h_report.n_configs

    def test_empty_epoch(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        report, _result = controller.run_epoch()
        assert report.offered_volume == 0.0
        assert report.completion_time == 0.0
        assert report.kept_up

    def test_rejects_zero_epochs(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        with pytest.raises(ValueError):
            controller.run(skew_arrivals(8), n_epochs=0)

    def test_total_served_accumulates(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        reports = controller.run(skew_arrivals(16), n_epochs=2)
        total_offered = sum(r.offered_volume for r in reports)
        assert controller.voqs.total_served == pytest.approx(total_offered, rel=1e-9)


def _burst(n: int, volume: float = 10.0) -> np.ndarray:
    demand = np.zeros((n, n))
    demand[0, 1] = volume
    return demand


class TestOfferBookkeeping:
    """offer() / carryover / residual accounting across epochs."""

    def test_offer_accumulates_across_calls(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        assert controller.offer(_burst(8, 3.0)) == pytest.approx(3.0)
        assert controller.offer(_burst(8, 2.0)) == pytest.approx(2.0)
        assert controller.voqs.backlog == pytest.approx(5.0)
        controller.check_conservation()

    def test_carryover_retried_next_epoch(self):
        # A tiny epoch budget strands volume; it must stay queued and be
        # served by later epochs, with the ledger balancing throughout.
        controller = EpochController(
            fast_ocs_params(8), SolsticeScheduler(), epoch_duration=0.1
        )
        controller.offer(_burst(8, 20.0))
        report0, _ = controller.run_epoch(0)
        assert report0.stranded_volume > 0
        assert report0.backlog_after == pytest.approx(report0.stranded_volume, rel=1e-9)
        served_total = report0.served_volume
        for epoch in range(1, 200):
            report, _ = controller.run_epoch(epoch)
            served_total += report.served_volume
            if report.kept_up:
                break
        assert served_total == pytest.approx(20.0, rel=1e-9)
        controller.check_conservation()

    def test_offered_volume_snapshots_queue_not_arrivals(self):
        controller = EpochController(
            fast_ocs_params(8), SolsticeScheduler(), epoch_duration=0.005
        )
        controller.offer(_burst(8, 20.0))
        report0, _ = controller.run_epoch(0)
        controller.offer(_burst(8, 1.0))
        report1, _ = controller.run_epoch(1)
        # Epoch 1's offered volume = fresh arrival + epoch 0's carryover.
        assert report1.offered_volume == pytest.approx(
            1.0 + report0.stranded_volume, rel=1e-9
        )

    def test_residual_bookkeeping_zero_without_truncation(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        controller.offer(_burst(8, 4.0))
        report, _ = controller.run_epoch(0)
        assert report.stranded_volume == pytest.approx(0.0, abs=1e-9)
        assert report.shed_volume == 0.0
        assert report.backlog_after == pytest.approx(0.0, abs=1e-6)
        controller.check_conservation()

    def test_ledger_survives_interleaved_offers(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        total = 0.0
        for k in range(5):
            total += controller.offer(_burst(8, float(k + 1)))
            controller.run_epoch(k)
        assert controller.voqs.total_served == pytest.approx(total, rel=1e-9)
        assert controller.shed_volume_total == 0.0
        assert controller.parked_volume == 0.0
        controller.check_conservation()


class TestDeadlineBackpressure:
    """deadline_s threading + backlog-aware admission (shed / park)."""

    @staticmethod
    def _bounded(n=8, *, step=1.0, deadline=2.5, **overrides):
        from repro.service.deadline import TickClock

        overrides.setdefault("use_composite_paths", True)
        overrides.setdefault("epoch_duration", 0.5)
        return EpochController(
            fast_ocs_params(n),
            SolsticeScheduler(),
            deadline_s=deadline,
            deadline_clock=TickClock(step=step),
            **overrides,
        )

    def test_deadline_requires_composite_paths(self):
        with pytest.raises(ValueError, match="use_composite_paths"):
            EpochController(fast_ocs_params(8), SolsticeScheduler(), deadline_s=1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_rejects_bad_deadline(self, bad):
        with pytest.raises(ValueError, match="deadline_s"):
            EpochController(
                fast_ocs_params(8),
                SolsticeScheduler(),
                use_composite_paths=True,
                deadline_s=bad,
            )

    def test_rejects_bad_backpressure_knobs(self):
        with pytest.raises(ValueError, match="max_backlog"):
            EpochController(fast_ocs_params(8), SolsticeScheduler(), max_backlog=0.0)
        with pytest.raises(ValueError, match="overflow_policy"):
            EpochController(
                fast_ocs_params(8), SolsticeScheduler(), overflow_policy="drop"
            )
        with pytest.raises(ValueError, match="backpressure_after_misses"):
            EpochController(
                fast_ocs_params(8), SolsticeScheduler(), backpressure_after_misses=0
            )

    def test_report_threads_anytime_outcome(self):
        controller = self._bounded()
        controller.offer(_burst(8, 10.0))
        report, _ = controller.run_epoch(0)
        assert report.deadline_hit
        assert report.fallback_level > 0
        assert report.schedule_ms > 0
        controller.check_conservation()

    def test_unbounded_report_has_level_zero(self):
        controller = EpochController(
            fast_ocs_params(8), SolsticeScheduler(), use_composite_paths=True
        )
        controller.offer(_burst(8, 10.0))
        report, _ = controller.run_epoch(0)
        assert not report.deadline_hit
        assert report.fallback_level == 0
        assert report.schedule_age_epochs == 0

    def test_shed_engages_after_misses_and_is_ledgered(self):
        controller = self._bounded(max_backlog=5.0, overflow_policy="shed")
        # Epoch 0: no misses yet, everything admitted.
        assert controller.offer(_burst(8, 10.0)) == pytest.approx(10.0)
        report0, _ = controller.run_epoch(0)
        assert report0.deadline_hit and report0.shed_volume == 0.0
        # Epoch 1: a miss is on the books -> admission bounded by headroom.
        backlog = controller.voqs.backlog
        admitted = controller.offer(_burst(8, 10.0))
        assert admitted == pytest.approx(max(0.0, 5.0 - backlog))
        report1, _ = controller.run_epoch(1)
        assert report1.shed_volume == pytest.approx(10.0 - admitted)
        assert controller.shed_volume_total == pytest.approx(10.0 - admitted)
        controller.check_conservation()

    def test_park_reoffers_instead_of_dropping(self):
        controller = self._bounded(max_backlog=5.0, overflow_policy="park")
        controller.offer(_burst(8, 10.0))
        controller.run_epoch(0)
        controller.offer(_burst(8, 10.0))
        parked_after = controller.parked_volume
        assert parked_after > 0
        assert controller.shed_volume_total == 0.0
        controller.check_conservation()
        # Parked volume re-enters at the next offer.
        controller.run_epoch(1)
        controller.offer(np.zeros((8, 8)))
        controller.check_conservation()

    def test_every_bounded_epoch_yields_valid_schedule(self):
        controller = self._bounded(max_backlog=25.0)
        for epoch in range(5):
            controller.offer(_burst(8, 10.0))
            report, result = controller.run_epoch(epoch)
            result.check_conservation()
            assert report.fallback_level in (0, 1, 2, 3, 4)
        controller.check_conservation()


class TestKeptUpScaling:
    """kept_up must use a *relative* residual cutoff (VOLUME_TOL-scaled)."""

    def _report(self, offered: float, backlog: float) -> "EpochReport":
        return EpochReport(
            epoch=0,
            offered_volume=offered,
            scheduled_volume=offered,
            served_volume=offered - backlog,
            completion_time=1.0,
            n_configs=1,
            makespan=1.0,
            backlog_after=backlog,
        )

    def test_large_epoch_float_dust_still_kept_up(self):
        # 0.25 Mb of float dust after a fully-drained 1e9 Mb epoch is
        # 2.5e-10 relative; the old absolute cutoff (VOLUME_TOL * 1e3)
        # misreported this as falling behind.
        assert self._report(1e9, 0.25).kept_up

    def test_cutoff_scales_with_offered_volume(self):
        assert self._report(1e9, 1.0).kept_up  # exactly VOLUME_TOL * 1e9
        assert not self._report(1e9, 2.5).kept_up  # genuine residual

    def test_small_epoch_cutoff_stays_strict(self):
        # max(1, total) floors the scale: tiny epochs keep the absolute
        # VOLUME_TOL cutoff rather than an even smaller relative one.
        assert not self._report(1.0, 1e-6).kept_up
        assert self._report(1.0, 5e-10).kept_up
        assert self._report(0.0, 0.0).kept_up

    def test_radix128_gigabit_epoch_keeps_up(self):
        # End-to-end acceptance: a radix-128 epoch scaled past 1e9 Mb of
        # offered volume drains and *reports* kept_up despite float dust.
        n = 128
        controller = EpochController(fast_ocs_params(n), SolsticeScheduler())
        demand = skew_arrivals(n)(0)
        demand *= 1.5e9 / demand.sum()
        offered = controller.offer(demand)
        assert offered >= 1e9
        report, _result = controller.run_epoch()
        assert report.offered_volume >= 1e9
        assert report.kept_up
        assert controller.voqs.backlog <= 1e-9 * offered
        controller.check_conservation()
