"""Tests for the closed-loop epoch controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.solstice import SolsticeScheduler
from repro.analysis.controller import EpochController
from repro.switch.params import fast_ocs_params


def skew_arrivals(n: int):
    """Arrival process: a one-to-many burst every epoch."""
    def arrivals(epoch: int) -> np.ndarray:
        rng = np.random.default_rng(1000 + epoch)
        demand = np.zeros((n, n))
        sender = epoch % n
        targets = rng.choice(np.setdiff1d(np.arange(n), [sender]), size=int(0.8 * n), replace=False)
        demand[sender, targets] = rng.uniform(1.0, 1.3, targets.size)
        return demand

    return arrivals


class TestEpochController:
    def test_offer_enqueues(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        arrivals = np.zeros((8, 8))
        arrivals[0, 1] = 4.0
        offered = controller.offer(arrivals)
        assert offered == 4.0
        assert controller.voqs.backlog == pytest.approx(4.0)

    def test_offer_shape_checked(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        with pytest.raises(ValueError):
            controller.offer(np.zeros((4, 4)))

    def test_single_epoch_drains_backlog(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        controller.offer(skew_arrivals(16)(0))
        report, result = controller.run_epoch()
        assert report.kept_up
        assert controller.voqs.backlog == pytest.approx(0.0, abs=1e-6)
        assert report.completion_time == result.completion_time

    def test_multi_epoch_run(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        reports = controller.run(skew_arrivals(16), n_epochs=3)
        assert len(reports) == 3
        assert [r.epoch for r in reports] == [0, 1, 2]
        assert all(r.kept_up for r in reports)
        controller.voqs.check_conservation()

    def test_cp_controller_outpaces_h_controller(self):
        n = 32
        arrivals = skew_arrivals(n)
        h_controller = EpochController(fast_ocs_params(n), SolsticeScheduler())
        cp_controller = EpochController(
            fast_ocs_params(n), SolsticeScheduler(), use_composite_paths=True
        )
        h_reports = h_controller.run(arrivals, n_epochs=2)
        cp_reports = cp_controller.run(arrivals, n_epochs=2)
        for h_report, cp_report in zip(h_reports, cp_reports):
            assert cp_report.completion_time < h_report.completion_time
            assert cp_report.n_configs < h_report.n_configs

    def test_empty_epoch(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        report, _result = controller.run_epoch()
        assert report.offered_volume == 0.0
        assert report.completion_time == 0.0
        assert report.kept_up

    def test_rejects_zero_epochs(self):
        controller = EpochController(fast_ocs_params(8), SolsticeScheduler())
        with pytest.raises(ValueError):
            controller.run(skew_arrivals(8), n_epochs=0)

    def test_total_served_accumulates(self):
        controller = EpochController(fast_ocs_params(16), SolsticeScheduler())
        reports = controller.run(skew_arrivals(16), n_epochs=2)
        total_offered = sum(r.offered_volume for r in reports)
        assert controller.voqs.total_served == pytest.approx(total_offered, rel=1e-9)
