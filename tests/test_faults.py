"""Tests for the fault-injection subsystem.

Covers the :mod:`repro.faults` package itself (plan validation, injector
determinism), the engine/simulator hooks (EPS degradation, composite
release), the graceful cp-Switch → h-Switch degradation path, and the
closed-loop controller's dead-port exclusion.  The load-bearing invariants:

* a zero-fault plan reproduces the fault-free simulation **bit-identically**;
* volume conservation holds under every fault mix;
* demand parked on a dead composite path is *released*, never lost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.controller import EpochController
from repro.analysis.robustness import fault_trial
from repro.core.reduction import cp_switch_demand_reduction
from repro.core.scheduler import CpSwitchScheduler
from repro.faults import FaultInjector, FaultPlan, FaultSummary, as_injector
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.sim.engine import FluidEngine
from repro.switch.params import fast_ocs_params


class TestFaultPlan:
    def test_default_is_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not FaultPlan(circuit_failure_rate=0.1).is_null
        assert not FaultPlan(o2m_outage_rate=1.0).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reconfig_failure_rate": -0.1},
            {"reconfig_failure_rate": 1.1},
            {"reconfig_straggle_rate": 2.0},
            {"circuit_failure_rate": -1.0},
            {"o2m_outage_rate": 1.5},
            {"m2o_outage_rate": -0.5},
            {"eps_degradation_rate": 7.0},
            {"straggle_factor": 0.5},
        ],
    )
    def test_invalid_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_zero_degradation_factor_rejected(self):
        # A factor of exactly 0 would leave a degraded port's queues
        # undrainable and the open-ended final drain spinning forever.
        with pytest.raises(ValueError):
            FaultPlan(eps_degradation_factor=0.0)
        FaultPlan(eps_degradation_factor=1.0)  # boundary is legal
        FaultPlan(eps_degradation_factor=1e-6)

    def test_with_seed(self):
        plan = FaultPlan(seed=1, circuit_failure_rate=0.2)
        reseeded = plan.with_seed(7)
        assert reseeded.seed == 7
        assert reseeded.circuit_failure_rate == 0.2
        assert plan.seed == 1  # original untouched (frozen)

    def test_uniform_couples_all_channels(self):
        plan = FaultPlan.uniform(0.3, seed=5)
        assert plan.seed == 5
        for name in (
            "reconfig_failure_rate",
            "reconfig_straggle_rate",
            "circuit_failure_rate",
            "o2m_outage_rate",
            "m2o_outage_rate",
            "eps_degradation_rate",
        ):
            assert getattr(plan, name) == 0.3
        assert FaultPlan.uniform(0.0).is_null


class TestFaultInjector:
    def test_same_seed_same_realization(self):
        plan = FaultPlan(seed=3, reconfig_failure_rate=0.5, reconfig_straggle_rate=0.5)
        a = plan.injector(8)
        b = plan.injector(8)
        draws_a = [a.reconfigure(0.1) for _ in range(20)]
        draws_b = [b.reconfigure(0.1) for _ in range(20)]
        assert draws_a == draws_b

    def test_streams_are_independent(self):
        plan = FaultPlan(seed=3, reconfig_failure_rate=0.5)
        a = plan.injector(8, stream=0)
        b = plan.injector(8, stream=1)
        draws_a = [a.reconfigure(0.1)[1] for _ in range(24)]
        draws_b = [b.reconfigure(0.1)[1] for _ in range(24)]
        assert draws_a != draws_b

    def test_null_plan_asks_no_entropy(self):
        injector = FaultPlan().injector(8)
        assert injector.reconfigure(0.15) == (0.15, True)
        circuits = np.eye(8, dtype=np.int8)
        assert injector.surviving_circuits(circuits) is circuits
        assert injector.composite_port_up("o2m", 0)
        assert injector.eps_port_scale is None
        assert injector.summary.total_events == 0

    def test_forced_reconfig_failure(self):
        injector = FaultPlan(reconfig_failure_rate=1.0).injector(8)
        delay, established = injector.reconfigure(0.15)
        assert delay == 0.15  # the δ penalty is still paid
        assert not established
        assert injector.summary.reconfig_failures == 1

    def test_forced_straggler_multiplies_delta(self):
        plan = FaultPlan(reconfig_straggle_rate=1.0, straggle_factor=4.0)
        injector = plan.injector(8)
        delay, established = injector.reconfigure(0.1)
        assert established
        assert delay == pytest.approx(0.4)
        assert injector.summary.extra_reconfig_delay == pytest.approx(0.3)

    def test_forced_circuit_failures_zero_all(self):
        injector = FaultPlan(circuit_failure_rate=1.0).injector(8)
        circuits = np.eye(8, dtype=np.int8)
        survived = injector.surviving_circuits(circuits)
        assert survived is not circuits
        assert survived.sum() == 0
        assert circuits.sum() == 8  # input never mutated
        assert injector.summary.failed_circuits == 8

    def test_composite_outage_is_permanent_and_drawn_once(self):
        injector = FaultPlan(o2m_outage_rate=1.0).injector(8)
        assert not injector.composite_port_up("o2m", 3)
        assert not injector.composite_port_up("o2m", 3)
        assert injector.summary.dead_o2m_ports == (3,)
        # m2o channel is off: its ports stay up.
        assert injector.composite_port_up("m2o", 3)

    def test_survivor_draw_not_repeated(self):
        # rate 0.5, seed chosen so port 0 survives its first draw; the
        # surviving port must not be re-rolled on later grants.
        plan = FaultPlan(seed=0, o2m_outage_rate=0.5)
        injector = plan.injector(8)
        first = injector.composite_port_up("o2m", 0)
        assert injector.composite_port_up("o2m", 0) == first

    def test_mark_dead_preseeds(self):
        injector = FaultPlan(o2m_outage_rate=0.0).injector(8)
        injector.mark_dead("o2m", {2, 5})
        assert not injector.composite_port_up("o2m", 2)
        assert not injector.composite_port_up("o2m", 5)
        assert injector.composite_port_up("o2m", 3)

    def test_eps_degradation_draw(self):
        plan = FaultPlan(eps_degradation_rate=1.0, eps_degradation_factor=0.25)
        injector = plan.injector(8)
        scale = injector.eps_port_scale
        np.testing.assert_allclose(scale, np.full(8, 0.25))
        assert injector.summary.degraded_eps_ports == tuple(range(8))

    def test_invalid_kind_rejected(self):
        injector = FaultPlan().injector(8)
        with pytest.raises(ValueError):
            injector.composite_port_up("sideways", 0)

    def test_as_injector_normalization(self):
        assert as_injector(None, 8) is None
        from_plan = as_injector(FaultPlan(seed=9), 8)
        assert isinstance(from_plan, FaultInjector)
        assert as_injector(from_plan, 8) is from_plan
        with pytest.raises(ValueError):
            as_injector(from_plan, 16)  # built for the wrong radix
        with pytest.raises(TypeError):
            as_injector(0.5, 8)


class TestReleaseComposite:
    def _engine(self, fast_params):
        demand = np.zeros((8, 8))
        demand[0, 1:5] = 2.0
        engine = FluidEngine(demand, fast_params)
        engine.assign_composite(demand.copy())  # everything parked composite
        return engine

    def test_release_moves_volume_to_regular(self, fast_params):
        engine = self._engine(fast_params)
        released = engine.release_composite("o2m", 0)
        assert released == pytest.approx(8.0)
        assert engine.composite[0, :].sum() == 0.0
        np.testing.assert_allclose(engine.regular[0, 1:5], 2.0)
        assert engine.released_composite == pytest.approx(8.0)
        # Total residual unchanged: release moves volume, never loses it.
        assert engine.residual_total() == pytest.approx(8.0)

    def test_release_respects_lane_mask(self, fast_params):
        engine = self._engine(fast_params)
        mask = np.zeros(8, dtype=bool)
        mask[1] = True
        released = engine.release_composite("o2m", 0, mask)
        assert released == pytest.approx(2.0)
        assert engine.composite[0, 1] == 0.0
        assert engine.composite[0, 2] == pytest.approx(2.0)

    def test_second_release_is_empty(self, fast_params):
        engine = self._engine(fast_params)
        engine.release_composite("o2m", 0)
        assert engine.release_composite("o2m", 0) == 0.0
        assert engine.released_composite == pytest.approx(8.0)

    def test_released_volume_drains_on_regular_paths(self, fast_params):
        engine = self._engine(fast_params)
        engine.release_composite("o2m", 0)
        engine.run_phase(None)  # open-ended EPS drain
        assert engine.residual_total() == pytest.approx(0.0, abs=1e-9)
        assert engine.served_eps == pytest.approx(8.0)

    def test_invalid_args_rejected(self, fast_params):
        engine = self._engine(fast_params)
        with pytest.raises(ValueError):
            engine.release_composite("diagonal", 0)
        with pytest.raises(ValueError):
            engine.release_composite("o2m", 99)


class TestEpsDegradationPhase:
    def test_scale_validated(self, fast_params):
        demand = np.zeros((8, 8))
        demand[0, 1] = 1.0
        engine = FluidEngine(demand, fast_params)
        with pytest.raises(ValueError):
            engine.run_phase(0.1, eps_port_scale=np.ones(4))
        with pytest.raises(ValueError):
            engine.run_phase(0.1, eps_port_scale=np.full(8, 1.5))

    def test_degraded_port_serves_slower(self, fast_params):
        demand = np.zeros((8, 8))
        demand[0, 1] = 1.0
        scale = np.ones(8)
        scale[1] = 0.5  # receiver at half rate
        baseline = FluidEngine(demand, fast_params)
        baseline.run_phase(None)
        degraded = FluidEngine(demand, fast_params)
        degraded.run_phase(None, eps_port_scale=scale)
        assert degraded.clock == pytest.approx(2.0 * baseline.clock)
        assert degraded.residual_total() == pytest.approx(0.0, abs=1e-9)


class TestZeroFaultBitIdentical:
    def test_hybrid(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = SolsticeScheduler().schedule(skewed_demand16, params)
        base = simulate_hybrid(skewed_demand16, schedule, params)
        nulled = simulate_hybrid(skewed_demand16, schedule, params, faults=FaultPlan())
        assert nulled.completion_time == base.completion_time
        assert nulled.served_eps == base.served_eps
        assert nulled.served_ocs_direct == base.served_ocs_direct
        np.testing.assert_array_equal(nulled.finish_times, base.finish_times)

    def test_cp(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        base = simulate_cp(skewed_demand16, schedule, params)
        nulled = simulate_cp(skewed_demand16, schedule, params, faults=FaultPlan())
        assert nulled.completion_time == base.completion_time
        assert nulled.served_composite == base.served_composite
        assert nulled.served_eps == base.served_eps
        np.testing.assert_array_equal(nulled.finish_times, base.finish_times)
        assert nulled.released_composite == 0.0
        assert nulled.fault_summary is not None
        assert nulled.fault_summary.total_events == 0

    def test_null_plan_seed_is_irrelevant(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = SolsticeScheduler().schedule(skewed_demand16, params)
        a = simulate_hybrid(skewed_demand16, schedule, params, faults=FaultPlan(seed=1))
        b = simulate_hybrid(
            skewed_demand16, schedule, params, faults=FaultPlan(seed=999)
        )
        np.testing.assert_array_equal(a.finish_times, b.finish_times)


class TestGracefulDegradation:
    def test_dead_composite_ports_fall_back_to_regular(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        base = simulate_cp(skewed_demand16, schedule, params)
        assert base.served_composite > 0  # the workload does use composites
        plan = FaultPlan(seed=3, o2m_outage_rate=1.0, m2o_outage_rate=1.0)
        faulted = simulate_cp(skewed_demand16, schedule, params, faults=plan)
        faulted.check_conservation()
        assert faulted.finished  # degradation never strands volume
        assert faulted.served_composite == 0.0
        assert faulted.released_composite > 0.0
        assert faulted.completion_time > base.completion_time
        assert faulted.fault_summary.composite_outages > 0

    def test_all_circuits_fail_eps_still_serves(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = SolsticeScheduler().schedule(skewed_demand16, params)
        base = simulate_hybrid(skewed_demand16, schedule, params)
        plan = FaultPlan(seed=1, circuit_failure_rate=1.0)
        faulted = simulate_hybrid(skewed_demand16, schedule, params, faults=plan)
        faulted.check_conservation()
        assert faulted.finished
        assert faulted.served_ocs_direct == 0.0
        assert faulted.served_eps == pytest.approx(faulted.total_demand)
        assert faulted.completion_time >= base.completion_time

    def test_reconfig_failure_loses_hold_phase(self, skewed_demand16):
        params = fast_ocs_params(16)
        for simulate, schedule in (
            (simulate_hybrid, SolsticeScheduler().schedule(skewed_demand16, params)),
            (
                simulate_cp,
                CpSwitchScheduler(SolsticeScheduler()).schedule(
                    skewed_demand16, params
                ),
            ),
        ):
            base = simulate(skewed_demand16, schedule, params)
            plan = FaultPlan(seed=2, reconfig_failure_rate=1.0)
            faulted = simulate(skewed_demand16, schedule, params, faults=plan)
            faulted.check_conservation()
            assert faulted.finished
            assert faulted.served_ocs_direct == 0.0
            assert faulted.completion_time > base.completion_time
            assert faulted.fault_summary.reconfig_failures == schedule.n_configs

    def test_stragglers_stretch_completion(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = SolsticeScheduler().schedule(skewed_demand16, params)
        base = simulate_hybrid(skewed_demand16, schedule, params)
        plan = FaultPlan(seed=2, reconfig_straggle_rate=1.0, straggle_factor=6.0)
        faulted = simulate_hybrid(skewed_demand16, schedule, params, faults=plan)
        faulted.check_conservation()
        assert faulted.finished
        assert faulted.completion_time > base.completion_time
        assert faulted.fault_summary.reconfig_straggles == schedule.n_configs

    def test_eps_degradation_slows_but_finishes(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        base = simulate_cp(skewed_demand16, schedule, params)
        plan = FaultPlan(seed=4, eps_degradation_rate=1.0, eps_degradation_factor=0.5)
        faulted = simulate_cp(skewed_demand16, schedule, params, faults=plan)
        faulted.check_conservation()
        assert faulted.finished
        assert faulted.completion_time > base.completion_time
        assert len(faulted.fault_summary.degraded_eps_ports) == 16

    def test_delivered_plus_stranded_ledger(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        plan = FaultPlan.uniform(0.4, seed=11)
        # Truncate so something is genuinely stranded.
        result = simulate_cp(
            skewed_demand16, schedule, params, horizon=0.05, faults=plan
        )
        result.check_conservation()
        assert result.stranded_volume >= 0.0
        assert result.delivered_volume + result.stranded_volume == pytest.approx(
            result.total_demand, rel=1e-6
        )


class TestBlockedReduction:
    def test_blocked_ports_never_qualify(self, skewed_demand16):
        full = cp_switch_demand_reduction(skewed_demand16, 2, 10.0)
        assert full.o2m_loads[0] > 0 and full.m2o_loads[15] > 0
        masked = cp_switch_demand_reduction(
            skewed_demand16, 2, 10.0, blocked_o2m={0}, blocked_m2o=[15]
        )
        assert masked.o2m_loads[0] == 0.0
        assert masked.m2o_loads[15] == 0.0
        # Volume conserved: blocked entries stay on the regular paths.
        assert masked.reduced.sum() == pytest.approx(skewed_demand16.sum())
        np.testing.assert_allclose(
            masked.reduced[:16, :16] + masked.filtered, skewed_demand16
        )

    def test_bool_mask_accepted(self, skewed_demand16):
        mask = np.zeros(16, dtype=bool)
        mask[0] = True
        masked = cp_switch_demand_reduction(skewed_demand16, 2, 10.0, blocked_o2m=mask)
        assert masked.o2m_loads[0] == 0.0

    def test_invalid_specs_rejected(self, skewed_demand16):
        with pytest.raises(ValueError):
            cp_switch_demand_reduction(skewed_demand16, 2, 10.0, blocked_o2m=[16])
        with pytest.raises(ValueError):
            cp_switch_demand_reduction(
                skewed_demand16, 2, 10.0, blocked_m2o=np.zeros(4, dtype=bool)
            )

    def test_scheduler_forwards_blocking(self, skewed_demand16):
        params = fast_ocs_params(16)
        schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params, blocked_o2m={0}, blocked_m2o={15}
        )
        assert all(
            entry.o2m_port != 0 and entry.m2o_port != 15 for entry in schedule.entries
        )
        assert schedule.reduction.filtered.sum() == 0.0


class TestControllerUnderFaults:
    def _arrivals(self, n):
        def arrivals(epoch: int) -> np.ndarray:
            demand = np.zeros((n, n))
            demand[0, 1 : n - 1] = 1.2
            demand[1 : n - 1, n - 1] += 1.1
            return demand

        return arrivals

    def test_dead_ports_detected_and_excluded(self):
        n = 16
        plan = FaultPlan(seed=5, o2m_outage_rate=1.0, m2o_outage_rate=1.0)
        controller = EpochController(
            fast_ocs_params(n),
            SolsticeScheduler(),
            use_composite_paths=True,
            fault_plan=plan,
        )
        reports = controller.run(self._arrivals(n), n_epochs=2)
        first, second = reports
        # Epoch 0 grants composites, they die, demand falls back.
        assert first.released_composite > 0.0
        assert first.dead_o2m or first.dead_m2o
        assert first.kept_up  # fallback drained everything anyway
        # Epoch 1 excludes the dead ports up front: nothing is parked on
        # them, so nothing needs releasing.
        dead_o2m, dead_m2o = controller.dead_composite_ports
        assert second.dead_o2m == dead_o2m and second.dead_m2o == dead_m2o
        assert second.released_composite == 0.0
        assert second.kept_up
        controller.voqs.check_conservation()

    def test_stranded_backlog_retried(self):
        n = 16
        plan = FaultPlan(seed=1, reconfig_straggle_rate=1.0, straggle_factor=8.0)
        controller = EpochController(
            fast_ocs_params(n),
            SolsticeScheduler(),
            epoch_duration=0.2,  # too short to finish under stragglers
            fault_plan=plan,
        )
        controller.offer(self._arrivals(n)(0))
        first, _ = controller.run_epoch(0)
        assert first.stranded_volume > 0.0
        assert first.backlog_after == pytest.approx(first.stranded_volume, rel=1e-9)
        # No new arrivals: the stranded volume is rescheduled and drains.
        backlog = first.backlog_after
        for epoch in range(1, 40):
            report, _ = controller.run_epoch(epoch)
            assert report.backlog_after <= backlog + 1e-9
            backlog = report.backlog_after
            if report.kept_up:
                break
        assert backlog == pytest.approx(0.0, abs=1e-6)
        controller.voqs.check_conservation()

    def test_fault_free_controller_unchanged_by_null_plan(self):
        n = 16
        base = EpochController(
            fast_ocs_params(n), SolsticeScheduler(), use_composite_paths=True
        )
        nulled = EpochController(
            fast_ocs_params(n),
            SolsticeScheduler(),
            use_composite_paths=True,
            fault_plan=FaultPlan(),
        )
        base_reports = base.run(self._arrivals(n), n_epochs=2)
        null_reports = nulled.run(self._arrivals(n), n_epochs=2)
        for b, z in zip(base_reports, null_reports):
            assert z.completion_time == b.completion_time
            assert z.served_volume == b.served_volume
            assert z.dead_o2m == () and z.dead_m2o == ()


class TestFaultTrial:
    def test_zero_rate_reproduces_clean_gap(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_result, cp_result = fault_trial(
            skewed_demand16, SolsticeScheduler(), params, FaultPlan.uniform(0.0)
        )
        assert cp_result.completion_time < h_result.completion_time
        assert h_result is not cp_result

    def test_conservation_checked_under_heavy_faults(self, skewed_demand16):
        params = fast_ocs_params(16)
        h_result, cp_result = fault_trial(
            skewed_demand16,
            SolsticeScheduler(),
            params,
            FaultPlan.uniform(0.6, seed=13),
        )
        assert h_result.finished and cp_result.finished
        assert h_result.fault_summary is not None
        assert cp_result.fault_summary is not None


class TestFaultSummary:
    def test_event_accounting(self):
        summary = FaultSummary(
            reconfig_failures=2,
            reconfig_straggles=1,
            failed_circuits=3,
            dead_o2m_ports=(1,),
            dead_m2o_ports=(4, 5),
            degraded_eps_ports=(0, 2),
        )
        assert summary.composite_outages == 3
        assert summary.total_events == 2 + 1 + 3 + 3 + 2
