"""Tests for remaining behaviours not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.aggregate import Aggregate
from repro.hybrid.base import make_scheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.hybrid.tdm import TdmScheduler
from repro.sim import simulate_hybrid
from repro.switch.demand import DemandMatrix
from repro.switch.params import fast_ocs_params
from repro.workloads.base import empty_spec


class TestMakeScheduler:
    def test_by_name_case_insensitive(self):
        assert isinstance(make_scheduler("Solstice"), SolsticeScheduler)
        assert isinstance(make_scheduler("ECLIPSE"), EclipseScheduler)
        assert isinstance(make_scheduler("tdm"), TdmScheduler)

    def test_kwargs_forwarded(self):
        eclipse = make_scheduler("eclipse", window=5.0, grid_size=8)
        assert eclipse.window == 5.0
        assert eclipse.grid_size == 8
        solstice = make_scheduler("solstice", max_configs=7)
        assert solstice.max_configs == 7

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("varys")


class TestDemandStats:
    def test_skewness_positive_for_elephant_mice_mix(self):
        demand = np.zeros((8, 8))
        demand[0, 1:7] = 1.0  # mice
        demand[1, 0] = 50.0  # elephant
        stats = DemandMatrix(demand).stats()
        assert stats.skewness > 1.0

    def test_skewness_zero_for_uniform(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = demand[1, 2] = demand[2, 3] = 2.0
        stats = DemandMatrix(demand).stats()
        assert stats.skewness == pytest.approx(0.0)

    def test_str_render(self):
        text = str(DemandMatrix(np.eye(3) * 0 + np.diag([1.0, 2.0, 3.0])).stats())
        assert "n=3" in text and "nnz=3" in text

    def test_empty_stats(self):
        stats = DemandMatrix(np.zeros((3, 3))).stats()
        assert stats.total_volume == 0.0
        assert stats.max_entry == 0.0
        assert stats.skewness == 0.0


class TestEmptySpec:
    def test_identity_for_merge(self):
        from repro.workloads.base import merge_specs
        from repro.workloads.skewed import SkewedWorkload

        spec = SkewedWorkload().generate(8, np.random.default_rng(0))
        merged = merge_specs(spec, empty_spec(8))
        np.testing.assert_array_equal(merged.demand, spec.demand)
        np.testing.assert_array_equal(merged.skewed_mask, spec.skewed_mask)


class TestAggregateFormatting:
    def test_str_includes_stderr(self):
        agg = Aggregate(mean=1.5, std=0.2, minimum=1.0, maximum=2.0, count=4)
        text = str(agg)
        assert "1.5" in text and "n=4" in text

    def test_format_spec(self):
        agg = Aggregate(mean=3.14159, std=0.0, minimum=3.14159, maximum=3.14159, count=1)
        assert f"{agg:.1f}" == "3.1"
        assert f"{agg}" == "3.14"  # default .3g


class TestSegmentsAccounting:
    def test_segment_volume_matches_served_totals(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        ocs_integral = sum(s.ocs_direct_rate * s.duration for s in result.segments)
        eps_integral = sum(s.eps_rate * s.duration for s in result.segments)
        assert ocs_integral == pytest.approx(result.served_ocs_direct, rel=1e-9)
        assert eps_integral == pytest.approx(result.served_eps, rel=1e-9)

    def test_segment_durations_non_negative(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        result = simulate_hybrid(sparse_demand, schedule, params)
        assert all(segment.duration >= 0 for segment in result.segments)


class TestTdmQuantumDefault:
    def test_default_quantum_from_mean_entry(self):
        params = fast_ocs_params(4)
        demand = np.zeros((4, 4))
        demand[0, 1] = 10.0
        demand[1, 2] = 30.0
        scheduler = TdmScheduler()
        schedule = scheduler.schedule(demand, params)
        # Mean entry 20 Mb at Co = 100 -> quantum 0.2 ms.
        assert schedule.entries[0].duration == pytest.approx(0.2)
