"""Tests for the Eclipse scheduler: duration grid and greedy loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hybrid.eclipse.durations import candidate_durations
from repro.hybrid.eclipse.scheduler import EclipseScheduler
from repro.switch.params import fast_ocs_params, slow_ocs_params


class TestCandidateDurations:
    def test_includes_drain_times_and_window_edge(self):
        residual = np.array([[10.0, 0.0], [0.0, 50.0]])
        durations = candidate_durations(residual, ocs_rate=100.0, max_duration=1.0)
        assert 0.1 in durations  # 10 Mb / 100
        assert 0.5 in durations  # 50 Mb / 100
        assert 1.0 in durations  # window edge

    def test_clipped_to_max_duration(self):
        residual = np.array([[500.0]])
        durations = candidate_durations(residual, ocs_rate=100.0, max_duration=1.0)
        assert durations.max() == pytest.approx(1.0)

    def test_empty_when_no_time(self):
        residual = np.array([[10.0]])
        assert candidate_durations(residual, 100.0, 0.0).size == 0

    def test_empty_when_no_demand(self):
        assert candidate_durations(np.zeros((3, 3)), 100.0, 1.0).size == 0

    def test_grid_size_caps_candidates(self):
        rng = np.random.default_rng(0)
        residual = rng.uniform(1, 100, (30, 30))
        durations = candidate_durations(residual, 100.0, 10.0, grid_size=8)
        assert durations.size <= 9  # grid + window edge

    def test_all_positive_and_sorted(self):
        rng = np.random.default_rng(1)
        residual = rng.uniform(0, 100, (10, 10))
        durations = candidate_durations(residual, 100.0, 2.0)
        assert (durations > 0).all()
        assert (np.diff(durations) > 0).all()

    def test_rejects_small_grid(self):
        with pytest.raises(ValueError):
            candidate_durations(np.ones((2, 2)), 100.0, 1.0, grid_size=1)


class TestEclipseScheduler:
    def test_window_defaults_match_paper_pairing(self):
        scheduler = EclipseScheduler()
        assert scheduler.resolved_window(fast_ocs_params(8)) == pytest.approx(1.0)
        assert scheduler.resolved_window(slow_ocs_params(8)) == pytest.approx(100.0)

    def test_explicit_window_wins(self):
        scheduler = EclipseScheduler(window=5.0)
        assert scheduler.resolved_window(fast_ocs_params(8)) == 5.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            EclipseScheduler(window=-1.0).resolved_window(fast_ocs_params(8))

    def test_schedule_fits_window(self, sparse_demand):
        params = fast_ocs_params(8)
        scheduler = EclipseScheduler()
        schedule = scheduler.schedule(sparse_demand, params)
        assert schedule.makespan <= scheduler.resolved_window(params) + 1e-9

    def test_single_flow_served_fully(self):
        params = fast_ocs_params(4)
        demand = np.zeros((4, 4))
        demand[0, 3] = 40.0
        schedule = EclipseScheduler().schedule(demand, params)
        served = schedule.served_volume(demand, params.ocs_rate)
        assert served == pytest.approx(40.0)

    def test_greedy_prefers_dense_value(self):
        # A full permutation of heavy flows should be served before a lone
        # light flow.
        params = fast_ocs_params(4)
        demand = np.diag([30.0, 30.0, 30.0, 30.0])
        demand[0, 1] = 0.5
        schedule = EclipseScheduler().schedule(demand, params)
        first = schedule[0]
        assert first.permutation[np.arange(4), np.arange(4)].sum() == 4

    def test_permutations_are_pruned_partial(self, skewed_demand):
        # Circuits carrying nothing are removed, so composite grants can't
        # be spuriously read downstream.
        params = fast_ocs_params(8)
        schedule = EclipseScheduler().schedule(skewed_demand, params)
        for entry in schedule:
            rows, cols = np.nonzero(entry.permutation)
            assert rows.size > 0

    def test_empty_demand_gives_empty_schedule(self):
        params = fast_ocs_params(4)
        schedule = EclipseScheduler().schedule(np.zeros((4, 4)), params)
        assert schedule.n_configs == 0

    def test_served_volume_monotone_in_window(self, sparse_demand):
        params = fast_ocs_params(8)
        small = EclipseScheduler(window=0.2).schedule(sparse_demand, params)
        large = EclipseScheduler(window=1.0).schedule(sparse_demand, params)
        assert large.served_volume(sparse_demand, params.ocs_rate) >= small.served_volume(
            sparse_demand, params.ocs_rate
        ) - 1e-9

    def test_skewed_demand_fast_ocs_config_count(self):
        # Paper §3.2: Eclipse on pure skewed demand with the fast OCS uses
        # roughly 31-35 configurations in its 1 ms window (h-Switch).
        rng = np.random.default_rng(42)
        n = 32
        demand = np.zeros((n, n))
        dests = rng.choice(np.arange(1, n), size=26, replace=False)
        demand[0, dests] = rng.uniform(1.0, 1.3, 26)
        srcs = rng.choice(np.arange(0, n - 1), size=26, replace=False)
        demand[srcs, n - 1] += rng.uniform(1.0, 1.3, 26)
        params = fast_ocs_params(n)
        schedule = EclipseScheduler().schedule(demand, params)
        assert 25 <= schedule.n_configs <= 40
