"""Tests for horizon-bounded execution and the sustained-load controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.controller import EpochController
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params


class TestHybridHorizon:
    def test_zero_horizon_serves_nothing(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 10.0
        schedule = SolsticeScheduler().schedule(demand, params)
        result = simulate_hybrid(demand, schedule, params, horizon=0.0)
        assert result.residual_total == pytest.approx(10.0)
        assert not result.finished
        assert np.isnan(result.completion_time)
        result.check_conservation()

    def test_horizon_truncates_mid_schedule(self):
        params = fast_ocs_params(8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 50.0
        perm = np.zeros((8, 8), dtype=np.int8)
        perm[0, 1] = 1
        schedule = Schedule(
            entries=(ScheduleEntry(permutation=perm, duration=0.5),),
            reconfig_delay=0.02,
        )
        # Horizon 0.12: 0.02 reconfig (EPS serves 0.2 Mb) + 0.1 circuit
        # (10 Mb) -> ~10.2 Mb served, ~39.8 left.
        result = simulate_hybrid(demand, schedule, params, horizon=0.12)
        assert result.residual_total == pytest.approx(39.8, abs=0.01)
        result.check_conservation()

    def test_horizon_past_completion_equals_unbounded(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        unbounded = simulate_hybrid(sparse_demand, schedule, params)
        bounded = simulate_hybrid(
            sparse_demand, schedule, params, horizon=unbounded.completion_time + 1.0
        )
        assert bounded.finished
        assert bounded.completion_time == pytest.approx(unbounded.completion_time)

    def test_delivered_fraction_monotone_in_horizon(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        fractions = [
            simulate_hybrid(sparse_demand, schedule, params, horizon=h).delivered_fraction
            for h in (0.05, 0.1, 0.2, 0.5)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_negative_horizon_rejected(self, sparse_demand):
        params = fast_ocs_params(8)
        schedule = SolsticeScheduler().schedule(sparse_demand, params)
        with pytest.raises(ValueError):
            simulate_hybrid(sparse_demand, schedule, params, horizon=-1.0)


class TestCpHorizon:
    def test_composite_residual_reported(self, skewed_demand16):
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        result = simulate_cp(skewed_demand16, cp_schedule, params, horizon=0.05)
        assert result.residual_total > 0
        result.check_conservation()

    def test_horizon_past_completion_matches_unbounded(self, skewed_demand16):
        params = fast_ocs_params(16)
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            skewed_demand16, params
        )
        unbounded = simulate_cp(skewed_demand16, cp_schedule, params)
        bounded = simulate_cp(
            skewed_demand16, cp_schedule, params, horizon=unbounded.completion_time + 0.5
        )
        assert bounded.finished
        assert bounded.completion_time == pytest.approx(unbounded.completion_time)
        assert bounded.served_composite == pytest.approx(unbounded.served_composite)


class TestSustainedLoadController:
    def _arrivals(self, n: int, per_epoch_volume: float):
        def arrivals(epoch: int) -> np.ndarray:
            rng = np.random.default_rng(epoch)
            demand = np.zeros((n, n))
            sender = epoch % n
            targets = rng.choice(
                np.setdiff1d(np.arange(n), [sender]), size=n - 1, replace=False
            )
            demand[sender, targets] = per_epoch_volume / (n - 1)
            return demand

        return arrivals

    def test_underload_keeps_up(self):
        n = 16
        params = fast_ocs_params(n)
        controller = EpochController(
            params, SolsticeScheduler(), epoch_duration=1.0
        )
        # 20 Mb/epoch into a switch that can move >100 Mb/ms: trivial.
        reports = controller.run(self._arrivals(n, 20.0), n_epochs=3)
        assert all(report.kept_up for report in reports)

    def test_overload_grows_backlog(self):
        n = 16
        params = fast_ocs_params(n)
        controller = EpochController(
            params, SolsticeScheduler(), epoch_duration=0.05
        )
        # One sender fanning out 30 Mb per 0.05 ms epoch: its EPS drains at
        # most 0.5 Mb and the OCS a handful of slices -> backlog grows.
        reports = controller.run(self._arrivals(n, 30.0), n_epochs=3)
        backlogs = [report.backlog_after for report in reports]
        assert backlogs[-1] > backlogs[0]
        assert not reports[-1].kept_up
        controller.voqs.check_conservation()

    def test_cp_controller_sustains_higher_skewed_load(self):
        # At a load level where the h-Switch epoch budget is dominated by
        # reconfigurations, the cp-Switch still keeps up.
        n = 32
        params = fast_ocs_params(n)
        arrivals = self._arrivals(n, 40.0)
        epoch = 0.6
        h_controller = EpochController(params, SolsticeScheduler(), epoch_duration=epoch)
        cp_controller = EpochController(
            params, SolsticeScheduler(), use_composite_paths=True, epoch_duration=epoch
        )
        h_reports = h_controller.run(arrivals, n_epochs=3)
        cp_reports = cp_controller.run(arrivals, n_epochs=3)
        assert cp_reports[-1].backlog_after <= h_reports[-1].backlog_after + 1e-6

    def test_invalid_epoch_duration(self):
        with pytest.raises(ValueError):
            EpochController(fast_ocs_params(8), SolsticeScheduler(), epoch_duration=0.0)

    def test_served_volume_reported(self):
        n = 16
        params = fast_ocs_params(n)
        controller = EpochController(params, SolsticeScheduler(), epoch_duration=0.1)
        controller.offer(self._arrivals(n, 30.0)(0))
        report, _ = controller.run_epoch()
        assert report.served_volume + report.backlog_after == pytest.approx(
            report.offered_volume
        )
