"""Importable trial functions for the runner tests.

Subprocess workers resolve trials by ``"module:function"`` path, so test
trials must live in a real module (lambdas and locals cannot cross the
process boundary).  State that must survive across retry attempts — each
attempt may be a fresh process — goes through marker files on disk.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np


def ok_trial(*, trial: int = 0, value: float = 1.0) -> dict:
    return {"trial": trial, "value": value}


def failing_trial(*, trial: int = 0, message: str = "boom", seed: "int | None" = None) -> dict:
    raise RuntimeError(message)


def flaky_trial(*, trial: int = 0, marker: str = "") -> dict:
    """Fails on the first attempt, succeeds on the next (marker on disk)."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempt 1 failed here")
        raise RuntimeError("flaky: first attempt")
    return {"trial": trial, "recovered": True}


def sleepy_trial(*, seconds: float = 60.0, **_ignored) -> dict:
    time.sleep(seconds)
    return {"slept": seconds}


def crashing_trial(*, trial: int = 0) -> dict:
    """Dies without reporting — models a segfault / OOM kill."""
    os._exit(17)


def demand_for(*, trial: int = 0, **_ignored) -> np.ndarray:
    """Deterministic per-trial demand matrix for quarantine tests."""
    return np.full((4, 4), float(trial + 1))


def pid_stage(*, tag: str = "") -> dict:
    """Pool stage reporting which worker process ran it."""
    return {"tag": tag, "pid": os.getpid()}


def die_once_stage(*, marker: str, value: float = 1.0) -> dict:
    """Kills its worker on the first attempt, succeeds on the retry.

    The marker file carries the death across processes: the retry (on a
    freshly respawned worker) finds it and returns normally.
    """
    path = Path(marker)
    if not path.exists():
        path.write_text("first attempt died here")
        os._exit(23)
    return {"recovered": True, "value": value, "pid": os.getpid()}


def always_die_stage(**_ignored) -> dict:
    """Kills its worker on every attempt — exhausts the retry budget."""
    os._exit(29)


def traced_stage(*, value: float = 1.0) -> dict:
    """Pool stage that emits an obs span + counter for blob-shipping tests."""
    from repro import obs

    with obs.profiled("pool.stage", value=value):
        obs.get_metrics().counter("pool_stage_total", "stages run").inc()
    return {"value": value}
