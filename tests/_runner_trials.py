"""Importable trial functions for the runner tests.

Subprocess workers resolve trials by ``"module:function"`` path, so test
trials must live in a real module (lambdas and locals cannot cross the
process boundary).  State that must survive across retry attempts — each
attempt may be a fresh process — goes through marker files on disk.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np


def ok_trial(*, trial: int = 0, value: float = 1.0) -> dict:
    return {"trial": trial, "value": value}


def failing_trial(*, trial: int = 0, message: str = "boom", seed: "int | None" = None) -> dict:
    raise RuntimeError(message)


def flaky_trial(*, trial: int = 0, marker: str = "") -> dict:
    """Fails on the first attempt, succeeds on the next (marker on disk)."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempt 1 failed here")
        raise RuntimeError("flaky: first attempt")
    return {"trial": trial, "recovered": True}


def sleepy_trial(*, seconds: float = 60.0, **_ignored) -> dict:
    time.sleep(seconds)
    return {"slept": seconds}


def crashing_trial(*, trial: int = 0) -> dict:
    """Dies without reporting — models a segfault / OOM kill."""
    os._exit(17)


def demand_for(*, trial: int = 0, **_ignored) -> np.ndarray:
    """Deterministic per-trial demand matrix for quarantine tests."""
    return np.full((4, 4), float(trial + 1))
