"""Golden-value regression tests.

The whole pipeline is deterministic given a seed, so these lock exact
end-to-end numbers for fixed inputs.  Their job is to catch *unintended*
behaviour changes during refactors: if one fails after a deliberate
algorithm change, re-derive the constants (the test docstrings say how)
and update them together with a note in the commit.

Values derived on the reference configuration: 32-port fast-OCS switch
(Ce=10, Co=100, δ=0.02 ms), paper-default filter thresholds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload


@pytest.fixture(scope="module")
def params():
    return fast_ocs_params(32)


@pytest.fixture(scope="module")
def typical_spec():
    """CombinedWorkload.typical draw with seed 12345 (radix 32, fast)."""
    params = fast_ocs_params(32)
    return CombinedWorkload.typical(params).generate(32, np.random.default_rng(12345))


class TestWorkloadDeterminism:
    def test_typical_demand_volume(self, typical_spec):
        assert typical_spec.demand.sum() == pytest.approx(1310.467477300667)

    def test_skewed_demand_volume(self):
        spec = SkewedWorkload().generate(32, np.random.default_rng(777))
        assert spec.demand.sum() == pytest.approx(61.9962819604508)


class TestSolsticePipeline:
    def test_h_switch_metrics(self, params, typical_spec):
        schedule = SolsticeScheduler().schedule(typical_spec.demand, params)
        assert schedule.n_configs == 33
        result = simulate_hybrid(typical_spec.demand, schedule, params)
        assert result.completion_time == pytest.approx(3.5251339344969823)
        assert result.served_ocs_direct == pytest.approx(1030.1858805273919)

    def test_cp_switch_metrics(self, params, typical_spec):
        cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
            typical_spec.demand, params
        )
        assert cp_schedule.n_configs == 28
        assert cp_schedule.reduction.composite_volume == pytest.approx(
            62.467477300666985
        )
        result = simulate_cp(typical_spec.demand, cp_schedule, params)
        # Re-derived for the stable pass-2 slack sort in QuickStuff (tied
        # slacks in this integer-valued workload now pair in stable order).
        assert result.completion_time == pytest.approx(3.2687220276646385)
        # The schedule delivers the entire filtered demand via composites.
        assert result.served_composite == pytest.approx(62.46747730066699)

    def test_skewed_h_switch(self, params):
        spec = SkewedWorkload().generate(32, np.random.default_rng(777))
        schedule = SolsticeScheduler().schedule(spec.demand, params)
        assert schedule.n_configs == 24
        result = simulate_hybrid(spec.demand, schedule, params)
        assert result.completion_time == pytest.approx(1.0675196725876241)


class TestEclipsePipeline:
    def test_eclipse_metrics(self, params, typical_spec):
        schedule = EclipseScheduler().schedule(typical_spec.demand, params)
        assert schedule.n_configs == 3
        result = simulate_hybrid(typical_spec.demand, schedule, params)
        assert result.ocs_fraction_within(1.0) == pytest.approx(0.563520504809738)


class TestCrossRunStability:
    def test_two_identical_runs_bit_equal(self, params, typical_spec):
        def run():
            cp_schedule = CpSwitchScheduler(SolsticeScheduler()).schedule(
                typical_spec.demand, params
            )
            return simulate_cp(typical_spec.demand, cp_schedule, params)

        a, b = run(), run()
        assert a.completion_time == b.completion_time
        np.testing.assert_array_equal(a.finish_times, b.finish_times)
