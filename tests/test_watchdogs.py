"""Scheduler watchdog tests: adversarial inputs degrade, never crash.

Before this PR, QuickStuff raised ``RuntimeError("QuickStuff failed to
equalize row/column sums")`` on float-pathological matrices and both
scheduler loops could in principle spin unboundedly; a single such demand
matrix aborted an entire sweep.  The watchdogs turn every one of those
paths into a valid (possibly truncated) schedule plus a
:class:`~repro.hybrid.diagnostics.SchedulerDiagnostics` record — leftover
demand always drains over the packet switch, so the simulation completes
and conserves volume regardless.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hybrid.diagnostics import SchedulerDiagnostics
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.solstice import SolsticeScheduler, quick_stuff, quick_stuff_diagnosed
from repro.hybrid.solstice.stuffing import _imbalance, _repair_round
from repro.sim import simulate_hybrid
from repro.switch.params import fast_ocs_params
from repro.utils.validation import VOLUME_TOL

_adversarial_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8)).map(lambda t: (t[0], t[0])),
    # Huge dynamic range plus near-tolerance entries — the float regime
    # that used to trip the equalization check.
    elements=st.one_of(
        st.just(0.0),
        st.floats(1e-12, 1e-6),
        st.floats(0.1, 10.0),
        st.floats(1e6, 1e12),
    ),
)


class TestQuickStuffWatchdog:
    @settings(max_examples=150, deadline=None)
    @given(demand=_adversarial_matrices)
    def test_never_raises_and_keeps_dominance(self, demand):
        stuffed, diag = quick_stuff_diagnosed(demand.copy())
        # E >= D element-wise: every real byte of demand stays accounted for.
        assert np.all(stuffed >= demand - VOLUME_TOL)
        phi = max(demand.sum(axis=1).max(), demand.sum(axis=0).max(), 0.0)
        if diag is None:
            if phi > VOLUME_TOL:
                tolerance = demand.shape[0] * 1e-6 * max(phi, 1.0)
                assert abs(stuffed.sum(axis=1) - stuffed.sum(axis=1)[0]).max() <= tolerance
        else:
            assert diag.event == "stuffing-imbalance"
            assert diag.residual > 0

    @settings(max_examples=60, deadline=None)
    @given(demand=_adversarial_matrices)
    def test_schedule_from_adversarial_demand_still_covers_it(self, demand):
        # End-to-end: Solstice + EPS must complete and conserve volume on
        # the same matrices, diagnostics or not.
        params = fast_ocs_params(demand.shape[0])
        scheduler = SolsticeScheduler()
        schedule = scheduler.schedule(demand.copy(), params)
        result = simulate_hybrid(demand, schedule, params)
        result.check_conservation()
        assert np.isfinite(result.completion_time)

    def test_repair_round_only_adds_volume(self):
        # Wreck the sums by hand; repair must re-equalize by *adding*.
        stuffed = np.array([[4.0, 0.0], [1.0, 2.0]])
        before = stuffed.copy()
        phi, imbalance = _repair_round(stuffed, 4.0)
        assert phi >= 4.0
        assert np.all(stuffed >= before)
        assert imbalance <= 2 * np.finfo(np.float64).eps * phi

    def test_plain_quick_stuff_equalizes_normal_demand(self, sparse_demand):
        stuffed = quick_stuff(sparse_demand)
        phi = stuffed.sum(axis=1)[0]
        np.testing.assert_allclose(stuffed.sum(axis=1), phi, atol=1e-9 * max(phi, 1))
        np.testing.assert_allclose(stuffed.sum(axis=0), phi, atol=1e-9 * max(phi, 1))


class TestSolsticeWatchdogs:
    def test_slice_infeasible_degrades_to_valid_schedule(self, monkeypatch, sparse_demand):
        # Feed Solstice a stuffed matrix whose equal-sum invariant is broken
        # so BigSlice cannot find a perfect matching.
        import repro.hybrid.solstice.scheduler as mod

        def broken_stuffing(demand):
            bad = np.asarray(demand, dtype=np.float64).copy()
            bad[0, :] = 0.0  # row 0 has no entries -> no perfect matching
            return bad, None

        monkeypatch.setattr(mod, "quick_stuff_diagnosed", broken_stuffing)
        params = fast_ocs_params(8)
        scheduler = SolsticeScheduler()
        schedule = scheduler.schedule(sparse_demand, params)

        events = [diag.event for diag in scheduler.last_diagnostics]
        assert "slice-infeasible" in events
        # The degraded schedule is still simulatable; the EPS drains the rest.
        result = simulate_hybrid(sparse_demand, schedule, params)
        result.check_conservation()
        assert np.isfinite(result.completion_time)

    def test_config_cap_records_uncovered_demand(self):
        params = fast_ocs_params(8)
        rng = np.random.default_rng(3)
        demand = rng.uniform(1.0, 5.0, (8, 8))  # dense: needs many configs
        scheduler = SolsticeScheduler(max_configs=1)
        schedule = scheduler.schedule(demand, params)
        assert schedule.n_configs <= 1

        events = [diag.event for diag in scheduler.last_diagnostics]
        assert events == ["config-cap"]
        diag = scheduler.last_diagnostics[0]
        assert diag.cap == 1
        assert diag.residual > 0
        result = simulate_hybrid(demand, schedule, params)
        result.check_conservation()

    def test_diagnostics_reset_between_calls(self, sparse_demand):
        params = fast_ocs_params(8)
        scheduler = SolsticeScheduler(max_configs=1)
        scheduler.schedule(np.ones((8, 8)), params)
        assert scheduler.last_diagnostics  # cap trips on dense ones
        scheduler.schedule(np.zeros((8, 8)), params)
        assert scheduler.last_diagnostics == []

    def test_to_dict_round_trip(self):
        diag = SchedulerDiagnostics(
            scheduler="solstice", event="config-cap", detail="x", iterations=3,
            cap=4, residual=1.5,
        )
        payload = diag.to_dict()
        assert payload["event"] == "config-cap"
        assert payload["residual"] == 1.5


class TestEclipseWatchdogs:
    def test_step_cap_degrades_gracefully(self, sparse_demand):
        params = fast_ocs_params(8)
        scheduler = EclipseScheduler(max_steps=1, window=10.0)
        schedule = scheduler.schedule(sparse_demand, params)
        assert schedule.n_configs <= 1

        events = [diag.event for diag in scheduler.last_diagnostics]
        assert events == ["step-cap"]
        result = simulate_hybrid(sparse_demand, schedule, params)
        result.check_conservation()
        assert np.isfinite(result.completion_time)

    def test_default_step_cap_bounds_entries(self):
        # Even with an enormous window, the loop cannot take more than
        # 8n + 256 greedy steps.
        params = fast_ocs_params(4)
        rng = np.random.default_rng(5)
        demand = rng.uniform(0.5, 2.0, (4, 4))
        scheduler = EclipseScheduler(window=1e9)
        schedule = scheduler.schedule(demand, params)
        assert schedule.n_configs <= 8 * 4 + 256

    def test_normal_run_has_no_diagnostics(self, sparse_demand):
        params = fast_ocs_params(8)
        scheduler = EclipseScheduler()
        scheduler.schedule(sparse_demand, params)
        assert scheduler.last_diagnostics == []
