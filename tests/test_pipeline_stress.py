"""Parameter-sweep stress tests: the full pipeline across switch/workload
configurations, checking the invariants that must hold everywhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FilterConfig
from repro.core.scheduler import CpSwitchScheduler
from repro.hybrid.base import make_scheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload


def pipeline(demand, params, scheduler_name):
    inner = make_scheduler(scheduler_name)
    h_schedule = inner.schedule(demand, params)
    h_result = simulate_hybrid(demand, h_schedule, params)
    cp_schedule = CpSwitchScheduler(inner).schedule(demand, params)
    cp_result = simulate_cp(demand, cp_schedule, params)
    return h_result, cp_result


@pytest.mark.parametrize("scheduler_name", ["solstice", "eclipse"])
@pytest.mark.parametrize(
    "eps_rate,ocs_rate,delta",
    [
        (10.0, 100.0, 0.02),  # paper fast
        (10.0, 100.0, 20.0),  # paper slow
        (10.0, 40.0, 0.1),  # modest 4x speedup
        (1.0, 100.0, 0.02),  # extreme 100x speedup
        (25.0, 100.0, 1.0),  # 4x speedup, mid delta
    ],
)
class TestParameterSweep:
    def test_conservation_and_sanity(self, scheduler_name, eps_rate, ocs_rate, delta):
        params = SwitchParams(
            n_ports=16, eps_rate=eps_rate, ocs_rate=ocs_rate, reconfig_delay=delta
        )
        rng = np.random.default_rng(hash((scheduler_name, eps_rate, delta)) % 2**32)
        demand = rng.uniform(0, 5, (16, 16)) * (rng.random((16, 16)) < 0.4)
        if delta >= 1.0:
            demand = demand * 100  # slow-OCS scale, as the paper does
        h_result, cp_result = pipeline(demand, params, scheduler_name)
        h_result.check_conservation(tol=1e-5)
        cp_result.check_conservation(tol=1e-5)
        # Completion can never beat the EPS+OCS capacity bound of the
        # busiest port.
        port_load = max(demand.sum(axis=1).max(), demand.sum(axis=0).max())
        bound = port_load / (eps_rate + ocs_rate)
        assert h_result.completion_time >= bound - 1e-9
        assert cp_result.completion_time >= bound - 1e-9


@pytest.mark.parametrize("n_ports", [8, 16, 32])
def test_skewed_speedup_holds_across_radices(n_ports):
    params = SwitchParams(n_ports=n_ports, eps_rate=5.0, ocs_rate=100.0, reconfig_delay=0.02)
    workload = SkewedWorkload()
    rng = np.random.default_rng(n_ports)
    spec = workload.generate(n_ports, rng)
    h_result, cp_result = pipeline(spec.demand.copy(), params, "solstice")
    # With Ce = 5 the composite path's OCS leg saturates only once
    # fan-out * Ce >= Co, i.e. fan-out >= 20 — radix 32 in this sweep.
    # Below that the composite path is EPS-bound and cp may lose; the
    # config-count reduction must hold regardless.
    if n_ports >= 32:
        assert cp_result.completion_time <= h_result.completion_time * 1.05
    assert cp_result.n_configs <= h_result.n_configs


class TestFilterConfigSweep:
    @pytest.mark.parametrize("alpha", [0.1, 1.0, 10.0])
    @pytest.mark.parametrize("beta", [0.3, 0.7, 1.0])
    def test_any_filter_config_conserves_volume(self, alpha, beta):
        params = SwitchParams(n_ports=16)
        workload = CombinedWorkload.typical(params)
        spec = workload.generate(16, np.random.default_rng(5))
        scheduler = CpSwitchScheduler(
            make_scheduler("solstice"), filter_config=FilterConfig(alpha=alpha, beta=beta)
        )
        cp_schedule = scheduler.schedule(spec.demand, params)
        result = simulate_cp(spec.demand, cp_schedule, params)
        result.check_conservation(tol=1e-5)

    def test_beta_one_filters_only_full_fanout(self):
        params = SwitchParams(n_ports=8)
        demand = np.zeros((8, 8))
        demand[0, 1:8] = 1.0  # fan-out 7 = n-1 < Rt = 8
        scheduler = CpSwitchScheduler(
            make_scheduler("solstice"), filter_config=FilterConfig(beta=1.0)
        )
        cp_schedule = scheduler.schedule(demand, params)
        assert cp_schedule.reduction.composite_volume == 0.0


class TestBudgetSweep:
    @pytest.mark.parametrize("budget", [0.5, 2.0, 10.0])
    def test_budget_monotone_skew_completion(self, budget, skewed_demand16):
        base = SwitchParams(n_ports=16)
        params = base.with_budget(budget)
        cp_schedule = CpSwitchScheduler(make_scheduler("solstice")).schedule(
            skewed_demand16, params
        )
        result = simulate_cp(skewed_demand16, cp_schedule, params)
        result.check_conservation(tol=1e-5)
        # Store for the cross-budget comparison below via pytest cache of
        # the parametrize order: simpler — just check finiteness here.
        assert np.isfinite(result.completion_time)

    def test_larger_budget_never_slower(self, skewed_demand16):
        completions = []
        for budget in (0.5, 2.0, 10.0):
            params = SwitchParams(n_ports=16).with_budget(budget)
            cp_schedule = CpSwitchScheduler(make_scheduler("solstice")).schedule(
                skewed_demand16, params
            )
            result = simulate_cp(skewed_demand16, cp_schedule, params)
            completions.append(result.completion_time)
        assert completions[0] >= completions[1] >= completions[2] - 1e-9
