#!/usr/bin/env python3
"""Domain example: a message-broker barrier in a micro-services mesh (§1).

The paper's introduction singles out modern micro-service workloads,
"interconnected using message brokers as barriers that receive messages
from many service endpoints and deliver messages to many other service
endpoints" — a port that is simultaneously a many-to-one sink and a
one-to-many source, whose epoch "acutely depends on the last flow to
complete in each coflow".

This example models one broker epoch with the coflow API:

* an inbound **many-to-one** coflow: ~0.8·n producer racks publishing to
  the broker;
* an outbound **one-to-many** coflow: the broker delivering to ~0.8·n
  consumer racks;
* a light service-mesh **many-to-many** background between the other
  racks;

and reports per-coflow completion (the barrier latency) on h-Switch vs
cp-Switch, plus the ASCII execution traces that show *why*: the cp-Switch
serves both broker coflows through its two composite paths concurrently,
with one OCS configuration.

Run:  python examples/message_broker.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    SolsticeScheduler,
    fast_ocs_params,
    simulate_cp,
    simulate_hybrid,
)
from repro.sim.trace import render_gantt
from repro.workloads.coflows import Coflow, CoflowSet


def build_epoch(n: int, broker: int, rng) -> CoflowSet:
    coflows = CoflowSet(n)
    others = np.setdiff1d(np.arange(n), [broker])

    fan = int(0.8 * n)
    producers = rng.choice(others, size=fan, replace=False)
    coflows.add(
        Coflow.many_to_one(
            producers.tolist(), broker, rng.uniform(1.0, 1.3, fan).tolist(),
            name="publish (m2o)",
        )
    )
    consumers = rng.choice(others, size=fan, replace=False)
    coflows.add(
        Coflow.one_to_many(
            broker, consumers.tolist(), rng.uniform(1.0, 1.3, fan).tolist(),
            name="deliver (o2m)",
        )
    )
    # Service mesh chatter among non-broker racks.
    mesh = rng.choice(others, size=max(2, n // 8), replace=False)
    coflows.add(
        Coflow.many_to_many(mesh.tolist(), mesh.tolist(), 0.4, name="mesh (m2m)")
    )
    return coflows


def main() -> None:
    params = fast_ocs_params(32)
    rng = np.random.default_rng(99)
    broker = int(rng.integers(params.n_ports))
    coflows = build_epoch(params.n_ports, broker, rng)
    demand = coflows.demand()
    print(
        f"broker epoch on port {broker}: {demand.sum():.1f} Mb, "
        f"{len(coflows)} coflows"
    )

    solstice = SolsticeScheduler()
    h_schedule = solstice.schedule(demand, params)
    h_result = simulate_hybrid(demand, h_schedule, params)
    cp_schedule = CpSwitchScheduler(solstice).schedule(demand, params)
    cp_result = simulate_cp(demand, cp_schedule, params)

    h_times = coflows.completion_times(h_result)
    cp_times = coflows.completion_times(cp_result)
    print(f"\n{'coflow':>16}  {'h-Switch (ms)':>14}  {'cp-Switch (ms)':>14}")
    for name in h_times:
        print(f"{name:>16}  {h_times[name]:>14.3f}  {cp_times[name]:>14.3f}")
    print(
        f"{'barrier (max)':>16}  {max(h_times.values()):>14.3f}  "
        f"{max(cp_times.values()):>14.3f}"
    )

    print(f"\nh-Switch execution ({h_result.n_configs} configurations):")
    print(render_gantt(h_schedule, width=64, total_time=h_result.completion_time))
    print(f"\ncp-Switch execution ({cp_result.n_configs} configurations):")
    print(render_gantt(cp_schedule, width=64, total_time=cp_result.completion_time))


if __name__ == "__main__":
    main()
