#!/usr/bin/env python3
"""Domain example: object-storage replication bursts (one-to-many).

§4 "Additional Use Cases" singles out storage racks — "especially object
storage" — as cp-Switch deployments: a rack that just ingested objects
must fan replicas out to many peer racks, a one-to-many pattern a plain
hybrid switch serves with one OCS reconfiguration per replica target.

This example sweeps the replication fan-out and shows the crossover the
paper's filtering intuition (§2.2) predicts:

* at small fan-out, dedicated circuits win — the composite path brings no
  benefit and Algorithm 1's ``Rt`` filter correctly leaves the demand on
  regular paths;
* past the filter threshold the composite path takes over and the
  completion time stays nearly flat while h-Switch scales linearly with
  the number of reconfigurations.

Run:  python examples/storage_replication.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    SolsticeScheduler,
    fast_ocs_params,
    simulate_cp,
    simulate_hybrid,
)


def replication_demand(n: int, fanout: int, object_mb: float, rng) -> np.ndarray:
    """A storage rack (port 0) pushing one object replica to ``fanout`` racks."""
    demand = np.zeros((n, n))
    targets = rng.choice(np.arange(1, n), size=fanout, replace=False)
    demand[0, targets] = object_mb * rng.uniform(0.9, 1.1, size=fanout)
    return demand


def main() -> None:
    params = fast_ocs_params(32)
    solstice = SolsticeScheduler()
    cp_scheduler = CpSwitchScheduler(solstice)
    rng = np.random.default_rng(41)

    print("Replication burst on a 32-port Fast-OCS switch, 1.2 Mb replicas")
    print(
        f"{'fan-out':>8}  {'h CCT (ms)':>11}  {'h configs':>9}  "
        f"{'cp CCT (ms)':>11}  {'cp configs':>10}  {'composite?':>10}"
    )
    for fanout in (2, 4, 8, 16, 23, 27, 31):
        demand = replication_demand(params.n_ports, fanout, 1.2, rng)
        h_result = simulate_hybrid(demand, solstice.schedule(demand, params), params)
        cp_schedule = cp_scheduler.schedule(demand, params)
        cp_result = simulate_cp(demand, cp_schedule, params)
        used_composite = cp_schedule.reduction.composite_volume > 0
        print(
            f"{fanout:>8}  {h_result.completion_time:>11.3f}  {h_result.n_configs:>9}  "
            f"{cp_result.completion_time:>11.3f}  {cp_result.n_configs:>10}  "
            f"{'yes' if used_composite else 'no':>10}"
        )
    print(
        "\nBelow Rt = ceil(0.7 * 32) = 23 the filter leaves the demand on regular\n"
        "paths (cp == h by design); above it, the composite path removes the\n"
        "per-replica reconfigurations."
    )


if __name__ == "__main__":
    main()
