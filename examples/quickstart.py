#!/usr/bin/env python3
"""Quickstart: schedule one skewed demand on an h-Switch and a cp-Switch.

This walks the full pipeline of the paper on a single demand matrix:

1. build a one-to-many + many-to-one demand (the pattern hybrid switches
   struggle with, §1);
2. schedule it for a plain hybrid switch with Solstice;
3. wrap the same Solstice instance in the cp-Switch scheduler
   (Algorithm 4) and schedule again;
4. execute both schedules in the fluid simulator and compare completion
   time, OCS configuration count, and OCS utilization.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    SolsticeScheduler,
    fast_ocs_params,
    simulate_cp,
    simulate_hybrid,
)


def main() -> None:
    # A 32-port switch with the paper's fast-OCS parameters:
    # Ce = 10 Gbps, Co = 100 Gbps, delta = 20 us.
    params = fast_ocs_params(32)
    rng = np.random.default_rng(7)

    # --- 1. the demand -------------------------------------------------
    # Port 0 broadcasts ~1.15 Mb to 26 receivers (one-to-many) and port 31
    # aggregates ~1.15 Mb from 26 senders (many-to-one).
    n = params.n_ports
    demand = np.zeros((n, n))
    targets = rng.choice(np.arange(1, n - 1), size=26, replace=False)
    demand[0, targets] = rng.uniform(1.0, 1.3, size=26)
    sources = rng.choice(np.arange(1, n - 1), size=26, replace=False)
    demand[sources, n - 1] = rng.uniform(1.0, 1.3, size=26)
    print(f"demand: {demand.sum():.1f} Mb over {int((demand > 0).sum())} entries")

    # --- 2. h-Switch schedule ------------------------------------------
    solstice = SolsticeScheduler()
    h_schedule = solstice.schedule(demand, params)
    h_result = simulate_hybrid(demand, h_schedule, params)

    # --- 3. cp-Switch schedule (Algorithm 4 wrapping the same Solstice) -
    cp_scheduler = CpSwitchScheduler(solstice)
    cp_schedule = cp_scheduler.schedule(demand, params)
    cp_result = simulate_cp(demand, cp_schedule, params)

    # --- 4. compare -----------------------------------------------------
    print(f"\n{'':>24}  {'h-Switch':>10}  {'cp-Switch':>10}")
    print(f"{'OCS configurations':>24}  {h_result.n_configs:>10}  {cp_result.n_configs:>10}")
    print(
        f"{'completion time (ms)':>24}  {h_result.completion_time:>10.3f}  "
        f"{cp_result.completion_time:>10.3f}"
    )
    window = 1.0  # ms
    print(
        f"{'OCS fraction @ 1 ms':>24}  {h_result.ocs_fraction_within(window):>10.3f}  "
        f"{cp_result.ocs_fraction_within(window):>10.3f}"
    )
    print(
        f"\ncp-Switch routed {cp_schedule.reduction.composite_volume:.1f} Mb "
        f"over composite paths ({cp_result.served_composite:.1f} Mb delivered there)."
    )
    speedup = h_result.completion_time / cp_result.completion_time
    print(f"cp-Switch finished the demand {speedup:.1f}x faster.")


if __name__ == "__main__":
    main()
