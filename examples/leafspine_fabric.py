#!/usr/bin/env python3
"""Extension example: composite paths in a leaf-spine fabric (§4).

§4 "Augmenting Hybrid Architectures": "a leaf-spine hybrid solution can be
extended by connecting among the OCS and the EPS spines".  This example
builds that fabric explicitly with :mod:`repro.topology`:

* 32 leaves, 2 electronic spines (5 Gbps uplinks each), 1 optical spine
  (100 Gbps uplinks) — the equivalent of the paper's single switch with
  Ce = 10 Gbps and Co = 100 Gbps;
* with and without composite OCS-spine↔EPS-spine links;

then reduces each fabric to its equivalent single-switch parameters and
schedules a replication burst over it.  The fabric without composite
links can only run the h-Switch scheduler; the augmented fabric unlocks
cp-Switch scheduling and its completion-time win — no change to the
scheduling algorithms, exactly the paper's point.

Run:  python examples/leafspine_fabric.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    SolsticeScheduler,
    simulate_cp,
    simulate_hybrid,
)
from repro.topology import LeafSpineFabric, LeafSpineParams


def replication_demand(n: int, rng) -> np.ndarray:
    demand = np.zeros((n, n))
    source = int(rng.integers(n))
    targets = rng.choice(np.setdiff1d(np.arange(n), [source]), size=int(0.8 * n), replace=False)
    demand[source, targets] = rng.uniform(1.0, 1.3, targets.size)
    return demand


def main() -> None:
    rng = np.random.default_rng(5)
    plain = LeafSpineFabric(
        LeafSpineParams(n_leaves=32, n_eps_spines=2, n_ocs_spines=1, n_composite_links=0)
    )
    augmented = LeafSpineFabric(
        LeafSpineParams(n_leaves=32, n_eps_spines=2, n_ocs_spines=1, n_composite_links=2)
    )
    for fabric in (plain, augmented):
        print(fabric)
        print(f"  per-leaf EPS capacity : {fabric.leaf_eps_capacity(0):.0f} Mb/ms")
        print(f"  per-leaf OCS capacity : {fabric.leaf_ocs_capacity(0):.0f} Mb/ms")
        print(f"  EPS bisection bw      : {fabric.eps_bisection_bandwidth():.0f} Mb/ms")
        print(f"  composite capable     : {fabric.supports_cp_scheduling()}")

    params = augmented.equivalent_switch_params()
    demand = replication_demand(params.n_ports, rng)
    solstice = SolsticeScheduler()

    # The plain fabric runs the hybrid schedule.
    h_result = simulate_hybrid(demand, solstice.schedule(demand, params), params)
    print(
        f"\nplain fabric (h-Switch):     {h_result.completion_time:.3f} ms, "
        f"{h_result.n_configs} OCS configurations"
    )

    # The augmented fabric additionally admits cp-Switch scheduling.
    assert augmented.supports_cp_scheduling()
    cp_schedule = CpSwitchScheduler(solstice).schedule(demand, params)
    cp_result = simulate_cp(demand, cp_schedule, params)
    print(
        f"augmented fabric (cp-Switch): {cp_result.completion_time:.3f} ms, "
        f"{cp_result.n_configs} OCS configurations "
        f"({cp_result.served_composite:.1f} Mb over the composite spine links)"
    )
    print(
        f"\nadding {augmented.params.n_composite_links} spine-to-spine links made the "
        f"replication burst {h_result.completion_time / cp_result.completion_time:.1f}x faster."
    )


if __name__ == "__main__":
    main()
