#!/usr/bin/env python3
"""Domain example: a MapReduce-style partition/aggregate epoch.

§1 motivates composite paths with aggregation traffic: "Many-to-one, e.g.,
aggregation of data (i.e., MapReduce, Partition-Aggregate)".  This example
builds one reduce epoch over a 64-port switch:

* ``n_reducers`` racks each aggregate a shard from ~50 mapper racks
  (many-to-one coflows, delay-sensitive);
* the remaining racks exchange a light all-to-all shuffle of small
  flows (background many-to-many, EPS territory);

and reports the *coflow completion time* of each reducer's aggregation —
the metric a job scheduler actually waits on — for h-Switch vs cp-Switch
under both OCS classes.  With several reducers contending for the single
many-to-one composite path, the base cp-Switch can saturate (the §3.5
effect); the run also includes the §4 extension with one composite path
per reducer, which resolves the contention.

Run:  python examples/mapreduce_shuffle.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    MultiPathCpScheduler,
    SolsticeScheduler,
    fast_ocs_params,
    simulate_cp,
    simulate_hybrid,
    simulate_multipath,
    slow_ocs_params,
)
from repro.workloads.base import volume_scale_for


def build_epoch(params, rng, n_reducers=3):
    """One partition/aggregate epoch: demand plus per-reducer masks."""
    n = params.n_ports
    scale = volume_scale_for(params)
    demand = np.zeros((n, n))
    reducers = rng.choice(n, size=n_reducers, replace=False)
    reducer_masks = {}
    for reducer in reducers.tolist():
        mappers = rng.choice(
            np.setdiff1d(np.arange(n), [reducer]), size=50, replace=False
        )
        demand[mappers, reducer] += rng.uniform(1.0, 1.3, size=50) * scale
        mask = np.zeros((n, n), dtype=bool)
        mask[mappers, reducer] = True
        reducer_masks[reducer] = mask

    # Light all-to-all shuffle among non-reducer racks: 6 small flows each.
    others = np.setdiff1d(np.arange(n), reducers)
    for rack in others.tolist():
        peers = rng.choice(np.setdiff1d(others, [rack]), size=6, replace=False)
        demand[rack, peers] += rng.uniform(0.2, 0.6, size=6) * scale
    return demand, reducer_masks


def run(params, label: str) -> None:
    rng = np.random.default_rng(2016)
    demand, reducer_masks = build_epoch(params, rng)

    solstice = SolsticeScheduler()
    h_result = simulate_hybrid(demand, solstice.schedule(demand, params), params)
    cp_scheduler = CpSwitchScheduler(solstice)
    cp_result = simulate_cp(demand, cp_scheduler.schedule(demand, params), params)
    # §4 extension: one many-to-one composite path per reducer.
    k = len(reducer_masks)
    mp_scheduler = MultiPathCpScheduler(solstice, n_paths=k)
    mp_result = simulate_multipath(demand, mp_scheduler.schedule(demand, params), params)

    print(f"\n=== {label}: {demand.sum():.0f} Mb epoch, "
          f"{k} reducers x 50 mappers ===")
    print(
        f"{'reducer':>12}  {'h-Switch (ms)':>14}  {'cp k=1 (ms)':>12}  "
        f"{f'cp k={k} (ms)':>12}"
    )
    for reducer, mask in sorted(reducer_masks.items()):
        print(
            f"{reducer:>12}  {h_result.coflow_completion(mask):>14.3f}  "
            f"{cp_result.coflow_completion(mask):>12.3f}  "
            f"{mp_result.coflow_completion(mask):>12.3f}"
        )
    print(
        f"{'epoch total':>12}  {h_result.completion_time:>14.3f}  "
        f"{cp_result.completion_time:>12.3f}  {mp_result.completion_time:>12.3f}"
    )
    print(
        f"OCS configurations: h-Switch {h_result.n_configs}, "
        f"cp-Switch {cp_result.n_configs}, cp k={k}: {mp_result.n_configs}"
    )


def main() -> None:
    run(fast_ocs_params(64), "Fast OCS (delta = 20 us)")
    run(slow_ocs_params(64), "Slow OCS (delta = 20 ms)")


if __name__ == "__main__":
    main()
