#!/usr/bin/env python3
"""Closed-loop example: does the switch keep up under sustained skew?

Single-shot experiments (Figures 5-11) measure one demand matrix in
isolation.  A deployed switch faces a *stream*: every control epoch new
coflows arrive, the scheduler sees the VOQ occupancies, and whatever the
epoch budget cannot serve carries over.  The interesting question becomes
throughput-shaped: at a given arrival intensity and epoch budget, does the
backlog stay bounded?

This example drives the closed-loop :class:`EpochController` with a
skewed-coflow arrival stream at increasing intensity and prints the
backlog trajectory for the h-Switch and cp-Switch.  Near the h-Switch's
saturation point the cp-Switch still keeps up — its epochs spend δ once
instead of once per destination, which is the completion-time gains of
Figure 5 re-expressed as sustainable load.

Run:  python examples/sustained_load.py
"""

from __future__ import annotations

from repro import SolsticeScheduler, fast_ocs_params
from repro.analysis.controller import EpochController
from repro.workloads.arrivals import WorkloadArrivals
from repro.workloads.skewed import SkewedWorkload

N_PORTS = 32
EPOCH_MS = 0.6
N_EPOCHS = 6


def run(intensity: float) -> None:
    params = fast_ocs_params(N_PORTS)
    arrivals = WorkloadArrivals(
        workload=SkewedWorkload(),
        n_ports=N_PORTS,
        seed=11,
        intensity=intensity,
    )
    h_controller = EpochController(params, SolsticeScheduler(), epoch_duration=EPOCH_MS)
    cp_controller = EpochController(
        params, SolsticeScheduler(), use_composite_paths=True, epoch_duration=EPOCH_MS
    )
    h_reports = h_controller.run(arrivals, n_epochs=N_EPOCHS)
    cp_reports = cp_controller.run(arrivals, n_epochs=N_EPOCHS)

    offered = sum(r.offered_volume - (h_reports[i - 1].backlog_after if i else 0.0)
                  for i, r in enumerate(h_reports))
    print(f"\nintensity x{intensity:.1f}  (~{offered / N_EPOCHS:.0f} Mb/epoch, "
          f"epoch budget {EPOCH_MS} ms)")
    print(f"{'epoch':>6} | {'h backlog (Mb)':>15} | {'cp backlog (Mb)':>16}")
    for h_report, cp_report in zip(h_reports, cp_reports):
        print(
            f"{h_report.epoch:>6} | {h_report.backlog_after:>15.1f} | "
            f"{cp_report.backlog_after:>16.1f}"
        )
    def verdict(reports) -> str:
        if reports[-1].kept_up:
            return "keeps up"
        if reports[-1].backlog_after < max(r.backlog_after for r in reports):
            return "lagging but recovering"
        return "FALLING BEHIND"

    print(f"verdict: h-Switch {verdict(h_reports)}, cp-Switch {verdict(cp_reports)}")


def main() -> None:
    print(
        f"Sustained one-to-many/many-to-one load on a {N_PORTS}-port fast-OCS "
        f"switch,\nscheduled with Solstice every {EPOCH_MS} ms epoch."
    )
    for intensity in (0.5, 1.0, 1.5):
        run(intensity)


if __name__ == "__main__":
    main()
