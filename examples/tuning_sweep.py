#!/usr/bin/env python3
"""Exploration example: tuning the (alpha, beta) filter heuristic (§4).

The paper picks ``Bt = alpha * delta * Co`` and ``Rt = beta * n``
heuristically and notes that optimal tuning "is challenging since there is
a strong coupling between the algebraic structure of the demand matrix,
the switch parameters and the performance of the scheduling algorithms".
This example makes that coupling visible: it grids (alpha, beta) on one
workload and prints the completion-time landscape, so a user adopting the
library can calibrate the filter for *their* traffic.

Run:  python examples/tuning_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CpSwitchScheduler,
    FilterConfig,
    SolsticeScheduler,
    fast_ocs_params,
    simulate_cp,
)
from repro.workloads import CombinedWorkload

ALPHAS = (0.25, 0.5, 1.0, 2.0)
BETAS = (0.5, 0.6, 0.7, 0.8, 0.9)


def main() -> None:
    params = fast_ocs_params(64)
    workload = CombinedWorkload.typical(params)
    demands = [
        workload.generate(params.n_ports, np.random.default_rng(seed)).demand
        for seed in range(3)
    ]
    solstice = SolsticeScheduler()

    print("cp-Switch mean completion time (ms) on typical DCN + skewed demand")
    print("rows: alpha (Bt = alpha*delta*Co) | columns: beta (Rt = beta*n)\n")
    header = "alpha\\beta" + "".join(f"{beta:>9}" for beta in BETAS)
    print(header)
    best = (float("inf"), None)
    for alpha in ALPHAS:
        cells = []
        for beta in BETAS:
            scheduler = CpSwitchScheduler(
                solstice, filter_config=FilterConfig(alpha=alpha, beta=beta)
            )
            times = [
                simulate_cp(demand, scheduler.schedule(demand, params), params).completion_time
                for demand in demands
            ]
            mean = float(np.mean(times))
            cells.append(mean)
            if mean < best[0]:
                best = (mean, (alpha, beta))
        print(f"{alpha:>10}" + "".join(f"{cell:>9.3f}" for cell in cells))

    (best_time, (alpha, beta)) = best
    print(
        f"\nbest grid point: alpha={alpha}, beta={beta} at {best_time:.3f} ms "
        f"(paper heuristic: alpha=1.0, beta=0.7)"
    )


if __name__ == "__main__":
    main()
