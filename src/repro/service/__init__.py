"""Service-grade scheduling wrappers (deadlines, graceful degradation).

The batch pipeline assumes the scheduler finishes before its results are
needed.  A long-running scheduling service (ROADMAP open item 1) needs the
opposite guarantee: an epoch always has *some* valid schedule by its
wall-clock deadline.  :mod:`repro.service.deadline` provides the budget
and the anytime wrapper that make that guarantee explicit.
"""

from repro.service.deadline import (
    FALLBACK_EPS_ONLY,
    FALLBACK_FULL,
    FALLBACK_TDM,
    FALLBACK_TRUNCATED,
    FALLBACK_WARM_REUSE,
    AnytimeOutcome,
    AnytimeScheduler,
    DeadlineBudget,
    TickClock,
)

__all__ = [
    "AnytimeOutcome",
    "AnytimeScheduler",
    "DeadlineBudget",
    "TickClock",
    "FALLBACK_FULL",
    "FALLBACK_TRUNCATED",
    "FALLBACK_WARM_REUSE",
    "FALLBACK_TDM",
    "FALLBACK_EPS_ONLY",
]
