"""Service-grade scheduling: deadlines, graceful degradation, the loop.

The batch pipeline assumes the scheduler finishes before its results are
needed.  A long-running scheduling service (ROADMAP item 1) needs the
opposite guarantee: an epoch always has *some* valid schedule by its
wall-clock deadline.  :mod:`repro.service.deadline` provides the budget
and the anytime wrapper that make that guarantee explicit;
:mod:`repro.service.loop` wraps the epoch controller into the continuous
asyncio loop a deployment would operate (ingestion, monotonic epoch
clock, warm-worker stage sharding, drain-on-stop), and
:mod:`repro.service.stages` holds the pool-addressable per-epoch stages.
"""

from repro.service.deadline import (
    FALLBACK_EPS_ONLY,
    FALLBACK_FULL,
    FALLBACK_TDM,
    FALLBACK_TRUNCATED,
    FALLBACK_WARM_REUSE,
    AnytimeOutcome,
    AnytimeScheduler,
    DeadlineBudget,
    TickClock,
)
from repro.service.loop import (
    EpochOutcome,
    SchedulingService,
    ServiceConfig,
    ServiceReport,
)
from repro.service.stages import DEFAULT_ARMS

__all__ = [
    "AnytimeOutcome",
    "AnytimeScheduler",
    "DeadlineBudget",
    "DEFAULT_ARMS",
    "EpochOutcome",
    "SchedulingService",
    "ServiceConfig",
    "ServiceReport",
    "TickClock",
    "FALLBACK_FULL",
    "FALLBACK_TRUNCATED",
    "FALLBACK_WARM_REUSE",
    "FALLBACK_TDM",
    "FALLBACK_EPS_ONLY",
]
