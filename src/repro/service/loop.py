"""Asyncio scheduling service: the epoch controller as a continuous loop.

:class:`~repro.analysis.controller.EpochController` is a library — you
call :meth:`offer` and :meth:`run_epoch` yourself.  :class:`SchedulingService`
wraps it into the long-running loop a deployment would actually operate
(ROADMAP item 1):

* an **ingestion task** pulls ``(epoch, demand)`` batches from an async
  arrival stream (:func:`repro.workloads.arrivals.arrival_stream`) into a
  bounded queue — when epochs fall behind, the queue fills and ingestion
  blocks: backpressure propagates to the stream instead of growing an
  unbounded buffer;
* an **epoch task** fires on a monotonic epoch clock, offers the next
  batch, and runs the controller's schedule/execute step — inline
  deadline budget, anytime fallback ladder, backpressure ledger and all;
* the per-epoch **auxiliary heavy stages** (independent scheduler arms,
  fast-reroute backup planning, robustness replays — see
  :mod:`repro.service.stages`) are sharded across a warm
  :class:`~repro.runner.pool.WorkerPool` and overlap with the inline
  epoch execution; a worker death respawns the worker and retries the
  stage.

Two drivers share one code path for the controller calls:

* :meth:`SchedulingService.run` — the asyncio loop above;
* :meth:`SchedulingService.run_sync` — a plain synchronous driver that
  issues the *identical* ``offer``/``run_epoch`` sequence and is
  therefore bit-identical to :meth:`EpochController.run`.

Shutdown is drain-by-default: :meth:`request_stop` (or the CLI's SIGTERM
handler) stops ingestion at the next batch boundary, the epoch task
finishes everything already queued, workers are joined, and the final
:class:`ServiceReport` carries balanced conservation ledgers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.runner.heartbeat import HeartbeatTicker, heartbeat_dir
from repro.runner.pool import StageResult, StageTask, WorkerPool, absorb_observations
from repro.service.stages import DEFAULT_ARMS
from repro.workloads.arrivals import arrival_stream

if TYPE_CHECKING:  # import cycle: analysis.controller imports service.deadline
    from repro.analysis.controller import ArrivalProcess, EpochController, EpochReport

#: Queue sentinel: the ingestion task is done (stream ended or stop requested).
_STREAM_END = None


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`SchedulingService` run.

    Parameters
    ----------
    n_epochs:
        Epochs to serve; ``None`` serves until :meth:`~SchedulingService.request_stop`.
    n_workers:
        Warm pool size for the sharded stages; ``0`` disables sharding
        (every epoch runs inline only).
    queue_depth:
        Ingestion queue bound — how many arrival batches may sit between
        the stream and the epoch task before backpressure blocks ingestion.
    epoch_interval_s:
        Monotonic epoch clock period: epoch ``k`` fires no earlier than
        ``k * epoch_interval_s`` after the service started.  ``0`` free-runs.
        An epoch that takes longer than the interval counts as an SLO
        violation (reason ``epoch_overrun``).
    arms:
        Independent scheduler arms sharded each epoch (names accepted by
        :func:`repro.hybrid.base.make_scheduler`); empty disables.
    shard_backups:
        Also shard a fast-reroute backup-planning stage each epoch.
    stage_retries / stage_timeout_s:
        Pool crash-retry budget and per-stage wall-clock budget.
    drain:
        On stop: finish every batch already queued (``True``, default) or
        abandon the queue immediately (``False`` — abandoned batches are
        counted, never silently lost).
    heartbeat:
        Keep a ``service`` heartbeat fresh next to the controller's
        journal (monotonic-tick contract; a no-op without a journal path).
    telemetry_port:
        Bind the live telemetry HTTP server (``/metrics``, ``/healthz``,
        ``/status``) on this port; ``0`` picks an ephemeral port (read
        ``service.telemetry.port`` after start).  ``None`` (default)
        disables the whole live plane — with it off the epoch path is
        byte-for-byte the untelemetered loop.
    telemetry_host:
        Bind address for the telemetry server (loopback by default).
    incidents_dir:
        Where the flight recorder dumps incident bundles; defaults to
        ``$REPRO_RUN_DIR/incidents`` when the telemetry plane is on.
        Setting it without ``telemetry_port`` enables the recorder alone
        (bundles, no HTTP server).
    recorder_epochs:
        Flight-recorder ring size: epochs of context in each bundle.
    mono_clock / async_sleep:
        Injection seams for the epoch clock (tests step a fake clock).
    """

    n_epochs: "int | None" = None
    n_workers: int = 2
    queue_depth: int = 4
    epoch_interval_s: float = 0.0
    arms: "tuple[str, ...]" = DEFAULT_ARMS
    shard_backups: bool = True
    stage_retries: int = 1
    stage_timeout_s: "float | None" = None
    drain: bool = True
    heartbeat: bool = True
    telemetry_port: "int | None" = None
    telemetry_host: str = "127.0.0.1"
    incidents_dir: "str | Path | None" = None
    recorder_epochs: int = 8
    mono_clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    async_sleep: Callable = field(default=asyncio.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.n_epochs is not None and self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1 (or None), got {self.n_epochs}")
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.epoch_interval_s < 0:
            raise ValueError(
                f"epoch_interval_s must be >= 0, got {self.epoch_interval_s}"
            )
        if self.stage_retries < 0:
            raise ValueError(f"stage_retries must be >= 0, got {self.stage_retries}")
        if self.telemetry_port is not None and self.telemetry_port < 0:
            raise ValueError(
                f"telemetry_port must be >= 0 (or None), got {self.telemetry_port}"
            )
        if self.recorder_epochs < 1:
            raise ValueError(
                f"recorder_epochs must be >= 1, got {self.recorder_epochs}"
            )


@dataclass(frozen=True)
class EpochOutcome:
    """One service epoch: the controller's report plus the sharded stages."""

    report: EpochReport
    arms: "tuple[dict, ...]" = ()
    stage_failures: int = 0
    stage_retries: int = 0
    shard_pids: "tuple[int, ...]" = ()
    epoch_latency_s: float = 0.0
    slo_violation: bool = False


@dataclass
class ServiceReport:
    """Outcome of one service run (either driver)."""

    outcomes: "list[EpochOutcome]" = field(default_factory=list)
    drained: bool = True
    stopped_early: bool = False
    abandoned_batches: int = 0
    worker_pids: "tuple[int, ...]" = ()
    worker_deaths: int = 0
    stage_retries: int = 0
    slo_violations: int = 0
    admitted_mb: float = 0.0
    shed_mb: float = 0.0
    parked_mb: float = 0.0
    backlog_mb: float = 0.0
    incident_bundles: "list[str]" = field(default_factory=list)

    @property
    def reports(self) -> "list[EpochReport]":
        """The controller's per-epoch reports (the bit-identity surface)."""
        return [outcome.report for outcome in self.outcomes]

    @property
    def n_epochs(self) -> int:
        return len(self.outcomes)


class SchedulingService:
    """Continuous scheduling loop over an :class:`EpochController`.

    The controller keeps full ownership of scheduling state (VOQs,
    deadline ladder, conservation ledgers); the service owns *time and
    concurrency* — ingestion, the epoch clock, stage sharding, shutdown.
    """

    def __init__(
        self,
        controller: EpochController,
        arrivals: ArrivalProcess,
        config: "ServiceConfig | None" = None,
    ) -> None:
        self.controller = controller
        self.arrivals = arrivals
        self.config = config if config is not None else ServiceConfig()
        self._stop_requested = False
        self._stop_event: "asyncio.Event | None" = None
        #: Live telemetry plane; ``None`` until a run starts with
        #: ``telemetry_port`` / ``incidents_dir`` configured.  Smokes read
        #: ``service.telemetry.port`` to find the ephemeral scrape port.
        self.telemetry = None
        # Advisory heartbeat extras, replaced wholesale each epoch so the
        # ticker thread always reads a complete dict (no partial updates).
        self._hb_status: dict = {"service_epoch": None, "epochs_done": 0}

    # ------------------------------------------------------------------ #

    def request_stop(self) -> None:
        """Ask the loop to stop at the next batch boundary (thread-safe-ish:
        call from the loop thread or a signal handler on the loop)."""
        self._stop_requested = True
        if self.telemetry is not None:
            self.telemetry.set_draining(True)
        if self._stop_event is not None:
            self._stop_event.set()

    # ------------------------------------------------------------------ #
    # live telemetry plane
    # ------------------------------------------------------------------ #

    def _build_telemetry(self, pool: "WorkerPool | None" = None):
        """Construct the :class:`~repro.obs.live.LiveTelemetry` facade, or
        ``None`` when the config leaves the whole plane off (the default —
        nothing below this line runs on the untelemetered path)."""
        config = self.config
        if config.telemetry_port is None and config.incidents_dir is None:
            return None
        # Local imports: the live plane is opt-in, and loop.py must stay
        # importable without dragging the HTTP/incident machinery along.
        from repro.analysis.sweeps import default_run_dir
        from repro.obs.incidents import FlightRecorder
        from repro.obs.live import LiveTelemetry

        incidents_dir = config.incidents_dir
        if incidents_dir is None:
            incidents_dir = default_run_dir() / "incidents"
        recorder = FlightRecorder(
            incidents_dir, window_epochs=config.recorder_epochs
        )
        return LiveTelemetry(
            registry=obs.get_metrics(),
            port=config.telemetry_port,
            host=config.telemetry_host,
            recorder=recorder,
            pool_status_fn=pool.liveness if pool is not None else None,
        )

    def _heartbeat_status(self) -> dict:
        """Advisory extras for the service heartbeat (ticker thread)."""
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.touch()  # /healthz freshness rides the same beat
        return dict(self._hb_status)

    def _slo_reasons(self, report: EpochReport, latency_s: float) -> "list[str]":
        reasons: "list[str]" = []
        if report.deadline_hit:
            reasons.append("schedule_deadline")
        if (
            self.config.epoch_interval_s > 0
            and latency_s > self.config.epoch_interval_s
        ):
            reasons.append("epoch_overrun")
        return reasons

    def _note_epoch(
        self,
        epoch: int,
        outcome: EpochOutcome,
        *,
        records: "list[dict]",
        deaths: "list[dict]",
    ) -> "list[str]":
        """Update heartbeat extras + feed the telemetry plane one epoch.

        Returns the incident-bundle paths the flight recorder wrote (as
        strings, ready for :attr:`ServiceReport.incident_bundles`).
        """
        report = outcome.report
        status = {
            "service_epoch": epoch,
            "epochs_done": int(self._hb_status.get("epochs_done", 0)) + 1,
            "backlog_mb": report.backlog_after,
            "fallback_level": report.fallback_level,
        }
        telemetry = self.telemetry
        if telemetry is None:
            self._hb_status = status
            return []
        paths = telemetry.on_epoch(
            epoch=epoch,
            report=asdict(report),
            outcome={
                "slo_violation": outcome.slo_violation,
                "slo_reasons": self._slo_reasons(report, outcome.epoch_latency_s),
                "epoch_latency_s": outcome.epoch_latency_s,
                "stage_failures": outcome.stage_failures,
                "stage_retries": outcome.stage_retries,
                "shard_pids": list(outcome.shard_pids),
            },
            records=records,
            worker_deaths=deaths,
        )
        status["slo_burn_rate"] = telemetry.burn.rates()
        self._hb_status = status
        return [str(path) for path in paths]

    # ------------------------------------------------------------------ #

    def _stage_tasks(self, demand: np.ndarray, epoch: int) -> "list[StageTask]":
        config = self.config
        if config.n_workers == 0 or float(demand.sum()) <= 0.0:
            return []
        params = self.controller.params
        tasks = [
            StageTask(
                name=f"arm:{name}",
                fn="repro.service.stages:scheduler_arm",
                kwargs={
                    "name": name,
                    "demand": demand,
                    "params": params,
                    "use_composite_paths": self.controller.use_composite_paths,
                    "horizon": self.controller.epoch_duration,
                },
            )
            for name in config.arms
        ]
        if config.shard_backups and self.controller.use_composite_paths:
            dead_o2m, dead_m2o = self.controller.dead_composite_ports
            tasks.append(
                StageTask(
                    name="backup",
                    fn="repro.service.stages:backup_arm",
                    kwargs={
                        "demand": demand,
                        "params": params,
                        "blocked_o2m": dead_o2m,
                        "blocked_m2o": dead_m2o,
                    },
                )
            )
        return tasks

    def _publish_epoch(self, outcome: EpochOutcome) -> None:
        if not obs.active():
            return
        metrics = obs.get_metrics()
        if not metrics.enabled:
            return
        report = outcome.report
        metrics.counter("service_epochs_total", "service epochs executed").inc()
        metrics.histogram(
            "service_epoch_latency",
            "wall-clock seconds per service epoch (offer + schedule + execute)",
        ).observe(outcome.epoch_latency_s)
        metrics.gauge(
            "service_backlog_mb", "VOQ backlog (Mb) after the latest service epoch"
        ).set(report.backlog_after)
        if report.shed_volume:
            metrics.counter(
                "service_shed_mb_total",
                "arrival volume (Mb) refused by backpressure while serving",
            ).inc(report.shed_volume)
        if outcome.stage_retries:
            metrics.counter(
                "service_stage_retries_total",
                "sharded stages retried after a worker death",
            ).inc(outcome.stage_retries)
        violations = metrics.counter(
            "service_slo_violations_total",
            "epochs that missed a service objective (by reason)",
        )
        if report.deadline_hit:
            violations.labels(reason="schedule_deadline").inc()
        if (
            self.config.epoch_interval_s > 0
            and outcome.epoch_latency_s > self.config.epoch_interval_s
        ):
            violations.labels(reason="epoch_overrun").inc()

    def _outcome(
        self,
        report: EpochReport,
        stage_results: "list[StageResult]",
        retries: int,
        latency_s: float,
    ) -> EpochOutcome:
        slo = report.deadline_hit or (
            self.config.epoch_interval_s > 0
            and latency_s > self.config.epoch_interval_s
        )
        return EpochOutcome(
            report=report,
            arms=tuple(r.payload for r in stage_results if r.ok),
            stage_failures=sum(1 for r in stage_results if not r.ok),
            stage_retries=retries,
            shard_pids=tuple(
                sorted({r.pid for r in stage_results if r.pid is not None})
            ),
            epoch_latency_s=latency_s,
            slo_violation=slo,
        )

    def _finalize(self, report: ServiceReport) -> ServiceReport:
        report.slo_violations = sum(1 for o in report.outcomes if o.slo_violation)
        report.stage_retries = sum(o.stage_retries for o in report.outcomes)
        report.shed_mb = self.controller.shed_volume_total
        report.parked_mb = self.controller.parked_volume
        report.backlog_mb = self.controller.voqs.backlog
        # A service run must never lose a byte: audit the controller's
        # offered = admitted + shed + parked ledger before reporting.
        self.controller.check_conservation()
        return report

    # ------------------------------------------------------------------ #

    def run_sync(self) -> ServiceReport:
        """Synchronous driver: the exact ``offer``/``run_epoch`` sequence of
        :meth:`EpochController.run` — bit-identical reports, no asyncio,
        no worker pool."""
        if self.config.n_epochs is None:
            raise ValueError("run_sync() needs a finite n_epochs")
        report = ServiceReport()
        self.telemetry = self._build_telemetry()
        if self.telemetry is not None:
            self.telemetry.start()
        tracer = obs.get_tracer()
        trace_watermark = (
            len(tracer.records())
            if self.telemetry is not None and tracer.enabled
            else 0
        )
        try:
            for epoch in range(self.config.n_epochs):
                if self._stop_requested:
                    report.stopped_early = True
                    break
                report.admitted_mb += self.controller.offer(self.arrivals(epoch))
                start = time.perf_counter()
                epoch_report, _result = self.controller.run_epoch(epoch)
                outcome = self._outcome(
                    epoch_report, [], 0, time.perf_counter() - start
                )
                report.outcomes.append(outcome)
                self._publish_epoch(outcome)
                if self.telemetry is not None and tracer.enabled:
                    # Non-destructive len-watermark slice: ``records()`` is
                    # the whole buffer, the tail past the mark is this epoch.
                    records = tracer.records()
                    epoch_records = list(records[trace_watermark:])
                    trace_watermark = len(records)
                else:
                    epoch_records = []
                report.incident_bundles.extend(
                    self._note_epoch(
                        epoch, outcome, records=epoch_records, deaths=[]
                    )
                )
        finally:
            if self.telemetry is not None:
                self.telemetry.stop()
        return self._finalize(report)

    async def run(self) -> ServiceReport:
        """Asyncio driver: ingestion + epoch tasks + sharded stages."""
        config = self.config
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            self._stop_event.set()
        queue: "asyncio.Queue" = asyncio.Queue(maxsize=config.queue_depth)
        pool = (
            WorkerPool(
                config.n_workers,
                retries=config.stage_retries,
                timeout_s=config.stage_timeout_s,
            )
            if config.n_workers > 0 and (config.arms or config.shard_backups)
            else None
        )
        self.telemetry = self._build_telemetry(pool)
        if self.telemetry is not None:
            self.telemetry.start()
        tracer = obs.get_tracer()
        trace_watermark = (
            len(tracer.records())
            if self.telemetry is not None and tracer.enabled
            else 0
        )
        death_watermark = len(pool.death_log) if pool is not None else 0
        ticker = None
        journal = self.controller.journal
        if config.heartbeat and journal is not None and journal.path is not None:
            ticker = HeartbeatTicker(
                heartbeat_dir(journal.path),
                "service",
                experiment="service",
                status_fn=self._heartbeat_status,
            ).start()

        report = ServiceReport()
        ingest = asyncio.ensure_future(self._ingest(queue))
        start_mono = config.mono_clock()
        try:
            epochs_done = 0
            while True:
                if self._stop_event.is_set() and not config.drain:
                    report.drained = False
                    break
                batch = await queue.get()
                if batch is _STREAM_END:
                    break
                epoch, demand = batch
                if config.epoch_interval_s > 0:
                    # Fire on the monotonic grid: epoch k starts no earlier
                    # than k intervals after service start (no wall clock —
                    # an NTP step must never stretch or squeeze an epoch).
                    delay = (
                        start_mono
                        + epochs_done * config.epoch_interval_s
                        - config.mono_clock()
                    )
                    if delay > 0:
                        await config.async_sleep(delay)
                start = time.perf_counter()
                report.admitted_mb += self.controller.offer(demand)
                snapshot = self.controller.voqs.occupancy.copy()
                tasks = self._stage_tasks(snapshot, epoch) if pool is not None else []
                retries_before = pool.tasks_retried if pool is not None else 0
                stage_future = (
                    loop.run_in_executor(None, pool.map, tasks) if tasks else None
                )
                epoch_report, _result = await loop.run_in_executor(
                    None, self.controller.run_epoch, epoch
                )
                stage_results = await stage_future if stage_future is not None else []
                # Worker span/metric blobs fold in here, on the loop thread
                # — the pool never touches the tracer from its own threads.
                absorb_observations(stage_results)
                outcome = self._outcome(
                    epoch_report,
                    stage_results,
                    (pool.tasks_retried - retries_before) if pool is not None else 0,
                    time.perf_counter() - start,
                )
                report.outcomes.append(outcome)
                self._publish_epoch(outcome)
                if self.telemetry is not None and tracer.enabled:
                    # Non-destructive len-watermark slice: the tail past the
                    # mark is everything closed this epoch, absorbed worker
                    # blobs included (absorb_observations ran just above).
                    records = tracer.records()
                    epoch_records = list(records[trace_watermark:])
                    trace_watermark = len(records)
                else:
                    epoch_records = []
                deaths: "list[dict]" = []
                if pool is not None:
                    # Len-slice off the tail: appends are GIL-atomic and
                    # only ever grow the list.
                    log = pool.death_log
                    deaths = list(log[death_watermark : len(log)])
                    death_watermark += len(deaths)
                report.incident_bundles.extend(
                    self._note_epoch(
                        epoch, outcome, records=epoch_records, deaths=deaths
                    )
                )
                epochs_done += 1
        finally:
            if not ingest.done():
                ingest.cancel()
            try:
                await ingest
            except asyncio.CancelledError:
                pass
            while not queue.empty():
                if queue.get_nowait() is not _STREAM_END:
                    report.abandoned_batches += 1
            if pool is not None:
                report.worker_pids = tuple(sorted(pool.pids))
                report.worker_deaths = pool.worker_deaths
                pool.close()
            if ticker is not None:
                ticker.stop()
            if self.telemetry is not None:
                self.telemetry.stop()
            self._stop_event = None
        report.stopped_early = self._stop_requested
        return self._finalize(report)

    async def _ingest(self, queue: "asyncio.Queue") -> None:
        """Pull batches from the async arrival stream into the bounded queue."""
        assert self._stop_event is not None
        stream = arrival_stream(self.arrivals, self.config.n_epochs)
        async for epoch, demand in stream:
            if self._stop_event.is_set():
                break
            # The draw itself is sync and cheap; backpressure comes from
            # the bounded put below, which suspends ingestion while the
            # epoch task is queue_depth batches behind.
            await queue.put((epoch, demand))
        await queue.put(_STREAM_END)
