"""Deadline-aware anytime scheduling: budget, checkpoints, fallback ladder.

The epoch loop of a scheduling *service* cannot wait for Solstice or
Eclipse to converge: an epoch boundary arrives on the wall clock whether
the scheduler is done or not.  Two observations make a hard deadline
tractable without giving up schedule quality when there is time to spare:

* schedule value is incremental per configuration (Eclipse's objective is
  submodular; Solstice extracts its most valuable slices first), so a
  truncated prefix of a schedule is itself a useful schedule;
* every product of the pipeline short of a fresh schedule — last epoch's
  schedule, a naive TDM round-robin, the bare packet switch — is still a
  *valid* way to serve the demand, merely a worse one.

:class:`DeadlineBudget` turns the first observation into per-stage
checkpoints the schedulers poll (Algorithm 1 reduction, stuffing, each
BigSlice/Eclipse iteration, each interpretation step), and
:class:`AnytimeScheduler` turns the second into an explicit fallback
ladder selected when the budget runs out:

====  =================================================================
L0    the full schedule completed inside the budget
L1    truncate to the configurations produced so far; the EPS drains the
      residual (the schedulers' own ``deadline`` watchdog degradation)
L2    warm reuse — the previous epoch's reduced-space schedule is
      re-interpreted against the *current* demand (Algorithm 4 steps 3–4
      only; no h-Switch call), with grants on dead composite ports
      stripped via the fast-reroute grant machinery
L3    TDM round-robin (:class:`~repro.hybrid.tdm.TdmScheduler`) — O(n²)
      greedy edge coloring, no iterative convergence to wait for
L4    EPS-only drain (an empty schedule) — selected instead of L3 when
      the budget is *hard-overdrawn* (the scheduler blew through several
      deadlines' worth of wall clock before noticing)
====  =================================================================

The correctness spine: with ``deadline_s=None`` (or an infinite budget)
the wrapper is **bit-identical** to the unwrapped
:class:`~repro.core.scheduler.CpSwitchScheduler` — checkpoints only read
the clock, they never perturb arithmetic — and under any finite budget
every rung of the ladder yields a conservation-clean schedule
(``tests/test_deadline.py`` fuzzes both claims on both kernel backends).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.divide import divide_by_type
from repro.core.reduction import ReducedDemand, reduce_with_config
from repro.core.scheduler import CompositeScheduleEntry, CpSchedule, CpSwitchScheduler
from repro.core.cpsched import cpsched
from repro.faults.reroute import _granted_ports
from repro.hybrid.schedule import Schedule
from repro.hybrid.tdm import TdmScheduler
from repro.switch.params import SwitchParams

#: Fallback-ladder rungs (see module docstring).
FALLBACK_FULL: int = 0
FALLBACK_TRUNCATED: int = 1
FALLBACK_WARM_REUSE: int = 2
FALLBACK_TDM: int = 3
FALLBACK_EPS_ONLY: int = 4

#: Elapsed/deadline ratio past which even the TDM fallback is skipped: the
#: run is so far overdrawn that any further scheduling work steals from the
#: *next* epoch, so the EPS-only drain (zero additional work) is selected.
DEFAULT_HARD_OVERDRAFT: float = 4.0


class TickClock:
    """Deterministic fake clock: every reading advances time by ``step``.

    Injecting it for ``DeadlineBudget(clock=...)`` makes budget exhaustion
    a function of *how many checkpoints ran*, not of machine speed — the
    tests, the CI smoke, and the ``BENCH_obs.json`` quality fingerprint
    all rely on that to get deterministic fallback levels.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        if not step >= 0.0:  # NaN-safe
            raise ValueError(f"step must be >= 0, got {step}")
        self.now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading

    def jump(self, dt: float) -> None:
        """Advance time without a reading (models a stall/GC pause)."""
        self.now += float(dt)


def _check_deadline(deadline_s, name: str = "deadline_s") -> "float | None":
    """Validate a deadline knob: ``None``/``inf`` unbounded, else > 0."""
    if deadline_s is None:
        return None
    deadline_s = float(deadline_s)
    if math.isnan(deadline_s) or deadline_s <= 0:
        raise ValueError(
            f"{name} must be a positive number of seconds (or None for "
            f"unbounded), got {deadline_s}"
        )
    return deadline_s


class DeadlineBudget:
    """Monotonic wall-clock budget with per-stage checkpoints.

    A budget is armed with :meth:`start` and polled with
    :meth:`checkpoint`: each call records ``(stage, elapsed_s)`` and
    returns ``False`` once the deadline has passed — the polling loop's
    signal to stop and hand back whatever it has.  Checkpoints are
    *observations only*: they read the clock and never touch the numbers
    a scheduler computes, which is what keeps an unexhausted budget
    bit-identical to no budget at all.

    Parameters
    ----------
    deadline_s:
        Budget in seconds; ``None`` or ``inf`` never exhausts.
    clock:
        Monotonic time source (injectable; see :class:`TickClock`).
        Defaults to :func:`time.perf_counter` — the highest-resolution
        monotonic clock available; duration deltas must never come from
        the steppable wall clock.
    """

    def __init__(
        self,
        deadline_s: "float | None",
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.deadline_s = _check_deadline(deadline_s)
        self._clock = clock
        self._start: "float | None" = None
        self._exhausted = False
        self.checkpoints: "list[tuple[str, float]]" = []

    def start(self) -> "DeadlineBudget":
        """(Re)arm the budget: zero the clock and the checkpoint record."""
        self._start = self._clock()
        self._exhausted = False
        self.checkpoints = []
        return self

    def elapsed_s(self) -> float:
        """Seconds since :meth:`start` (arming lazily on first use)."""
        if self._start is None:
            self.start()
            return 0.0
        return max(0.0, self._clock() - self._start)

    def remaining_s(self) -> float:
        """Budget left; ``inf`` when unbounded, clamped at 0."""
        if self.deadline_s is None:
            return math.inf
        return max(0.0, self.deadline_s - self.elapsed_s())

    @property
    def exhausted(self) -> bool:
        """Whether any checkpoint has observed the deadline passed."""
        return self._exhausted

    def checkpoint(self, stage: str) -> bool:
        """Record a per-stage checkpoint; ``False`` means *stop now*.

        Emits a ``deadline_checkpoint`` trace event when tracing is on, so
        a traced run shows exactly where the budget went.
        """
        elapsed = self.elapsed_s()
        self.checkpoints.append((stage, elapsed))
        if self.deadline_s is not None and elapsed >= self.deadline_s:
            self._exhausted = True
        if obs.active():
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.event(
                    "deadline_checkpoint",
                    stage=stage,
                    elapsed_ms=elapsed * 1e3,
                    deadline_ms=(
                        self.deadline_s * 1e3
                        if self.deadline_s is not None and math.isfinite(self.deadline_s)
                        else None
                    ),
                    exhausted=self._exhausted,
                )
        return not self._exhausted

    def overdrawn(self, factor: float = DEFAULT_HARD_OVERDRAFT) -> bool:
        """Whether elapsed time exceeds ``factor ×`` the deadline."""
        if self.deadline_s is None or not math.isfinite(self.deadline_s):
            return False
        return self.elapsed_s() >= factor * self.deadline_s


@dataclass(frozen=True)
class AnytimeOutcome:
    """What one :meth:`AnytimeScheduler.schedule` call decided.

    Attributes
    ----------
    fallback_level:
        Rung of the fallback ladder (``FALLBACK_FULL`` … ``FALLBACK_EPS_ONLY``).
    deadline_hit:
        Whether the budget exhausted before the full schedule completed.
    schedule_ms:
        Wall-clock time the scheduling call consumed (budget's clock).
    schedule_age_epochs:
        For warm reuse (L2): how many ``schedule()`` calls old the reused
        reduced-space schedule is; 0 for every other rung.
    checkpoints:
        The per-stage ``(stage, elapsed_s)`` record of the run.
    detail:
        Human-readable one-liner (which rung and why).
    """

    fallback_level: int
    deadline_hit: bool
    schedule_ms: float
    schedule_age_epochs: int = 0
    checkpoints: "tuple[tuple[str, float], ...]" = ()
    detail: str = ""


def _trivial_reduction(demand: np.ndarray) -> ReducedDemand:
    """A park-nothing Algorithm-1 artifact: all demand on regular paths.

    The L3/L4 fallbacks never use composite paths, but a
    :class:`~repro.core.scheduler.CpSchedule` carries its reduction as
    provenance (and the simulator parks ``reduction.filtered``), so they
    wrap their schedules around this zero-filtered reduction.
    """
    n = demand.shape[0]
    reduced = np.zeros((n + 1, n + 1))
    reduced[:n, :n] = demand
    empty = np.zeros((n, n), dtype=bool)
    return ReducedDemand(
        reduced=reduced,
        filtered=np.zeros((n, n)),
        o2m_assignment=empty,
        m2o_assignment=empty.copy(),
        volume_threshold=0.0,
        fanout_threshold=0,
    )


@dataclass
class AnytimeScheduler:
    """Deadline-aware wrapper around :class:`CpSwitchScheduler`.

    Drop-in for the wrapped scheduler's ``schedule()`` signature; with
    ``deadline_s=None`` it delegates untouched (bit-identical output).
    With a finite budget it installs a :class:`DeadlineBudget` into the
    cp-Switch pipeline and the inner h-Switch scheduler for the duration
    of the call, then selects the best available rung of the fallback
    ladder (module docstring) and records the decision on
    :attr:`last_outcome` — the ``last_diagnostics`` idiom, so callers
    that only want a :class:`CpSchedule` never see the machinery.

    Parameters
    ----------
    inner:
        The :class:`CpSwitchScheduler` to wrap.
    deadline_s:
        Per-call wall-clock budget in seconds (``None``/``inf`` unbounded).
    clock:
        Monotonic time source for the budget (injectable for tests;
        defaults to :func:`time.perf_counter`, never the wall clock).
    hard_overdraft:
        Elapsed/deadline ratio past which L3 is skipped for L4.
    tdm:
        The round-robin scheduler used for the L3 rung.
    """

    inner: CpSwitchScheduler
    deadline_s: "float | None" = None
    clock: Callable[[], float] = field(default=time.perf_counter, repr=False)
    hard_overdraft: float = DEFAULT_HARD_OVERDRAFT
    tdm: TdmScheduler = field(default_factory=TdmScheduler, repr=False)
    last_outcome: "AnytimeOutcome | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.deadline_s = _check_deadline(self.deadline_s)
        if not self.hard_overdraft >= 1.0:  # NaN-safe
            raise ValueError(
                f"hard_overdraft must be >= 1, got {self.hard_overdraft}"
            )
        self._previous: "tuple[CpSchedule, int] | None" = None
        self._calls = 0

    @property
    def name(self) -> str:
        return f"anytime-{self.inner.name}"

    # ------------------------------------------------------------------ #

    def schedule(
        self,
        demand: np.ndarray,
        params: SwitchParams,
        *,
        blocked_o2m=None,
        blocked_m2o=None,
    ) -> CpSchedule:
        """Schedule ``demand`` within the budget; degrade if it runs out."""
        self._calls += 1
        budget = DeadlineBudget(self.deadline_s, clock=self.clock)
        budget.start()

        if self.deadline_s is None:
            # Unbounded: the wrapped pipeline runs untouched — no budget is
            # installed anywhere, so bit-identity is structural, not tested
            # luck.
            cp_schedule = self.inner.schedule(
                demand, params, blocked_o2m=blocked_o2m, blocked_m2o=blocked_m2o
            )
            outcome = AnytimeOutcome(
                fallback_level=FALLBACK_FULL,
                deadline_hit=False,
                schedule_ms=budget.elapsed_s() * 1e3,
                detail="unbounded budget: full schedule",
            )
            self._finish(cp_schedule, outcome, remember=True)
            return cp_schedule

        h_scheduler = self.inner.inner
        saved_cp = getattr(self.inner, "budget", None)
        saved_h = getattr(h_scheduler, "budget", None)
        self.inner.budget = budget
        if hasattr(h_scheduler, "budget"):
            h_scheduler.budget = budget
        try:
            cp_schedule = self.inner.schedule(
                demand, params, blocked_o2m=blocked_o2m, blocked_m2o=blocked_m2o
            )
        finally:
            self.inner.budget = saved_cp
            if hasattr(h_scheduler, "budget"):
                h_scheduler.budget = saved_h

        if not budget.exhausted:
            outcome = AnytimeOutcome(
                fallback_level=FALLBACK_FULL,
                deadline_hit=False,
                schedule_ms=budget.elapsed_s() * 1e3,
                checkpoints=tuple(budget.checkpoints),
                detail="full schedule within budget",
            )
            self._finish(cp_schedule, outcome, remember=True)
            return cp_schedule

        if len(cp_schedule.entries) > 0:
            # L1: the schedulers' own deadline watchdogs already truncated
            # the loop; the prefix is a valid schedule and the residual
            # (circuit-uncovered + parked-but-unserved) drains on the EPS.
            outcome = AnytimeOutcome(
                fallback_level=FALLBACK_TRUNCATED,
                deadline_hit=True,
                schedule_ms=budget.elapsed_s() * 1e3,
                checkpoints=tuple(budget.checkpoints),
                detail=(
                    f"budget exhausted after {len(cp_schedule.entries)} "
                    "configurations; prefix kept, residual drains on the EPS"
                ),
            )
            self._finish(cp_schedule, outcome, remember=True)
            return cp_schedule

        overdrawn = budget.overdrawn(self.hard_overdraft)
        previous = self._previous
        if previous is not None and not overdrawn:
            prev_schedule, prev_call = previous
            if prev_schedule.reduction.n_ports == demand.shape[0] and len(
                prev_schedule.reduced_schedule
            ):
                cp_schedule, stripped = self._reinterpret(
                    prev_schedule, demand, params, blocked_o2m, blocked_m2o
                )
                age = self._calls - prev_call
                outcome = AnytimeOutcome(
                    fallback_level=FALLBACK_WARM_REUSE,
                    deadline_hit=True,
                    schedule_ms=budget.elapsed_s() * 1e3,
                    schedule_age_epochs=age,
                    checkpoints=tuple(budget.checkpoints),
                    detail=(
                        f"warm reuse of schedule {age} epoch(s) old"
                        + (
                            f"; {stripped} dead-port grant(s) stripped"
                            if stripped
                            else ""
                        )
                    ),
                )
                self._finish(cp_schedule, outcome, remember=False)
                return cp_schedule

        if not overdrawn:
            cp_schedule = self._tdm_schedule(demand, params)
            outcome = AnytimeOutcome(
                fallback_level=FALLBACK_TDM,
                deadline_hit=True,
                schedule_ms=budget.elapsed_s() * 1e3,
                checkpoints=tuple(budget.checkpoints),
                detail="no schedule and no reusable predecessor: TDM round-robin",
            )
            self._finish(cp_schedule, outcome, remember=False)
            return cp_schedule

        cp_schedule = CpSchedule(
            entries=(),
            reconfig_delay=params.reconfig_delay,
            reduction=_trivial_reduction(demand),
            filtered_residual=np.zeros_like(demand),
            reduced_schedule=Schedule(entries=(), reconfig_delay=params.reconfig_delay),
        )
        outcome = AnytimeOutcome(
            fallback_level=FALLBACK_EPS_ONLY,
            deadline_hit=True,
            schedule_ms=budget.elapsed_s() * 1e3,
            checkpoints=tuple(budget.checkpoints),
            detail=(
                f"budget overdrawn beyond {self.hard_overdraft:g}x: "
                "EPS-only drain"
            ),
        )
        self._finish(cp_schedule, outcome, remember=False)
        return cp_schedule

    # ------------------------------------------------------------------ #

    def _finish(
        self, cp_schedule: CpSchedule, outcome: AnytimeOutcome, *, remember: bool
    ) -> None:
        """Record the outcome, update the warm-reuse cache, emit obs."""
        self.last_outcome = outcome
        if remember and len(cp_schedule.reduced_schedule):
            self._previous = (cp_schedule, self._calls)
        if obs.active():
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "deadline_fallback_total",
                    "anytime-scheduler outcomes by fallback-ladder level",
                ).labels(level=str(outcome.fallback_level)).inc()
                if outcome.deadline_hit:
                    metrics.counter(
                        "deadline_misses_total",
                        "scheduling calls whose wall-clock budget exhausted",
                    ).inc()
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.event(
                    "deadline.outcome",
                    scheduler=self.name,
                    fallback_level=outcome.fallback_level,
                    deadline_hit=outcome.deadline_hit,
                    schedule_ms=outcome.schedule_ms,
                    schedule_age_epochs=outcome.schedule_age_epochs,
                    configs=len(cp_schedule.entries),
                )

    def _reinterpret(
        self,
        prev: CpSchedule,
        demand: np.ndarray,
        params: SwitchParams,
        blocked_o2m,
        blocked_m2o,
    ) -> "tuple[CpSchedule, int]":
        """L2: re-run Algorithm 4 steps 3–4 over the previous reduced-space
        schedule against the *current* demand.

        The expensive part of the pipeline is the inner h-Switch call; the
        reduction (O(n²)) and the interpretation (O(n) per configuration)
        are cheap enough to run even past the deadline.  Grants on ports
        the caller reports dead are stripped — the same validation the
        fast-reroute planner applies via the grant inventory
        (:func:`repro.faults.reroute._granted_ports`) — so a stale
        schedule can never park demand on hardware known unable to serve
        it; the blocked reduction leaves those rows/columns unfiltered
        anyway, so the stripped grants carry no volume.
        """
        dead_o2m = set(int(p) for p in (blocked_o2m or ()))
        dead_m2o = set(int(p) for p in (blocked_m2o or ()))
        reduction = reduce_with_config(
            demand,
            params,
            self.inner.filter_config,
            blocked_o2m=blocked_o2m,
            blocked_m2o=blocked_m2o,
        )
        stripped = sum(
            1
            for kind, port in _granted_ports(prev.entries)
            if port in (dead_o2m if kind == "o2m" else dead_m2o)
        )
        eps_budget = params.effective_eps_budget
        filtered = reduction.filtered.copy()
        entries: "list[CompositeScheduleEntry]" = []
        for item in prev.reduced_schedule:
            previous = filtered.copy()
            divided = divide_by_type(item.permutation)
            o2m_port = divided.o2m_port
            if o2m_port is not None and o2m_port in dead_o2m:
                o2m_port = None
            m2o_port = divided.m2o_port
            if m2o_port is not None and m2o_port in dead_m2o:
                m2o_port = None
            if o2m_port is not None:
                filtered[o2m_port, :] = cpsched(
                    filtered[o2m_port, :], item.duration, params.ocs_rate, eps_budget
                )
            if m2o_port is not None:
                filtered[:, m2o_port] = cpsched(
                    filtered[:, m2o_port], item.duration, params.ocs_rate, eps_budget
                )
            entries.append(
                CompositeScheduleEntry(
                    regular=divided.regular,
                    duration=item.duration,
                    composite_served=previous - filtered,
                    o2m_port=o2m_port,
                    m2o_port=m2o_port,
                )
            )
        return (
            CpSchedule(
                entries=tuple(entries),
                reconfig_delay=params.reconfig_delay,
                reduction=reduction,
                filtered_residual=filtered,
                reduced_schedule=prev.reduced_schedule,
            ),
            stripped,
        )

    def _tdm_schedule(self, demand: np.ndarray, params: SwitchParams) -> CpSchedule:
        """L3: wrap a TDM round-robin schedule into cp-Switch form."""
        tdm_schedule = self.tdm.schedule(demand, params)
        zeros = np.zeros_like(demand)
        entries = tuple(
            CompositeScheduleEntry(
                regular=entry.permutation,
                duration=entry.duration,
                composite_served=zeros,
            )
            for entry in tdm_schedule
        )
        return CpSchedule(
            entries=entries,
            reconfig_delay=params.reconfig_delay,
            reduction=_trivial_reduction(demand),
            filtered_residual=zeros.copy(),
            reduced_schedule=tdm_schedule,
        )
