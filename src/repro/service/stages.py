"""Pool-addressable per-epoch heavy stages for the scheduling service.

Every epoch, the service runs the *primary* schedule inline (the epoch's
deadline budget and bit-identity contract live in the parent process) and
fans the auxiliary heavy stages out to a warm
:class:`~repro.runner.pool.WorkerPool`:

* :func:`scheduler_arm` — score an independent scheduler on the epoch's
  demand snapshot (what would Eclipse/TDM/... have delivered?);
* :func:`backup_arm` — precompute a fast-reroute backup set for the
  snapshot (how much outage cover could this epoch have armed, and at
  what planning cost?);
* :func:`robustness_arm` — replay the snapshot's schedule under a seeded
  fault realization (how would this epoch have degraded?).

Stage functions are addressed by ``"module:function"`` path (the same
convention as trial specs), take picklable keyword arguments, and return
small JSON-like dicts — the pool ships them over pipes, so nothing big
crosses back.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.scheduler import CpSwitchScheduler
from repro.faults.plan import FaultPlan
from repro.faults.reroute import BackupPlanner
from repro.hybrid.base import make_scheduler
from repro.sim import simulate_cp, simulate_hybrid
from repro.switch.params import SwitchParams

#: Default auxiliary arms the service shards each epoch.
DEFAULT_ARMS = ("eclipse", "tdm")


def scheduler_arm(
    *,
    name: str,
    demand: np.ndarray,
    params: SwitchParams,
    use_composite_paths: bool = True,
    horizon: "float | None" = None,
) -> dict:
    """Score one independent scheduler arm on an epoch's demand snapshot."""
    start = time.perf_counter()
    with obs.profiled("service.stage", stage="arm", arm=name):
        scheduler = make_scheduler(name)
        if use_composite_paths:
            schedule = CpSwitchScheduler(scheduler).schedule(demand, params)
            result = simulate_cp(demand, schedule, params, horizon=horizon)
        else:
            schedule = scheduler.schedule(demand, params)
            result = simulate_hybrid(demand, schedule, params, horizon=horizon)
    residual = (
        float(result.residual.sum()) if result.residual is not None else 0.0
    )
    return {
        "arm": name,
        "completion_time": result.completion_time,
        "n_configs": result.n_configs,
        "makespan": result.makespan,
        "residual_mb": residual,
        "stage_ms": (time.perf_counter() - start) * 1e3,
    }


def backup_arm(
    *,
    demand: np.ndarray,
    params: SwitchParams,
    name: str = "solstice",
    blocked_o2m: "tuple[int, ...]" = (),
    blocked_m2o: "tuple[int, ...]" = (),
) -> dict:
    """Precompute fast-reroute backups for an epoch's demand snapshot."""
    start = time.perf_counter()
    with obs.profiled("service.stage", stage="backup", arm=name):
        cp = CpSwitchScheduler(make_scheduler(name))
        schedule = cp.schedule(
            demand,
            params,
            blocked_o2m=set(blocked_o2m) or None,
            blocked_m2o=set(blocked_m2o) or None,
        )
        backups = BackupPlanner(cp).plan(
            demand,
            schedule,
            params,
            blocked_o2m=set(blocked_o2m),
            blocked_m2o=set(blocked_m2o),
        )
    return {
        "arm": f"backup:{name}",
        "n_armed": backups.n_armed,
        "plan_ms": backups.plan_seconds * 1e3,
        "stage_ms": (time.perf_counter() - start) * 1e3,
    }


def robustness_arm(
    *,
    demand: np.ndarray,
    params: SwitchParams,
    name: str = "solstice",
    seed: int = 0,
    stream: int = 0,
    o2m_outage_rate: float = 0.2,
    m2o_outage_rate: float = 0.2,
) -> dict:
    """Replay an epoch's schedule under a seeded composite-outage draw."""
    start = time.perf_counter()
    with obs.profiled("service.stage", stage="robustness", arm=name):
        cp = CpSwitchScheduler(make_scheduler(name))
        schedule = cp.schedule(demand, params)
        plan = FaultPlan(
            seed=seed,
            o2m_outage_rate=o2m_outage_rate,
            m2o_outage_rate=m2o_outage_rate,
        )
        result = simulate_cp(
            demand,
            schedule,
            params,
            faults=plan.injector(params.n_ports, stream=stream),
        )
    summary = result.fault_summary
    residual = (
        float(result.residual.sum()) if result.residual is not None else 0.0
    )
    return {
        "arm": f"robustness:{name}",
        "completion_time": result.completion_time,
        "residual_mb": residual,
        "composite_outages": summary.composite_outages if summary else 0,
        "released_mb": result.released_composite,
        "stage_ms": (time.perf_counter() - start) * 1e3,
    }
