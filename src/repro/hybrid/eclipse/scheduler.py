"""The Eclipse scheduling loop (Bojja Venkatakrishnan et al., Sigmetrics '16).

Eclipse targets **OCS utilization**: maximize the total demand transmitted
over the circuit switch inside a fixed scheduling window ``W``, paying a
reconfiguration penalty δ for every configuration.  The objective is
monotone submodular in the chosen set of (configuration, duration) pairs,
and the paper's greedy — repeatedly pick the pair maximizing *served volume
per unit of wall time* — is a 1/2-approximation.

One greedy step here:

1. build the candidate duration grid (see
   :mod:`repro.hybrid.eclipse.durations`);
2. for each α, solve a maximum-weight matching with weights
   ``min(residual_ij, α · Co)``;
3. keep the (α, M) with the best ``value / (α + δ)``;
4. commit it: subtract the served volume, advance the window clock by
   ``α + δ``.

The loop ends when the window cannot fit another reconfiguration plus a
positive-duration configuration, or no residual demand remains.

Watchdogs
---------
With a tiny reconfiguration penalty and a residual full of near-tolerance
entries, the greedy can legally take astronomically many microscopic steps
before the window fills — a hung trial from the sweep's point of view.  A
step cap (``max_steps``, default ``8·n + 256`` — generous against the
handful of steps any realistic window admits) and a clock-stall detector
bound the loop; on either trigger the scheduler returns the schedule built
so far (valid — the EPS serves the rest) and records a
:class:`~repro.hybrid.diagnostics.SchedulerDiagnostics` entry on
``last_diagnostics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.hybrid.diagnostics import SchedulerDiagnostics
from repro.hybrid.eclipse.durations import candidate_durations
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.matching import kernels
from repro.matching.max_weight import assignment_to_permutation, max_weight_matching
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: Window (ms) paired with fast OCS in the paper's evaluation (§3.1).
DEFAULT_FAST_WINDOW: float = 1.0
#: Window (ms) paired with slow OCS in the paper's evaluation (§3.1).
DEFAULT_SLOW_WINDOW: float = 100.0
#: Reconfiguration delays at or below this (ms) count as "fast" when the
#: window is left to default.
_FAST_DELTA_CUTOFF: float = 1.0


@dataclass
class EclipseScheduler:
    """Utilization-driven h-Switch scheduler.

    Parameters
    ----------
    window:
        Scheduling window ``W`` in ms.  ``None`` selects the paper's pairing
        by OCS class: 1 ms when ``δ ≤ 1 ms`` (fast OCS), else 100 ms.
    grid_size:
        Number of candidate durations evaluated per greedy step.
    max_steps:
        Watchdog cap on greedy steps; ``None`` uses ``8·n + 256``.

    Attributes
    ----------
    last_diagnostics:
        Watchdog records from the most recent :meth:`schedule` call (empty
        when the loop converged normally).
    """

    window: "float | None" = None
    grid_size: int = 16
    max_steps: "int | None" = None
    name: str = "eclipse"
    last_diagnostics: "list[SchedulerDiagnostics]" = field(
        default_factory=list, repr=False, compare=False
    )
    #: Optional :class:`~repro.service.deadline.DeadlineBudget` polled at
    #: every greedy step (duck-typed to avoid an import cycle).  A budget
    #: that never exhausts changes nothing — checkpoints only read the
    #: clock.
    budget: "object | None" = field(default=None, repr=False, compare=False)

    def resolved_window(self, params: SwitchParams) -> float:
        """The window actually used for ``params`` (resolving the default)."""
        if self.window is not None:
            if self.window <= 0:
                raise ValueError(f"window must be positive, got {self.window}")
            return float(self.window)
        if params.reconfig_delay <= _FAST_DELTA_CUTOFF:
            return DEFAULT_FAST_WINDOW
        return DEFAULT_SLOW_WINDOW

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> Schedule:
        """Greedy submodular schedule of ``demand`` within the window."""
        residual = check_demand_matrix(demand)
        delta = params.reconfig_delay
        ocs_rate = params.ocs_rate
        window = self.resolved_window(params)

        entries: list[ScheduleEntry] = []
        clock = 0.0
        self.last_diagnostics = []
        n = residual.shape[0]
        step_cap = self.max_steps if self.max_steps is not None else 8 * n + 256

        span = (
            obs.get_tracer().begin(
                "eclipse.schedule", n=n, window_ms=window, step_cap=step_cap
            )
            if obs.active() and obs.get_tracer().enabled
            else None
        )
        # Steps whose clock advance is below float resolution of the window
        # would let the loop run ~forever without ever filling it.
        min_advance = np.finfo(np.float64).eps * max(window, 1.0)
        while residual.max(initial=0.0) > VOLUME_TOL:
            if self.budget is not None and not self.budget.checkpoint(
                "eclipse.step"
            ):
                self._degrade(
                    "deadline",
                    f"wall-clock budget exhausted after {len(entries)} greedy "
                    f"steps with {window - clock:.3g} ms of window unused",
                    len(entries),
                    step_cap,
                    residual,
                )
                break
            available = window - clock - delta
            if available <= 0:
                break
            if len(entries) >= step_cap:
                self._degrade(
                    "step-cap",
                    f"greedy step cap {step_cap} reached with "
                    f"{window - clock:.3g} ms of window unused",
                    len(entries),
                    step_cap,
                    residual,
                )
                break
            best = self._best_step(residual, ocs_rate, delta, available)
            if best is None:
                break
            duration, permutation, served = best
            if duration + delta <= min_advance:
                self._degrade(
                    "clock-stall",
                    f"step advance {duration + delta:.3g} ms is below the "
                    "window's float resolution",
                    len(entries),
                    step_cap,
                    residual,
                )
                break
            residual -= served
            np.clip(residual, 0.0, None, out=residual)
            entries.append(ScheduleEntry(permutation=permutation, duration=duration))
            clock += duration + delta

        if obs.active():
            if span is not None:
                obs.get_tracer().end(
                    span, steps=len(entries), window_used_ms=clock
                )
            tracer = obs.get_tracer()
            if tracer.enabled:
                # Schedule-quality audit: deterministic decisions only, the
                # alignment record for `obs diff` / the BENCH_obs gate.
                tracer.event(
                    "scheduler.audit",
                    scheduler=self.name,
                    n=n,
                    configs=len(entries),
                    window_used_ms=clock,
                    watchdogs=len(self.last_diagnostics),
                    residual_mb=float(residual.sum()),
                )
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "eclipse_steps_total", "greedy (configuration, duration) steps"
                ).inc(len(entries))
                metrics.counter(
                    "eclipse_schedules_total", "EclipseScheduler.schedule() calls"
                ).inc()

        return Schedule(entries=tuple(entries), reconfig_delay=delta)

    def _degrade(
        self,
        event: str,
        detail: str,
        iterations: int,
        cap: int,
        residual: np.ndarray,
    ) -> None:
        """Record one watchdog degradation on ``last_diagnostics``."""
        diagnostics = SchedulerDiagnostics(
            scheduler=self.name,
            event=event,
            detail=detail,
            iterations=iterations,
            cap=cap,
            residual=float(residual.sum()),
        )
        self.last_diagnostics.append(diagnostics)
        if obs.active():
            obs.record_watchdog(diagnostics)

    def _best_step(
        self,
        residual: np.ndarray,
        ocs_rate: float,
        delta: float,
        available: float,
    ) -> "tuple[float, np.ndarray, np.ndarray] | None":
        """Best (duration, permutation, served-volume matrix) this step.

        Returns ``None`` when no candidate serves positive volume.
        """
        durations = candidate_durations(
            residual, ocs_rate, available, grid_size=self.grid_size
        )
        if kernels.kernels_active():
            return self._best_step_kernel(residual, ocs_rate, delta, durations)
        best_rate = 0.0
        best: "tuple[float, np.ndarray, np.ndarray] | None" = None
        for alpha in durations.tolist():
            weights = np.minimum(residual, alpha * ocs_rate)
            assignment, value = max_weight_matching(weights)
            if value <= VOLUME_TOL:
                continue
            rate = value / (alpha + delta)
            if rate > best_rate * (1 + 1e-12):
                rows = np.arange(residual.shape[0])
                served = np.zeros_like(residual)
                served[rows, assignment] = weights[rows, assignment]
                # Prune circuits that carry nothing: they would otherwise
                # read as spurious composite-path assignments downstream.
                permutation = assignment_to_permutation(assignment)
                permutation[served <= VOLUME_TOL] = 0
                best_rate = rate
                best = (alpha, permutation, served)
        return best

    def _best_step_kernel(
        self,
        residual: np.ndarray,
        ocs_rate: float,
        delta: float,
        durations: np.ndarray,
    ) -> "tuple[float, np.ndarray, np.ndarray] | None":
        """Kernel-backend :meth:`_best_step` — bit-identical decisions.

        Three accelerations over the oracle loop above, none changing any
        number it publishes:

        * **Bound pruning** — the assignment value is at most the smaller
          of the row-max and column-max sums of the weights (each matched
          entry is bounded by its row's and column's maximum, and each row
          and column is used at most once); the row/col maxes of
          ``min(residual, cap)`` are ``min(max(residual), cap)``, so the
          bound is O(n) per candidate against the O(n³) solve.  A 1e-9
          relative margin swamps summation rounding, so no candidate the
          oracle would accept is ever pruned.
        * **Saturation sharing** — candidates with
          ``cap >= residual.max()`` all have ``min(residual, cap) ==
          residual`` element-wise, hence one (deterministic) LSAP solve
          serves them all.
        * **Deferred construction** — the served-volume and permutation
          matrices are materialised once for the winning candidate instead
          of on every incumbent update (the oracle's rates typically rise
          with α, so it rebuilds them nearly every iteration).
        """
        row_max = residual.max(axis=1)
        col_max = residual.max(axis=0)
        residual_max = float(row_max.max())
        saturated: "tuple[np.ndarray, float] | None" = None
        best_rate = 0.0
        best_alpha = 0.0
        best_assignment: "np.ndarray | None" = None
        for alpha in durations.tolist():
            cap = alpha * ocs_rate
            bound = min(
                float(np.minimum(row_max, cap).sum()),
                float(np.minimum(col_max, cap).sum()),
            )
            if bound <= VOLUME_TOL * (1 - 1e-9):
                continue  # value <= VOLUME_TOL: oracle would skip too
            if bound * (1 + 1e-9) <= best_rate * (1 + 1e-12) * (alpha + delta):
                continue  # cannot beat the incumbent rate
            if cap >= residual_max:
                if saturated is None:
                    saturated = max_weight_matching(residual)
                assignment, value = saturated
            else:
                assignment, value = max_weight_matching(
                    np.minimum(residual, cap)
                )
            if value <= VOLUME_TOL:
                continue
            rate = value / (alpha + delta)
            if rate > best_rate * (1 + 1e-12):
                best_rate = rate
                best_alpha = alpha
                best_assignment = assignment
        if best_assignment is None:
            return None
        weights = np.minimum(residual, best_alpha * ocs_rate)
        rows = np.arange(residual.shape[0])
        served = np.zeros_like(residual)
        served[rows, best_assignment] = weights[rows, best_assignment]
        permutation = assignment_to_permutation(best_assignment)
        permutation[served <= VOLUME_TOL] = 0
        return best_alpha, permutation, served
