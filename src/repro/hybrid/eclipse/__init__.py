"""Eclipse (Bojja Venkatakrishnan et al., Sigmetrics 2016) — submodular
greedy h-Switch scheduling maximizing demand served over the OCS within a
time window."""

from repro.hybrid.eclipse.durations import candidate_durations
from repro.hybrid.eclipse.scheduler import EclipseScheduler

__all__ = ["EclipseScheduler", "candidate_durations"]
