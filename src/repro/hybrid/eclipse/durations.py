"""Candidate circuit-duration grid for Eclipse's greedy step.

Each greedy iteration of Eclipse searches over (duration α, matching M)
pairs.  For a *fixed* matching, the marginal value ``Σ min(D_ij, α·Co)`` is
piecewise linear in α with breakpoints exactly where some matched entry
drains, i.e. at ``α = D_ij / Co``.  The optimum of ``value / (α + δ)`` is
therefore attained at one of those breakpoints (or at the window edge), so
searching a grid of demand-derived drain times loses nothing structural.

To bound work on dense matrices we thin the breakpoints to at most
``grid_size`` quantiles of the positive residual entries, always keeping the
smallest and largest, and always adding the remaining-window duration.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import VOLUME_TOL


def candidate_durations(
    residual: np.ndarray,
    ocs_rate: float,
    max_duration: float,
    *,
    grid_size: int = 16,
) -> np.ndarray:
    """Sorted, deduplicated candidate durations (ms) for one greedy step.

    Parameters
    ----------
    residual:
        Current residual demand matrix (Mb).
    ocs_rate:
        OCS line rate ``Co`` (Mb/ms).
    max_duration:
        Longest allowed duration — the window time still available after
        accounting for the next reconfiguration.
    grid_size:
        Maximum number of demand-derived candidates (≥ 2).

    Returns
    -------
    Array of strictly positive durations, each ≤ ``max_duration``; empty if
    ``max_duration`` is not positive or there is no residual demand.
    """
    if grid_size < 2:
        raise ValueError(f"grid_size must be >= 2, got {grid_size}")
    if max_duration <= 0:
        return np.empty(0)
    values = np.asarray(residual, dtype=np.float64)
    values = values[values > VOLUME_TOL]
    if values.size == 0:
        return np.empty(0)

    drain_times = np.unique(values) / ocs_rate
    if drain_times.size > grid_size:
        quantiles = np.linspace(0.0, 1.0, grid_size)
        drain_times = np.unique(np.quantile(drain_times, quantiles))
    candidates = np.minimum(drain_times, max_duration)
    candidates = np.append(candidates, max_duration)
    candidates = np.unique(candidates)
    return candidates[candidates > 0]
