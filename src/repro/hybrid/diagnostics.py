"""Scheduler watchdog diagnostics.

Solstice and Eclipse are iterative schedulers; on adversarial demand
matrices their inner loops can fail to converge (QuickStuff's float repair
falls short, a slice's perfect matching stops existing, Eclipse's duration
search takes astronomically many tiny steps).  In a production sweep none
of those may crash or hang the run: the watchdogs in the scheduler loops
detect the condition, degrade gracefully to a valid (if suboptimal)
schedule — leftover demand always drains over the packet switch — and
record what happened as a :class:`SchedulerDiagnostics` entry on the
scheduler's ``last_diagnostics`` list.

Events currently emitted:

* ``stuffing-imbalance`` — QuickStuff could not equalize row/column sums
  within tolerance even after bounded repair rounds (the stuffed matrix is
  still element-wise ≥ the demand, so every real byte is accounted for);
* ``slice-infeasible`` — BigSlice found no perfect matching (the stuffed
  matrix lost the equal-sum invariant); Solstice stops extracting circuits
  and leaves the remainder to the EPS;
* ``config-cap`` — Solstice hit its configuration cap with demand still
  uncovered;
* ``slice-stall`` — a slice stopped advancing the schedule (zero-duration
  or no-progress step);
* ``step-cap`` — Eclipse hit its greedy-step cap before exhausting the
  window;
* ``clock-stall`` — Eclipse's window clock stopped advancing measurably;
* ``deadline`` — a :class:`~repro.service.deadline.DeadlineBudget`
  checkpoint observed the wall-clock budget exhausted; the scheduler
  stopped iterating and returned the configurations built so far (the
  anytime L1 truncation — leftover demand drains over the packet switch).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class SchedulerDiagnostics:
    """One watchdog observation from a scheduler run.

    Attributes
    ----------
    scheduler:
        Which component fired (``"solstice"``, ``"eclipse"``,
        ``"quick_stuff"``).
    event:
        Machine-readable event name (see module docstring).
    detail:
        Human-readable one-liner.
    iterations:
        Loop iterations completed when the watchdog fired.
    cap:
        The iteration/configuration cap in force, if any.
    residual:
        Demand volume (Mb) left uncovered by circuits when the scheduler
        degraded — this volume rides the packet switch instead.
    """

    scheduler: str
    event: str
    detail: str
    iterations: int = 0
    cap: "int | None" = None
    residual: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)
