"""Scheduler protocol: anything that turns a demand matrix into a Schedule.

The cp-Switch scheduler (Algorithm 4) is deliberately generic over the
h-Switch scheduler it wraps — "directly extend any hybrid-switching
scheduling algorithm" (§1).  This module defines that seam.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.hybrid.schedule import Schedule
from repro.switch.params import SwitchParams


@runtime_checkable
class HybridScheduler(Protocol):
    """Protocol for h-Switch scheduling algorithms.

    Implementations are constructed with whatever algorithm-specific knobs
    they need and then called with ``(demand, params)``.  The demand may be
    any square size — in particular (n+1)×(n+1) reduced cp-Switch demands —
    and the returned schedule's permutations match that size.
    """

    #: Short machine-readable name ("solstice", "eclipse") used in reports.
    name: str

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> Schedule:
        """Compute an OCS schedule for ``demand`` under ``params``."""
        ...


def make_scheduler(name: str, **kwargs) -> HybridScheduler:
    """Factory by name — convenience for experiment configs and examples.

    Parameters
    ----------
    name:
        ``"solstice"``, ``"eclipse"``, or ``"tdm"`` (case-insensitive);
        ``"tdm"`` is the Figure 1(a) round-robin strawman baseline.
    kwargs:
        Forwarded to the scheduler constructor (e.g. ``window`` for
        Eclipse).
    """
    from repro.hybrid.eclipse import EclipseScheduler
    from repro.hybrid.solstice import SolsticeScheduler
    from repro.hybrid.tdm import TdmScheduler

    key = name.strip().lower()
    if key == "solstice":
        return SolsticeScheduler(**kwargs)
    if key == "eclipse":
        return EclipseScheduler(**kwargs)
    if key == "tdm":
        return TdmScheduler(**kwargs)
    raise ValueError(
        f"unknown scheduler {name!r}; expected 'solstice', 'eclipse', or 'tdm'"
    )
