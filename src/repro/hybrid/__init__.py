"""Hybrid-switch (h-Switch) scheduling: shared schedule types and the two
state-of-the-art baseline schedulers the paper evaluates against, Solstice
(completion time) and Eclipse (OCS utilization)."""

from repro.hybrid.base import HybridScheduler, make_scheduler
from repro.hybrid.eclipse import EclipseScheduler
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice import SolsticeScheduler
from repro.hybrid.tdm import TdmScheduler

__all__ = [
    "EclipseScheduler",
    "HybridScheduler",
    "Schedule",
    "ScheduleEntry",
    "SolsticeScheduler",
    "TdmScheduler",
    "make_scheduler",
]
