"""BigSlice — Solstice's greedy threshold-slicing step.

Given a stuffed (equal row/column sum) matrix ``E``, BigSlice finds a large
threshold ``r`` such that the bipartite graph with an edge wherever
``E[i, j] >= r`` admits a perfect matching, and returns that matching with
``r``.  Scheduling the matching for ``r / Co`` and subtracting ``r`` from
every matched entry keeps all row and column sums equal (they each drop by
exactly ``r``), preserving the invariant — and with it the existence of the
next perfect matching.

Feasibility is monotone in ``r`` and changes only at values present in
``E``, so the exact optimum is found by binary search over the sorted
unique positive entries.  For large matrices that set can approach ``n^2``
values; we binary-search a quantile grid of it (``max_probes`` candidates)
and then tighten the returned threshold to the **minimum matched entry** of
the found matching — a value at least as large as the probed threshold, so
the slice is never smaller than what the probe guaranteed, and the
stuffedness invariant holds exactly.  With ``max_probes=None`` the search
is exhaustive and exactly optimal.
"""

from __future__ import annotations

import numpy as np

from repro.matching import kernels
from repro.matching.hopcroft_karp import maximum_matching_mask
from repro.utils.validation import VOLUME_TOL

#: Default size of the quantile grid the threshold search probes.
DEFAULT_MAX_PROBES: int = 64

_NOT_STUFFED_MSG = (
    "no perfect matching over positive entries; matrix is not stuffed "
    "(row/column sums unequal?)"
)


class BigSliceState:
    """Warm-start memo carried across :func:`big_slice` calls on one matrix.

    The Solstice loop calls BigSlice repeatedly on the *same* stuffed
    matrix, subtracting the slice threshold from the matched entries in
    between — entries only ever decrease.  Three things survive between
    calls under that contract:

    * the previous slice's perfect matching (adopted by the
      :class:`~repro.matching.kernels.WarmMatcher` as a warm start — only
      the entries the subtraction zeroed out need re-augmenting);
    * an **infeasibility certificate**: once ``matrix >= v`` lacked a
      perfect matching, it lacks one forever (masks only shrink), so later
      threshold searches clip their probe range to values below ``v``
      instead of re-discovering the bound;
    * the quantile-grid index cache: for ``method="nearest"`` the probed
      quantiles are pure *positions* in the sorted unique values, so the
      index vector depends only on the value count and is reused.

    The state must be created fresh for every scheduler run (a new stuffed
    matrix invalidates all three memos).
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix
        self.matcher = kernels.WarmMatcher(matrix)
        self.infeasible_at: float = np.inf
        #: ``match_left`` of the slice most recently returned — the
        #: scheduler uses it for O(n) fancy-indexed subtraction.
        self.last_match: "np.ndarray | None" = None
        self._qidx: "dict[tuple[int, int], np.ndarray]" = {}
        self._grids: "dict[int, np.ndarray]" = {}
        n = matrix.shape[0]
        self._rows = np.arange(n)
        #: Nonzero structure, maintained across slices.  Entries only ever
        #: decrease, so positions that fall to ``<= VOLUME_TOL`` never
        #: revive — the live set shrinks monotonically and every probe and
        #: value extraction runs in O(nnz) instead of O(n²).  Positions are
        #: stored in row-major (``np.nonzero``) order, so boolean
        #: sub-selection yields canonical (row-sorted) CSR indices.
        nz_rows, nz_cols = np.nonzero(matrix > VOLUME_TOL)
        self._nz_rows = nz_rows.astype(np.int32)
        self._nz_cols = nz_cols.astype(np.int32)
        self._indptr = np.zeros(n + 1, dtype=np.int32)

    def quantile_index(self, m: int, max_probes: int) -> np.ndarray:
        """Positions ``np.quantile(values, grid, method="nearest")`` picks.

        For the "nearest" method the selected elements depend only on the
        array length, never its contents: numpy rounds the virtual indexes
        ``q * (m - 1)`` half-to-even, so ``values[rint(grid * (m - 1))]``
        reproduces the oracle's probe grid bit-for-bit at a fraction of a
        full quantile computation (~150 µs → ~3 µs per slice).
        """
        key = (m, max_probes)
        index = self._qidx.get(key)
        if index is None:
            grid = self._grids.get(max_probes)
            if grid is None:
                grid = np.linspace(0.0, 1.0, max_probes)
                self._grids[max_probes] = grid
            index = np.rint(grid * (m - 1)).astype(np.int64)
            self._qidx[key] = index
        return index


def big_slice(
    stuffed: np.ndarray,
    *,
    max_probes: "int | None" = DEFAULT_MAX_PROBES,
    state: "BigSliceState | None" = None,
) -> "tuple[float, np.ndarray]":
    """Large-threshold perfect matching of a stuffed matrix.

    Parameters
    ----------
    stuffed:
        Equal row/column-sum non-negative matrix with positive total volume.
    max_probes:
        Cap on candidate thresholds probed (quantiles of the unique entry
        values).  ``None`` probes every unique value (exact optimum).

    Returns
    -------
    threshold, permutation:
        The slicing threshold ``r`` (Mb) — the minimum entry the returned
        matching touches — and a full n×n 0/1 permutation matrix supported
        on entries ``>= r``.

    Raises
    ------
    ValueError
        If no positive entries exist, or no perfect matching exists even at
        the smallest positive threshold (i.e. the matrix is not stuffed).
    """
    if state is not None:
        return _big_slice_kernel(state, max_probes)

    matrix = np.asarray(stuffed, dtype=np.float64)
    values = np.unique(matrix[matrix > VOLUME_TOL])
    if values.size == 0:
        raise ValueError("big_slice called on an (effectively) empty matrix")
    if max_probes is not None and values.size > max_probes:
        grid = np.linspace(0.0, 1.0, max_probes)
        values = np.unique(np.quantile(values, grid, method="nearest"))

    n = matrix.shape[0]

    def probe(threshold: float) -> "np.ndarray | None":
        match, size = maximum_matching_mask(matrix >= threshold)
        return match if size == n else None

    lo, hi = 0, values.size - 1
    best_match = probe(float(values[lo]))
    if best_match is None:
        raise ValueError(_NOT_STUFFED_MSG)
    lo += 1
    while lo <= hi:
        mid = (lo + hi) // 2
        match = probe(float(values[mid]))
        if match is not None:
            best_match = match
            lo = mid + 1
        else:
            hi = mid - 1

    rows = np.arange(n)
    # Tighten: the slice can be as thick as the thinnest matched entry.
    threshold = float(matrix[rows, best_match].min())
    permutation = np.zeros((n, n), dtype=np.int8)
    permutation[rows, best_match] = 1
    return threshold, permutation


def _big_slice_kernel(
    state: BigSliceState, max_probes: "int | None"
) -> "tuple[float, np.ndarray]":
    """Warm-start BigSlice — bit-identical to the oracle path above.

    Why identical output is guaranteed, not just hoped for:

    * The candidate grid is the same by construction — ``np.unique`` of the
      positive entries, thinned by the same ``method="nearest"`` quantiles
      (selected through the cached position index, which picks exactly the
      elements ``np.quantile`` would return).
    * Both paths find the **largest grid index whose mask admits a perfect
      matching**.  Feasibility is a property of the mask, not of the
      matching algorithm, so warm-start Kuhn probes and the oracle's scipy
      probes agree on every verdict — and hence on the winning index.  The
      infeasibility certificate only removes probes whose verdict is
      already known (entries never increase between slices), never changing
      the outcome.
    * The oracle's published matching is always the scipy matching at that
      winning index: its binary search only stores ``best_match`` when a
      probe succeeds, and successful probe values increase monotonically,
      so the last stored one is the probe at the winner.  The kernel makes
      that exact scipy call (byte-identical CSR arrays) once, instead of
      ``O(log m)`` times.
    """
    matrix = state.matrix
    # Refresh the live nonzero structure: gather current values at the
    # tracked positions and drop the ones the last subtraction killed.
    # ``matrix[matrix > VOLUME_TOL]`` extracts in row-major order — exactly
    # the order the tracked positions are kept in — so the value multiset
    # and its sort below match the oracle's bit-for-bit.
    vals = matrix[state._nz_rows, state._nz_cols]
    alive = vals > VOLUME_TOL
    if not alive.all():
        state._nz_rows = state._nz_rows[alive]
        state._nz_cols = state._nz_cols[alive]
        vals = vals[alive]
    if vals.size == 0:
        raise ValueError("big_slice called on an (effectively) empty matrix")
    # Sorted unique positive values, as ``np.unique`` would produce them —
    # sort + neighbour-dedup is ~3× cheaper than ``np.unique``'s hash path.
    positive = np.sort(vals)
    keep = np.empty(positive.size, dtype=bool)
    keep[0] = True
    np.not_equal(positive[1:], positive[:-1], out=keep[1:])
    values = positive[keep]
    if max_probes is not None and values.size > max_probes:
        # The oracle re-dedups after quantile selection, but that is a
        # no-op here: with m > max_probes the rounded grid positions are
        # strictly increasing (step (m-1)/(max_probes-1) > 1), and distinct
        # indices into a strictly increasing array select distinct values.
        values = values[state.quantile_index(values.size, max_probes)]

    n = matrix.shape[0]
    # Match from the winning probe — the binary search's last successful
    # probe is always at the winning index, so the published matching needs
    # no separate derivation.
    match_star: "np.ndarray | None" = None

    if kernels.SCIPY_AVAILABLE:
        # Compiled probes: warm-start Kuhn repair in interpreted Python
        # costs more per row expansion than scipy's whole Hopcroft–Karp
        # run at these sizes, so each probe asks scipy directly.  The CSR
        # biadjacency is assembled straight from the tracked nonzero
        # structure — O(nnz), never a dense n² mask — and matches what
        # ``csr_matrix(matrix >= value)`` would hold byte-for-byte (every
        # entry ≥ a grid value is > VOLUME_TOL and hence tracked).
        nz_rows = state._nz_rows
        nz_cols = state._nz_cols
        indptr = state._indptr

        def probe(value: float) -> bool:
            nonlocal match_star
            sel = vals >= value
            np.cumsum(
                np.bincount(nz_rows[sel], minlength=n), out=indptr[1:]
            )
            match, size = kernels.scipy_matching_csr(nz_cols[sel], indptr, n)
            if size != n:
                return False
            match_star = match
            return True

    else:
        # Pure-Python probes: here warm repair wins — re-augmenting the
        # few rows the last subtraction invalidated is far cheaper than a
        # cold O(E√V) Hopcroft–Karp per probe.  Verdicts are exact, so the
        # search result is identical; only the published matching must
        # come from the oracle's own matcher (below).
        matcher = state.matcher

        def probe(value: float) -> bool:
            nonlocal match_star
            match_star = None
            return bool(matcher.feasible(value))

    # Clip the search below the carried infeasibility certificate.
    hi = values.size - 1
    if state.infeasible_at != np.inf:
        hi = int(np.searchsorted(values, state.infeasible_at, side="left")) - 1
    star = -1
    if hi >= 0:
        # Probe the top of the admissible range first: the certificate and
        # the Hall bound usually pin the winner, making this the only
        # probe of the call.  When the top probe fails, the winner is
        # almost always within a step or two below it (the slice
        # subtraction only drops a handful of grid values), so descend
        # linearly a couple of steps before paying for a full bisection.
        descents = 3
        while descents and hi >= 0:
            if probe(float(values[hi])):
                star = hi
                break
            state.infeasible_at = float(values[hi])
            hi -= 1
            descents -= 1
        else:
            lo = 0
            while lo <= hi:
                mid = (lo + hi) // 2
                if probe(float(values[mid])):
                    star = mid
                    lo = mid + 1
                else:
                    state.infeasible_at = float(values[mid])
                    hi = mid - 1
    if star < 0:
        raise ValueError(_NOT_STUFFED_MSG)

    if match_star is not None:
        match = match_star
    else:
        # No-scipy search path: publish the oracle matcher's matching at
        # the winning value so output stays bit-identical to the oracle.
        match, size = maximum_matching_mask(matrix >= values[star])
        if size != n:  # pragma: no cover - contradicts the feasibility verdict
            raise ValueError(_NOT_STUFFED_MSG)
        state.matcher.seed(match)  # keep the warm start aligned
    state.last_match = match

    rows = state._rows
    threshold = float(matrix[rows, match].min())
    permutation = np.zeros((n, n), dtype=np.int8)
    permutation[rows, match] = 1
    return threshold, permutation
