"""BigSlice — Solstice's greedy threshold-slicing step.

Given a stuffed (equal row/column sum) matrix ``E``, BigSlice finds a large
threshold ``r`` such that the bipartite graph with an edge wherever
``E[i, j] >= r`` admits a perfect matching, and returns that matching with
``r``.  Scheduling the matching for ``r / Co`` and subtracting ``r`` from
every matched entry keeps all row and column sums equal (they each drop by
exactly ``r``), preserving the invariant — and with it the existence of the
next perfect matching.

Feasibility is monotone in ``r`` and changes only at values present in
``E``, so the exact optimum is found by binary search over the sorted
unique positive entries.  For large matrices that set can approach ``n^2``
values; we binary-search a quantile grid of it (``max_probes`` candidates)
and then tighten the returned threshold to the **minimum matched entry** of
the found matching — a value at least as large as the probed threshold, so
the slice is never smaller than what the probe guaranteed, and the
stuffedness invariant holds exactly.  With ``max_probes=None`` the search
is exhaustive and exactly optimal.
"""

from __future__ import annotations

import numpy as np

from repro.matching.hopcroft_karp import maximum_matching_mask
from repro.utils.validation import VOLUME_TOL

#: Default size of the quantile grid the threshold search probes.
DEFAULT_MAX_PROBES: int = 64


def big_slice(
    stuffed: np.ndarray, *, max_probes: "int | None" = DEFAULT_MAX_PROBES
) -> "tuple[float, np.ndarray]":
    """Large-threshold perfect matching of a stuffed matrix.

    Parameters
    ----------
    stuffed:
        Equal row/column-sum non-negative matrix with positive total volume.
    max_probes:
        Cap on candidate thresholds probed (quantiles of the unique entry
        values).  ``None`` probes every unique value (exact optimum).

    Returns
    -------
    threshold, permutation:
        The slicing threshold ``r`` (Mb) — the minimum entry the returned
        matching touches — and a full n×n 0/1 permutation matrix supported
        on entries ``>= r``.

    Raises
    ------
    ValueError
        If no positive entries exist, or no perfect matching exists even at
        the smallest positive threshold (i.e. the matrix is not stuffed).
    """
    matrix = np.asarray(stuffed, dtype=np.float64)
    values = np.unique(matrix[matrix > VOLUME_TOL])
    if values.size == 0:
        raise ValueError("big_slice called on an (effectively) empty matrix")
    if max_probes is not None and values.size > max_probes:
        grid = np.linspace(0.0, 1.0, max_probes)
        values = np.unique(np.quantile(values, grid, method="nearest"))

    n = matrix.shape[0]

    def probe(threshold: float) -> "np.ndarray | None":
        match, size = maximum_matching_mask(matrix >= threshold)
        return match if size == n else None

    lo, hi = 0, values.size - 1
    best_match = probe(float(values[lo]))
    if best_match is None:
        raise ValueError(
            "no perfect matching over positive entries; matrix is not stuffed "
            "(row/column sums unequal?)"
        )
    lo += 1
    while lo <= hi:
        mid = (lo + hi) // 2
        match = probe(float(values[mid]))
        if match is not None:
            best_match = match
            lo = mid + 1
        else:
            hi = mid - 1

    rows = np.arange(n)
    # Tighten: the slice can be as thick as the thinnest matched entry.
    threshold = float(matrix[rows, best_match].min())
    permutation = np.zeros((n, n), dtype=np.int8)
    permutation[rows, best_match] = 1
    return threshold, permutation
