"""The Solstice scheduling loop (Liu et al., CoNEXT 2015).

Solstice targets **demand completion time** on a hybrid switch: it stuffs
the demand matrix (see :mod:`repro.hybrid.solstice.stuffing`), then greedily
extracts long-lived circuit configurations with BigSlice (see
:mod:`repro.hybrid.solstice.slicing`) until the *leftover* demand — the part
the extracted circuits do not cover — is small enough for the packet switch
to finish within the circuit schedule's own makespan.  At that point adding
another configuration can only push completion later (every configuration
costs an extra δ of dark OCS), so the loop stops.

Stopping rule
-------------
The Solstice paper states the loop runs "until the remaining demand can be
sent over the packet switch" in comparable time; the exact inequality is an
implementation choice.  We use the natural completion-time form: stop before
adding a configuration when::

    max_port_load(leftover) / Ce  <=  makespan(schedule so far)

where ``max_port_load / Ce`` is the EPS's lower bound for draining the
leftover (EPS runs concurrently with the circuit schedule from time 0), and
the makespan counts one δ per configuration.  A safety cap of ``n^2``
configurations (the BvN bound) guarantees termination even for adversarial
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice.slicing import big_slice
from repro.hybrid.solstice.stuffing import quick_stuff
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix


@dataclass
class SolsticeScheduler:
    """Completion-time-driven h-Switch scheduler.

    Parameters
    ----------
    max_configs:
        Optional hard cap on the number of OCS configurations; ``None``
        means the BvN bound ``n^2``.
    min_slice_duration:
        Skip (stop at) slices shorter than this many ms of circuit time;
        0 disables the floor.  The paper's model never needs it, but it is
        a useful guard for degenerate demands with many epsilon entries.
    """

    max_configs: "int | None" = None
    min_slice_duration: float = 0.0
    name: str = "solstice"

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> Schedule:
        """Compute the Solstice OCS schedule for ``demand``.

        The demand may be any square size (Solstice is size-agnostic; the
        cp-Switch scheduler feeds it (n+1)×(n+1) reduced demands).
        """
        demand = check_demand_matrix(demand)
        n = demand.shape[0]
        delta = params.reconfig_delay
        ocs_rate = params.ocs_rate
        eps_rate = params.eps_rate
        cap = self.max_configs if self.max_configs is not None else n * n

        entries: list[ScheduleEntry] = []
        makespan = 0.0
        leftover = demand.copy()  # real demand not yet covered by circuits
        stuffed = quick_stuff(demand)

        while len(entries) < cap:
            port_load = max(leftover.sum(axis=1).max(), leftover.sum(axis=0).max())
            if port_load <= VOLUME_TOL:
                break  # circuits already cover everything
            if port_load / eps_rate <= makespan:
                break  # EPS finishes the leftover within the schedule anyway
            if stuffed.max(initial=0.0) <= VOLUME_TOL:
                break  # stuffed matrix fully decomposed
            threshold, permutation = big_slice(stuffed)
            duration = threshold / ocs_rate
            if self.min_slice_duration and duration < self.min_slice_duration:
                break
            mask = permutation.astype(bool)
            stuffed[mask] = np.maximum(stuffed[mask] - threshold, 0.0)
            # Circuits serve real demand up to the slice capacity.
            capacity = duration * ocs_rate
            leftover[mask] = np.maximum(leftover[mask] - capacity, 0.0)
            entries.append(ScheduleEntry(permutation=permutation, duration=duration))
            makespan += duration + delta

        return Schedule(entries=tuple(entries), reconfig_delay=delta)
