"""The Solstice scheduling loop (Liu et al., CoNEXT 2015).

Solstice targets **demand completion time** on a hybrid switch: it stuffs
the demand matrix (see :mod:`repro.hybrid.solstice.stuffing`), then greedily
extracts long-lived circuit configurations with BigSlice (see
:mod:`repro.hybrid.solstice.slicing`) until the *leftover* demand — the part
the extracted circuits do not cover — is small enough for the packet switch
to finish within the circuit schedule's own makespan.  At that point adding
another configuration can only push completion later (every configuration
costs an extra δ of dark OCS), so the loop stops.

Stopping rule
-------------
The Solstice paper states the loop runs "until the remaining demand can be
sent over the packet switch" in comparable time; the exact inequality is an
implementation choice.  We use the natural completion-time form: stop before
adding a configuration when::

    max_port_load(leftover) / Ce  <=  makespan(schedule so far)

where ``max_port_load / Ce`` is the EPS's lower bound for draining the
leftover (EPS runs concurrently with the circuit schedule from time 0), and
the makespan counts one δ per configuration.  A safety cap of ``n^2``
configurations (the BvN bound) guarantees termination even for adversarial
inputs.

Watchdogs
---------
The loop never raises on non-convergence.  If the stuffed matrix loses the
equal-sum invariant (so BigSlice finds no perfect matching), or a slice
stops advancing the schedule, the loop stops extracting circuits and the
remaining demand drains over the packet switch — a valid, merely
suboptimal, schedule.  Each such degradation is recorded as a
:class:`~repro.hybrid.diagnostics.SchedulerDiagnostics` entry on
``last_diagnostics`` (reset at every :meth:`SolsticeScheduler.schedule`
call) so sweeps can report it instead of crashing on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.hybrid.diagnostics import SchedulerDiagnostics
from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.hybrid.solstice.slicing import BigSliceState, big_slice
from repro.hybrid.solstice.stuffing import quick_stuff_diagnosed
from repro.matching import kernels
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix


@dataclass
class SolsticeScheduler:
    """Completion-time-driven h-Switch scheduler.

    Parameters
    ----------
    max_configs:
        Optional hard cap on the number of OCS configurations; ``None``
        means the BvN bound ``n^2``.
    min_slice_duration:
        Skip (stop at) slices shorter than this many ms of circuit time;
        0 disables the floor.  The paper's model never needs it, but it is
        a useful guard for degenerate demands with many epsilon entries.

    Attributes
    ----------
    last_diagnostics:
        Watchdog records from the most recent :meth:`schedule` call (empty
        when the loop converged normally).
    """

    max_configs: "int | None" = None
    min_slice_duration: float = 0.0
    name: str = "solstice"
    last_diagnostics: "list[SchedulerDiagnostics]" = field(
        default_factory=list, repr=False, compare=False
    )
    #: Optional :class:`~repro.service.deadline.DeadlineBudget` polled at
    #: the stuffing boundary and every slicing iteration (duck-typed to
    #: avoid an import cycle).  A budget that never exhausts changes
    #: nothing — checkpoints only read the clock.
    budget: "object | None" = field(default=None, repr=False, compare=False)

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> Schedule:
        """Compute the Solstice OCS schedule for ``demand``.

        The demand may be any square size (Solstice is size-agnostic; the
        cp-Switch scheduler feeds it (n+1)×(n+1) reduced demands).
        """
        demand = check_demand_matrix(demand)
        n = demand.shape[0]
        delta = params.reconfig_delay
        ocs_rate = params.ocs_rate
        eps_rate = params.eps_rate
        cap = self.max_configs if self.max_configs is not None else n * n

        entries: list[ScheduleEntry] = []
        makespan = 0.0
        leftover = demand.copy()  # real demand not yet covered by circuits
        self.last_diagnostics = []

        obs_on = obs.active()
        span = (
            obs.get_tracer().begin("solstice.schedule", n=n, cap=cap)
            if obs_on and obs.get_tracer().enabled
            else None
        )

        with obs.profiled("solstice.stuffing"):
            stuffed, stuffing_diag = quick_stuff_diagnosed(demand)
        if stuffing_diag is not None:
            self.last_diagnostics.append(stuffing_diag)
            if obs_on:
                obs.record_watchdog(stuffing_diag)
        if self.budget is not None:
            # Stage marker only: exhaustion here surfaces at the first
            # slicing checkpoint below, keeping a single degradation path.
            self.budget.checkpoint("solstice.stuffing")

        # Kernel backend: carry the warm-start/certificate memo across the
        # slicing loop (see BigSliceState).  Every number it influences is
        # bit-identical to the oracle path; REPRO_KERNELS=oracle disables it.
        slice_state = BigSliceState(stuffed) if kernels.kernels_active() else None
        rows = np.arange(n)

        while len(entries) < cap:
            if self.budget is not None and not self.budget.checkpoint(
                "solstice.slice"
            ):
                self._degrade(
                    "deadline",
                    f"wall-clock budget exhausted after {len(entries)} slices; "
                    "the EPS drains the leftover",
                    len(entries),
                    cap,
                    leftover,
                )
                break
            port_load = max(leftover.sum(axis=1).max(), leftover.sum(axis=0).max())
            if port_load <= VOLUME_TOL:
                break  # circuits already cover everything
            if port_load / eps_rate <= makespan:
                break  # EPS finishes the leftover within the schedule anyway
            if stuffed.max(initial=0.0) <= VOLUME_TOL:
                break  # stuffed matrix fully decomposed
            try:
                threshold, permutation = big_slice(stuffed, state=slice_state)
            except ValueError as exc:
                # Equal-sum invariant broken (adversarial stuffing residue):
                # stop extracting circuits; the EPS drains the leftover.
                self._degrade(
                    "slice-infeasible", str(exc), len(entries), cap, leftover
                )
                break
            duration = threshold / ocs_rate
            if self.min_slice_duration and duration < self.min_slice_duration:
                break
            if duration <= 0.0:
                # A zero-thickness slice advances neither the makespan nor
                # the leftover — without this guard the loop spins to the
                # configuration cap doing nothing.
                self._degrade(
                    "slice-stall",
                    f"slice threshold {threshold:.3g} Mb yields a zero-duration "
                    "configuration",
                    len(entries),
                    cap,
                    leftover,
                )
                break
            capacity = duration * ocs_rate
            if slice_state is not None:
                # O(n) fancy-indexed subtraction along the matched entries.
                # Boolean masking with a full permutation visits the same
                # entries in the same (row-major) order, so the arithmetic
                # is element-for-element identical to the oracle branch.
                cols = slice_state.last_match
                stuffed[rows, cols] = np.maximum(
                    stuffed[rows, cols] - threshold, 0.0
                )
                leftover[rows, cols] = np.maximum(
                    leftover[rows, cols] - capacity, 0.0
                )
                # The permutation was built from a verified perfect
                # matching; skip re-validation on the hot path.
                entries.append(ScheduleEntry.trusted(permutation, duration))
            else:
                mask = permutation.astype(bool)
                stuffed[mask] = np.maximum(stuffed[mask] - threshold, 0.0)
                # Circuits serve real demand up to the slice capacity.
                leftover[mask] = np.maximum(leftover[mask] - capacity, 0.0)
                entries.append(
                    ScheduleEntry(permutation=permutation, duration=duration)
                )
            makespan += duration + delta
        else:
            # Configuration cap hit with demand still uncovered — the EPS
            # picks up the remainder; record that the cap bound the loop.
            port_load = max(leftover.sum(axis=1).max(), leftover.sum(axis=0).max())
            if port_load > VOLUME_TOL and port_load / eps_rate > makespan:
                self._degrade(
                    "config-cap",
                    f"configuration cap {cap} reached with "
                    f"{float(leftover.sum()):.3g} Mb not circuit-covered",
                    len(entries),
                    cap,
                    leftover,
                )

        if obs_on:
            if span is not None:
                obs.get_tracer().end(
                    span, slices=len(entries), makespan_ms=makespan
                )
            tracer = obs.get_tracer()
            if tracer.enabled:
                # Schedule-quality audit: deterministic decisions only, the
                # alignment record for `obs diff` / the BENCH_obs gate.
                tracer.event(
                    "scheduler.audit",
                    scheduler=self.name,
                    n=n,
                    configs=len(entries),
                    makespan_ms=makespan,
                    watchdogs=len(self.last_diagnostics),
                    residual_mb=float(leftover.sum()),
                )
            metrics = obs.get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "solstice_slices_total", "BigSlice configurations extracted"
                ).inc(len(entries))
                metrics.counter(
                    "solstice_schedules_total", "SolsticeScheduler.schedule() calls"
                ).inc()

        return Schedule(entries=tuple(entries), reconfig_delay=delta)

    def _degrade(
        self,
        event: str,
        detail: str,
        iterations: int,
        cap: int,
        leftover: np.ndarray,
    ) -> None:
        """Record one watchdog degradation on ``last_diagnostics``."""
        diagnostics = SchedulerDiagnostics(
            scheduler=self.name,
            event=event,
            detail=detail,
            iterations=iterations,
            cap=cap,
            residual=float(leftover.sum()),
        )
        self.last_diagnostics.append(diagnostics)
        if obs.active():
            obs.record_watchdog(diagnostics)
