"""Solstice (Liu et al., CoNEXT 2015) — completion-time-driven h-Switch
scheduling via matrix stuffing and greedy threshold slicing."""

from repro.hybrid.solstice.scheduler import SolsticeScheduler
from repro.hybrid.solstice.slicing import big_slice
from repro.hybrid.solstice.stuffing import quick_stuff, quick_stuff_diagnosed

__all__ = ["SolsticeScheduler", "big_slice", "quick_stuff", "quick_stuff_diagnosed"]
