"""QuickStuff — Solstice's matrix-stuffing step.

Solstice first "stuffs" the demand matrix ``D`` into a matrix ``E >= D``
whose row sums and column sums all equal the same value
``phi = max port load``.  Such an equal-sum matrix decomposes completely
into permutation matrices (Birkhoff–von-Neumann), which is what makes the
slicing loop's perfect matchings always exist.

QuickStuff adds the padding volume in two passes:

1. **Non-zero pass** — grow existing non-zero entries first (largest first,
   for determinism), so padding rides along circuits that real demand needs
   anyway and the stuffed matrix stays as sparse as the input.
2. **Zero pass** — distribute the remaining row/column slack over zero
   entries greedily (largest slack first).

Both passes preserve ``E >= D`` and terminate with every row and column sum
exactly ``phi``.

Float pathology on adversarial inputs (huge dynamic range, near-tolerance
entries) can leave the sums unequal beyond tolerance; instead of raising —
which used to abort whole sweeps — a watchdog runs bounded repair rounds
(re-pair the exact residual slacks, raising ``phi`` to the largest observed
sum so only volume is *added* and ``E >= D`` stays intact) and, if the
matrix still is not equalized, returns it anyway together with a
:class:`~repro.hybrid.diagnostics.SchedulerDiagnostics` record.  Downstream
the Solstice loop degrades gracefully when slicing such a matrix.
"""

from __future__ import annotations

import numpy as np

from repro.hybrid.diagnostics import SchedulerDiagnostics
from repro.matching import kernels
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: Bounded repair attempts before QuickStuff accepts the imbalance.
MAX_REPAIR_ROUNDS: int = 3


def quick_stuff(demand: np.ndarray) -> np.ndarray:
    """Stuff ``demand`` into an equal-row/column-sum matrix.

    Returns a new matrix ``E`` with ``E >= demand`` element-wise and all row
    and column sums equal to the maximum port load of ``demand``.

    Examples
    --------
    >>> import numpy as np
    >>> E = quick_stuff(np.array([[3.0, 0.0], [1.0, 1.0]]))
    >>> E.sum(axis=0).tolist(), E.sum(axis=1).tolist()
    ([4.0, 4.0], [4.0, 4.0])
    """
    stuffed, _diag = quick_stuff_diagnosed(demand)
    return stuffed


def quick_stuff_diagnosed(
    demand: np.ndarray,
) -> "tuple[np.ndarray, SchedulerDiagnostics | None]":
    """:func:`quick_stuff` plus the watchdog's diagnostics record.

    The second element is ``None`` when the sums equalized exactly (the
    overwhelmingly common case) and a ``stuffing-imbalance`` record when
    bounded repair could not close the gap — the returned matrix is still a
    valid ``E >= demand`` over-approximation either way, never an exception.
    """
    stuffed = check_demand_matrix(demand)
    n = stuffed.shape[0]
    row_sums = stuffed.sum(axis=1)
    col_sums = stuffed.sum(axis=0)
    phi = float(max(row_sums.max(), col_sums.max()))
    if phi <= VOLUME_TOL:
        return stuffed, None  # empty demand stuffs to itself

    # Pass 1: absorb slack into existing non-zero entries, largest first.
    # The scan is inherently sequential (each entry's slack depends on the
    # updates before it), so it runs over plain Python floats — an order of
    # magnitude cheaper than per-entry numpy scalar indexing — and the
    # accumulated additions are written back to the matrix in one batch.
    # The arithmetic (min of two float64 differences, one addition each) is
    # identical operation-for-operation, so the result is bit-identical.
    rows, cols = np.nonzero(stuffed > VOLUME_TOL)
    order = np.argsort(-stuffed[rows, cols], kind="stable")
    rows, cols = rows[order], cols[order]
    if kernels.kernels_active():
        # Kernel backend: the same scan through kernels.quick_stuff_pass1
        # (numba-compiled when available, identical float64 arithmetic).
        added = kernels.quick_stuff_pass1(rows, cols, row_sums, col_sums, phi)
        stuffed[rows, cols] += added  # (rows, cols) pairs are unique
    else:
        row_list = rows.tolist()
        col_list = cols.tolist()
        rs = row_sums.tolist()
        cs = col_sums.tolist()
        added = [0.0] * len(row_list)
        for k, (i, j) in enumerate(zip(row_list, col_list)):
            ri, cj = rs[i], cs[j]
            slack = min(phi - ri, phi - cj)
            if slack > 0:
                added[k] = slack
                rs[i] = ri + slack
                cs[j] = cj + slack
        stuffed[rows, cols] += added  # (rows, cols) pairs are unique
        row_sums = np.array(rs)
        col_sums = np.array(cs)

    # Pass 2: pair remaining row slack with column slack on any entries.
    # Total row slack equals total column slack, so a greedy pairing always
    # terminates: each step zeroes at least one port's slack.
    row_slack = phi - row_sums
    col_slack = phi - col_sums
    # kind="stable" (as in pass 1): the default introsort orders tied
    # slacks differently across numpy versions/platforms, breaking the
    # repo's bit-identity guarantees on demands with duplicated loads.
    open_rows = [
        int(i) for i in np.argsort(-row_slack, kind="stable") if row_slack[i] > VOLUME_TOL
    ]
    open_cols = [
        int(j) for j in np.argsort(-col_slack, kind="stable") if col_slack[j] > VOLUME_TOL
    ]
    ri = ci = 0
    while ri < len(open_rows) and ci < len(open_cols):
        i, j = open_rows[ri], open_cols[ci]
        fill = min(row_slack[i], col_slack[j])
        if fill > VOLUME_TOL:
            stuffed[i, j] += fill
            row_slack[i] -= fill
            col_slack[j] -= fill
        if row_slack[i] <= VOLUME_TOL:
            ri += 1
        if col_slack[j] <= VOLUME_TOL:
            ci += 1

    # The pairing above is exact up to float error; verify, and if anything
    # beyond accumulated roundoff is left (e.g. slacks below VOLUME_TOL that
    # the tolerance-filtered pairing skipped), repair in place instead of
    # raising.  The repair trigger sits well above pass 2's few-ulp rounding
    # noise, so well-conditioned demands take the fast path bit-identically.
    tolerance = n * 1e-9 * max(phi, 1.0)
    snap = 1024.0 * np.finfo(np.float64).eps * max(phi, 1.0)
    imbalance = _imbalance(stuffed, phi)
    rounds = 0
    while imbalance > snap and rounds < MAX_REPAIR_ROUNDS:
        rounds += 1
        phi, imbalance = _repair_round(stuffed, phi)

    if imbalance > tolerance:
        return stuffed, SchedulerDiagnostics(
            scheduler="quick_stuff",
            event="stuffing-imbalance",
            detail=(
                f"row/column sums still differ from phi by {imbalance:.3g} Mb "
                f"after {rounds} repair rounds (tolerance {tolerance:.3g})"
            ),
            iterations=rounds,
            cap=MAX_REPAIR_ROUNDS,
            residual=float(imbalance),
        )
    return stuffed, None


def _imbalance(stuffed: np.ndarray, phi: float) -> float:
    """Worst per-port deviation of the row/column sums from ``phi`` (Mb)."""
    return float(
        max(
            np.abs(stuffed.sum(axis=1) - phi).max(),
            np.abs(stuffed.sum(axis=0) - phi).max(),
        )
    )


def _repair_round(stuffed: np.ndarray, phi: float) -> "tuple[float, float]":
    """One bounded repair pass: re-pair exact residual slacks in place.

    ``phi`` is first raised to the largest observed port sum so every slack
    is non-negative — the repair only *adds* volume, preserving the
    ``E >= demand`` invariant.  Returns the (possibly raised) ``phi`` and
    the remaining imbalance.
    """
    row_sums = stuffed.sum(axis=1)
    col_sums = stuffed.sum(axis=0)
    phi = float(max(phi, row_sums.max(), col_sums.max()))
    row_slack = phi - row_sums
    col_slack = phi - col_sums
    # Stable for the same reason as pass 2: tied residual slacks must pair
    # identically on every platform.
    open_rows = [
        int(i) for i in np.argsort(-row_slack, kind="stable") if row_slack[i] > 0
    ]
    open_cols = [
        int(j) for j in np.argsort(-col_slack, kind="stable") if col_slack[j] > 0
    ]
    ri = ci = 0
    while ri < len(open_rows) and ci < len(open_cols):
        i, j = open_rows[ri], open_cols[ci]
        fill = min(row_slack[i], col_slack[j])
        if fill > 0:
            stuffed[i, j] += fill
            row_slack[i] -= fill
            col_slack[j] -= fill
        if row_slack[i] <= 0:
            ri += 1
        if col_slack[j] <= 0:
            ci += 1
    return phi, _imbalance(stuffed, phi)


def stuffing_overhead(demand: np.ndarray, stuffed: np.ndarray) -> float:
    """Fraction of the stuffed matrix volume that is padding (not demand)."""
    total = float(np.asarray(stuffed).sum())
    if total <= 0:
        return 0.0
    return (total - float(np.asarray(demand).sum())) / total
