"""Round-robin TDM scheduling — the Figure 1(a) strawman.

The paper's opening figure shows what a hybrid switch does to a
one-to-many coflow without clever scheduling: "the flows are serialized
with Time Division Multiplexing (TDM)" — the OCS visits each demanded
(input, output) pair in turn, paying δ per visit.  This scheduler makes
that strawman concrete:

* group the demanded entries into *rounds* of non-conflicting circuits
  (a greedy edge-coloring of the demand graph);
* hold every round for a fixed quantum (or until its largest residual
  drains, with ``adaptive=True``);
* cycle rounds until the leftover fits the EPS within the makespan (the
  same stopping rule Solstice uses here, for comparability).

It is intentionally naive — the useful baseline *below* Solstice/Eclipse:
examples use it to show how much scheduling intelligence contributes
before composite paths add their part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hybrid.schedule import Schedule, ScheduleEntry
from repro.switch.params import SwitchParams
from repro.utils.validation import VOLUME_TOL, check_demand_matrix


@dataclass
class TdmScheduler:
    """Fixed-quantum round-robin circuit scheduler.

    Parameters
    ----------
    quantum:
        Hold time per round (ms); ``None`` derives it from the mean
        demanded entry (one quantum drains an average entry).
    adaptive:
        Size each round's duration to its largest residual entry instead
        of the fixed quantum (still no cross-round intelligence).
    max_cycles:
        Safety cap on full round-robin cycles.
    """

    quantum: "float | None" = None
    adaptive: bool = False
    max_cycles: int = 64
    name: str = "tdm"

    def schedule(self, demand: np.ndarray, params: SwitchParams) -> Schedule:
        """Serialize the demand over the OCS in round-robin rounds."""
        demand = check_demand_matrix(demand)
        residual = demand.copy()
        delta = params.reconfig_delay
        rounds = self._edge_coloring(residual > VOLUME_TOL)
        quantum = self._resolve_quantum(residual, params)

        entries: list[ScheduleEntry] = []
        makespan = 0.0
        for _cycle in range(self.max_cycles):
            port_load = 0.0
            if residual.size:
                port_load = max(residual.sum(axis=1).max(), residual.sum(axis=0).max())
            if port_load <= VOLUME_TOL or port_load / params.eps_rate <= makespan:
                break
            progressed = False
            for perm in rounds:
                rows, cols = np.nonzero(perm)
                live = residual[rows, cols] > VOLUME_TOL
                if not live.any():
                    continue
                active = np.zeros_like(perm)
                active[rows[live], cols[live]] = 1
                if self.adaptive:
                    duration = float(residual[rows[live], cols[live]].max()) / params.ocs_rate
                else:
                    duration = quantum
                served = duration * params.ocs_rate
                residual[rows[live], cols[live]] = np.maximum(
                    residual[rows[live], cols[live]] - served, 0.0
                )
                entries.append(ScheduleEntry(permutation=active, duration=duration))
                makespan += duration + delta
                progressed = True
            if not progressed:
                break
        return Schedule(entries=tuple(entries), reconfig_delay=delta)

    # ------------------------------------------------------------------ #

    def _resolve_quantum(self, demand: np.ndarray, params: SwitchParams) -> float:
        if self.quantum is not None:
            if self.quantum <= 0:
                raise ValueError(f"quantum must be positive, got {self.quantum}")
            return self.quantum
        values = demand[demand > VOLUME_TOL]
        if values.size == 0:
            return params.reconfig_delay  # arbitrary: nothing to schedule
        return float(values.mean()) / params.ocs_rate

    @staticmethod
    def _edge_coloring(mask: np.ndarray) -> "list[np.ndarray]":
        """Greedy partition of demanded entries into permutation rounds."""
        remaining = mask.copy()
        rounds: list[np.ndarray] = []
        while remaining.any():
            perm = np.zeros(mask.shape, dtype=np.int8)
            used_rows = np.zeros(mask.shape[0], dtype=bool)
            used_cols = np.zeros(mask.shape[1], dtype=bool)
            rows, cols = np.nonzero(remaining)
            for i, j in zip(rows.tolist(), cols.tolist()):
                if not used_rows[i] and not used_cols[j]:
                    perm[i, j] = 1
                    used_rows[i] = True
                    used_cols[j] = True
                    remaining[i, j] = False
            rounds.append(perm)
        return rounds
