"""Schedule containers shared by every scheduler in the library.

An OCS schedule is an ordered list of (permutation matrix, duration) pairs
(§2.2): during entry *k* the OCS is configured as the (possibly partial)
permutation ``P_k`` for ``t_k`` milliseconds, preceded by a reconfiguration
penalty δ during which the OCS carries no traffic.  The EPS runs throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_nonnegative, check_permutation


@dataclass(frozen=True)
class ScheduleEntry:
    """One OCS configuration: a (partial) permutation held for a duration.

    Attributes
    ----------
    permutation:
        m×m 0/1 matrix with at most one 1 per row/column.  For a plain
        h-Switch schedule m = n; for a schedule produced from a reduced
        cp-Switch demand m = n + 1 and the last row/column stand for the
        composite paths.
    duration:
        Time the configuration is held, ms (excluding the reconfiguration
        penalty, which the simulator charges separately).
    """

    permutation: np.ndarray
    duration: float

    def __post_init__(self) -> None:
        perm = check_permutation(self.permutation, partial=True)
        perm.setflags(write=False)
        object.__setattr__(self, "permutation", perm)
        check_nonnegative("duration", self.duration)

    @classmethod
    def trusted(cls, permutation: np.ndarray, duration: float) -> "ScheduleEntry":
        """Construct without re-validating ``permutation``.

        For hot paths that build the permutation from an already-verified
        perfect matching (kernel BigSlice): the caller guarantees a square
        C-contiguous int8 0/1 matrix with at most one 1 per row/column and
        a finite non-negative duration.  The array is frozen in place.
        """
        entry = object.__new__(cls)
        permutation.setflags(write=False)
        object.__setattr__(entry, "permutation", permutation)
        object.__setattr__(entry, "duration", duration)
        return entry

    @property
    def size(self) -> int:
        """Matrix dimension m of the permutation."""
        return self.permutation.shape[0]

    @property
    def circuits(self) -> "list[tuple[int, int]]":
        """The (input, output) pairs connected by this configuration."""
        rows, cols = np.nonzero(self.permutation)
        return list(zip(rows.tolist(), cols.tolist()))


@dataclass(frozen=True)
class Schedule:
    """An ordered OCS schedule plus the reconfiguration penalty that applies
    between configurations.

    The convention throughout the library (matching the paper's accounting,
    where *m* configurations cost *m* reconfigurations of idle OCS time) is
    that **every** entry, including the first, is preceded by one δ penalty:
    the OCS starts unconfigured.
    """

    entries: "tuple[ScheduleEntry, ...]"
    reconfig_delay: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        check_nonnegative("reconfig_delay", self.reconfig_delay)
        sizes = {entry.size for entry in self.entries}
        if len(sizes) > 1:
            raise ValueError(f"schedule mixes permutation sizes: {sorted(sizes)}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> ScheduleEntry:
        return self.entries[index]

    @property
    def n_configs(self) -> int:
        """Number of OCS configurations (the paper's 'OCS configurations')."""
        return len(self.entries)

    @property
    def circuit_time(self) -> float:
        """Total circuit-active time, ms (sum of durations)."""
        return float(sum(entry.duration for entry in self.entries))

    @property
    def reconfig_time(self) -> float:
        """Total OCS-idle reconfiguration time, ms."""
        return self.n_configs * self.reconfig_delay

    @property
    def makespan(self) -> float:
        """End-to-end OCS schedule length: circuit time plus penalties, ms."""
        return self.circuit_time + self.reconfig_time

    def served_volume(self, demand: np.ndarray, ocs_rate: float) -> float:
        """Volume (Mb) of ``demand`` this schedule can push through the OCS.

        Fluid accounting: entry (i, j) matched for duration t serves
        ``min(demand[i, j] residual, t * ocs_rate)``.  Used by tests and by
        Solstice's stopping rule; the simulator does the authoritative
        accounting.
        """
        residual = np.asarray(demand, dtype=np.float64).copy()
        served = 0.0
        for entry in self.entries:
            capacity = entry.duration * ocs_rate
            rows, cols = np.nonzero(entry.permutation)
            take = np.minimum(residual[rows, cols], capacity)
            residual[rows, cols] -= take
            served += float(take.sum())
        return served

    def reordered(self, order: "list[int]") -> "Schedule":
        """New schedule with entries permuted by ``order`` (offline execution,
        §4): same configurations, different execution order."""
        if sorted(order) != list(range(len(self.entries))):
            raise ValueError("order must be a permutation of entry indices")
        return Schedule(
            entries=tuple(self.entries[i] for i in order),
            reconfig_delay=self.reconfig_delay,
        )
