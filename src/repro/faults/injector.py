"""Stateful realization of a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` accompanies one simulation run.  The simulators
query it at each decision point (a reconfiguration about to start, a
configuration's circuits about to establish, a composite path about to be
granted) and it answers from seeded draws, accumulating a
:class:`~repro.faults.plan.FaultSummary` of everything it injected.

Zero-rate channels never touch the generator, so a null plan asks no
entropy at all and the simulation is bit-identical to a fault-free one;
adding draws for one channel does not shift the draws of another run with
the same plan (the query sequence is fixed by the schedule being
executed).
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan, FaultSummary


class FaultInjector:
    """Per-run fault oracle; construct via :meth:`FaultPlan.injector`.

    Parameters
    ----------
    plan:
        The fault plan to realize.
    n_ports:
        Switch radix (sizes the per-port EPS degradation draw).
    stream:
        Sub-stream index; realizations with different streams are
        statistically independent but reproducible from the same plan.
    """

    def __init__(self, plan: FaultPlan, n_ports: int, stream: int = 0) -> None:
        if n_ports < 2:
            raise ValueError(f"n_ports must be >= 2, got {n_ports}")
        self.plan = plan
        self.n_ports = int(n_ports)
        self.stream = int(stream)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=plan.seed, spawn_key=(self.stream,))
        )
        self.summary = FaultSummary()
        self.dead_o2m: "set[int]" = set()
        self.dead_m2o: "set[int]" = set()
        #: (direction, port) pairs already drawn, dead or not.
        self._composite_drawn: "set[tuple[str, int]]" = set()
        self._eps_scale = self._draw_eps_degradation()

    # ------------------------------------------------------------------ #
    # per-run state
    # ------------------------------------------------------------------ #

    def _draw_eps_degradation(self) -> "np.ndarray | None":
        plan = self.plan
        if plan.eps_degradation_rate == 0.0:
            return None
        degraded = self._rng.random(self.n_ports) < plan.eps_degradation_rate
        if not degraded.any():
            return None
        scale = np.ones(self.n_ports)
        scale[degraded] = plan.eps_degradation_factor
        self.summary.degraded_eps_ports = tuple(
            int(p) for p in np.nonzero(degraded)[0]
        )
        return scale

    @property
    def eps_port_scale(self) -> "np.ndarray | None":
        """Per-port EPS capacity factors, or ``None`` when nothing is degraded."""
        return self._eps_scale

    # ------------------------------------------------------------------ #
    # per-configuration queries
    # ------------------------------------------------------------------ #

    def reconfigure(self, delta: float) -> "tuple[float, bool]":
        """Outcome of one OCS reconfiguration attempt.

        Returns ``(actual_delay, established)``: the time the fabric spends
        dark, and whether the configuration comes up at all.  A failed
        reconfiguration still burns the nominal δ; a straggler multiplies
        it by the plan's ``straggle_factor``.
        """
        plan = self.plan
        if plan.reconfig_failure_rate > 0.0:
            if self._rng.random() < plan.reconfig_failure_rate:
                self.summary.reconfig_failures += 1
                return delta, False
        if plan.reconfig_straggle_rate > 0.0:
            if self._rng.random() < plan.reconfig_straggle_rate:
                self.summary.reconfig_straggles += 1
                extra = delta * (plan.straggle_factor - 1.0)
                self.summary.extra_reconfig_delay += extra
                return delta + extra, True
        return delta, True

    def surviving_circuits(self, circuits: "np.ndarray | None") -> "np.ndarray | None":
        """Drop each circuit of an established configuration independently.

        Returns ``circuits`` unchanged when the channel is off (keeping the
        fault-free path bit-identical); otherwise a copy with failed
        circuits zeroed.
        """
        if circuits is None or self.plan.circuit_failure_rate == 0.0:
            return circuits
        rows, cols = np.nonzero(circuits)
        if rows.size == 0:
            return circuits
        failed = self._rng.random(rows.size) < self.plan.circuit_failure_rate
        if not failed.any():
            return circuits
        survived = np.array(circuits, copy=True)
        survived[rows[failed], cols[failed]] = 0
        self.summary.failed_circuits += int(failed.sum())
        return survived

    def composite_port_up(self, kind: str, port: int) -> bool:
        """Whether the composite path of ``(kind, port)`` is alive.

        The outage draw happens at most once per (direction, port); a dead
        port stays dead for the rest of the run — the paper's composite
        links are physical OCS ports, not per-configuration resources.
        """
        if kind not in ("o2m", "m2o"):
            raise ValueError(f"kind must be 'o2m' or 'm2o', got {kind!r}")
        dead = self.dead_o2m if kind == "o2m" else self.dead_m2o
        if port in dead:
            return False
        rate = (
            self.plan.o2m_outage_rate if kind == "o2m" else self.plan.m2o_outage_rate
        )
        if rate == 0.0 or (kind, port) in self._composite_drawn:
            return True
        self._composite_drawn.add((kind, port))
        if self._rng.random() < rate:
            dead.add(port)
            if kind == "o2m":
                self.summary.dead_o2m_ports = tuple(sorted(self.dead_o2m))
            else:
                self.summary.dead_m2o_ports = tuple(sorted(self.dead_m2o))
            return False
        return True

    def mark_dead(self, kind: str, ports) -> None:
        """Pre-seed known-dead composite ports (no draw will be made).

        The epoch controller carries outages across epochs: a port that
        died in epoch *e* must stay dead in epoch *e+1* even though that
        epoch uses a fresh injector.
        """
        if kind not in ("o2m", "m2o"):
            raise ValueError(f"kind must be 'o2m' or 'm2o', got {kind!r}")
        dead = self.dead_o2m if kind == "o2m" else self.dead_m2o
        for port in ports:
            dead.add(int(port))
            self._composite_drawn.add((kind, int(port)))

    def note_released(self, volume: float) -> None:
        """Record filtered volume released off a dead composite path."""
        self.summary.released_composite += float(volume)


def as_injector(
    faults: "FaultPlan | FaultInjector | None", n_ports: int
) -> "FaultInjector | None":
    """Normalize a simulator's ``faults`` argument.

    ``None`` stays ``None`` (the fault-free fast path); a plan is realized
    with stream 0; an injector passes through so callers (the epoch
    controller) can share state across calls.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults.injector(n_ports)
    if isinstance(faults, FaultInjector):
        if faults.n_ports != n_ports:
            raise ValueError(
                f"injector was built for {faults.n_ports} ports, switch has {n_ports}"
            )
        return faults
    raise TypeError(
        f"faults must be a FaultPlan, FaultInjector or None, got {type(faults).__name__}"
    )
