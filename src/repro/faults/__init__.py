"""Fault injection and graceful cp-Switch → h-Switch degradation.

The paper's evaluation assumes a perfect fabric.  This package supplies
the machinery to break it on purpose — seedable :class:`FaultPlan`
realizations covering OCS reconfiguration failures and stragglers, circuit
setup failures, composite-path port outages, and EPS rate degradation —
and the simulators in :mod:`repro.sim` consume it so that a faulted
schedule still conserves volume: failed circuits serve zero rate, demand
parked on a dead composite path falls back to the regular EPS/OCS paths,
and :meth:`repro.sim.metrics.SimulationResult.check_conservation` holds
under every fault mix.
"""

from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import FaultPlan, FaultSummary

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "as_injector",
]
