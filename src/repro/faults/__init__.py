"""Fault injection and graceful cp-Switch → h-Switch degradation.

The paper's evaluation assumes a perfect fabric.  This package supplies
the machinery to break it on purpose — seedable :class:`FaultPlan`
realizations covering OCS reconfiguration failures and stragglers, circuit
setup failures, composite-path port outages, and EPS rate degradation —
and the simulators in :mod:`repro.sim` consume it so that a faulted
schedule still conserves volume: failed circuits serve zero rate, demand
parked on a dead composite path falls back to the regular EPS/OCS paths,
and :meth:`repro.sim.metrics.SimulationResult.check_conservation` holds
under every fault mix.

:mod:`repro.faults.reroute` adds the fast-reroute layer on top: per-epoch
precomputed backup schedules (:class:`BackupPlanner` → :class:`BackupSet`)
that the simulator hot-swaps to when an outage is discovered mid-run,
recovering parked demand at the current phase boundary instead of
degrading to an EPS-only drain.
"""

from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import FaultPlan, FaultSummary
from repro.faults.reroute import (
    BackupPlanner,
    BackupSchedule,
    BackupSet,
    RerouteOutcome,
    SwapEvent,
)

__all__ = [
    "BackupPlanner",
    "BackupSchedule",
    "BackupSet",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "RerouteOutcome",
    "SwapEvent",
    "as_injector",
]
