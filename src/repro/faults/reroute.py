"""Fast-reroute: precomputed backup schedules for mid-run outage recovery.

The cp-Switch's composite paths are physical OCS ports (§2.1).  The seed
behaviour when one dies mid-schedule is graceful *degradation*: the parked
filtered demand of the dead path is released back to the regular EPS/OCS
paths and drains slowly for the rest of the epoch.  IP fast-reroute (LFA)
inverts the ordering — the repair is computed *before* the failure, so the
data plane can swap the instant the failure is detected instead of waiting
for the next control-plane round.

This module brings that pattern to cp-Switch scheduling:

* :class:`BackupPlanner` precomputes, for a primary
  :class:`~repro.core.scheduler.CpSchedule`, one :class:`BackupSchedule`
  per *granted* composite port (the failure classes that can actually
  strand parked demand) plus a universal fallback, bundled in a
  :class:`BackupSet`;
* :class:`RerouteRuntime` is driven by the simulator
  (:mod:`repro.sim.cp_sim`): when a granted port is discovered dead it
  selects the matching backup, re-parks the orphaned filtered demand onto
  composite paths that surviving grants of the schedule still serve, and
  strips the dead grants from the pending tail — recovery happens at the
  current phase boundary, not at the next epoch.

Planning is deliberately **incremental** (cf. *Costly Circuits, Submodular
Schedules*: cheap repair beats recomputation).  A full re-schedule per
backup re-runs the inner h-Switch scheduler once per granted port, which
measures at several *hundred* percent of the primary ``h_schedule`` cost at
radix 128 — the orphaned entries are individually small, so the repair
schedule degenerates into one circuit per entry, exactly the regime
composite paths exist to avoid.  The incremental backup instead re-runs
only Algorithm 1's demand reduction with the dead port blocked (so the
*other* direction's row/column qualification is judged against the full
demand, not the orphan delta) and reuses the primary schedule's surviving
grants to serve the re-parked demand: measured well under 10 % of
``h_schedule``.  ``full_reschedule=True`` keeps the expensive
replace-the-tail mode available for experiments.

No entropy is consumed at plan or swap time, and a run in which no outage
fires never invokes the runtime's repair path — fault-free executions with
a :class:`BackupSet` armed are bit-identical to runs without one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.reduction import reduce_with_config
from repro.utils.validation import VOLUME_TOL, check_demand_matrix

#: The :class:`BackupSchedule` key of the universal fallback.
FALLBACK_KEY: str = "fallback"


def backup_key(kind: str, port: int) -> str:
    """Stable string key for a composite-port failure class."""
    if kind not in ("o2m", "m2o"):
        raise ValueError(f"kind must be 'o2m' or 'm2o', got {kind!r}")
    return f"{kind}:{int(port)}"


@dataclass(frozen=True)
class BackupSchedule:
    """One precomputed repair, valid under one failure class.

    Attributes
    ----------
    key:
        ``"o2m:<port>"`` / ``"m2o:<port>"`` for a composite-port outage,
        or :data:`FALLBACK_KEY` for the park-nothing universal fallback.
    filtered:
        n×n matrix (Mb) of demand that *may* ride composite paths under
        this failure class — Algorithm 1's ``Df`` re-derived with the dead
        port blocked, masked (for incremental backups) to entries a
        surviving grant of the primary schedule can serve *and* that the
        primary reduction itself parked.  At swap time the engine parks
        ``min(filtered, regular residual)``, further capped by the
        surviving grants' remaining service capacity.
    blocked_o2m, blocked_m2o:
        The composite ports this backup assumes unusable (baseline dead
        ports plus the failure class itself).
    entries:
        Replacement configurations for the pending tail.  Empty for
        incremental backups (the stripped primary tail is reused); a
        ``full_reschedule`` planner fills it with a fresh
        :class:`~repro.core.scheduler.CompositeScheduleEntry` sequence.
    replace:
        Whether ``entries`` replaces the pending tail (``True`` only for
        ``full_reschedule`` backups).
    """

    key: str
    filtered: np.ndarray
    blocked_o2m: "frozenset[int]" = frozenset()
    blocked_m2o: "frozenset[int]" = frozenset()
    entries: tuple = ()
    replace: bool = False

    def __post_init__(self) -> None:
        filtered = np.asarray(self.filtered, dtype=np.float64)
        filtered.setflags(write=False)
        object.__setattr__(self, "filtered", filtered)
        object.__setattr__(self, "entries", tuple(self.entries))
        object.__setattr__(self, "blocked_o2m", frozenset(self.blocked_o2m))
        object.__setattr__(self, "blocked_m2o", frozenset(self.blocked_m2o))
        if self.replace and not self.entries and self.key != FALLBACK_KEY:
            raise ValueError("a replace-mode backup needs replacement entries")

    @property
    def parkable_volume(self) -> float:
        """Upper bound (Mb) on the demand this backup can re-park."""
        return float(self.filtered.sum())


@dataclass(frozen=True)
class BackupSet:
    """All precomputed backups for one primary schedule.

    ``per_port`` maps each granted composite path's ``(kind, port)`` to its
    backup; ``fallback`` covers everything else (unplanned ports, multiple
    simultaneous deaths).  ``base_blocked_*`` are the ports already known
    dead when the primary was scheduled — they are not failure *events* for
    this run and never trigger a swap.
    """

    per_port: "dict[tuple[str, int], BackupSchedule]"
    fallback: BackupSchedule
    base_blocked_o2m: "frozenset[int]" = frozenset()
    base_blocked_m2o: "frozenset[int]" = frozenset()
    plan_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "per_port", dict(self.per_port))
        object.__setattr__(self, "base_blocked_o2m", frozenset(self.base_blocked_o2m))
        object.__setattr__(self, "base_blocked_m2o", frozenset(self.base_blocked_m2o))

    @property
    def n_armed(self) -> int:
        """Per-failure-class backups precomputed (fallback excluded)."""
        return len(self.per_port)

    def select(
        self,
        dead_o2m: "set[int] | frozenset[int]",
        dead_m2o: "set[int] | frozenset[int]",
        current_key: "str | None" = None,
    ) -> "BackupSchedule | None":
        """The backup matching the current dead-port state.

        Exactly one *new* death (relative to the baseline) with an armed
        backup selects that backup; anything else — several simultaneous
        deaths, or a death the planner never saw granted — selects the
        fallback.  Returns ``None`` when the matching backup is already
        active (``current_key``): there is nothing further to swap to.
        """
        new_dead = [("o2m", p) for p in sorted(set(dead_o2m) - self.base_blocked_o2m)]
        new_dead += [("m2o", p) for p in sorted(set(dead_m2o) - self.base_blocked_m2o)]
        if len(new_dead) == 1 and new_dead[0] in self.per_port:
            backup = self.per_port[new_dead[0]]
        else:
            backup = self.fallback
        if backup.key == current_key:
            return None
        return backup


@dataclass(frozen=True)
class SwapEvent:
    """One executed fast-reroute swap.

    ``detected_ms`` is the phase boundary at which the outage surfaced
    (grants are checked right after the reconfiguration gap);
    ``resumed_ms`` is when service of the re-parked demand resumed — the
    start of the first established hold phase granting a composite path
    that covers it, or the final-drain start, whichever comes first
    (``nan`` if the horizon truncated the run before either).
    ``released_mb`` is what the outage stranded off the dead path;
    ``carried_mb`` is what the backup re-parked onto surviving paths.
    """

    key: str
    detected_ms: float
    resumed_ms: float
    released_mb: float
    carried_mb: float

    @property
    def recovery_ms(self) -> float:
        """Detection-to-resumption latency (ms); 0 for instant recovery."""
        return self.resumed_ms - self.detected_ms


@dataclass(frozen=True)
class RerouteOutcome:
    """Fast-reroute bookkeeping attached to a simulation result."""

    swaps: "tuple[SwapEvent, ...]" = ()
    backups_armed: int = 0

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)

    @property
    def reparked_mb(self) -> float:
        """Total volume (Mb) re-parked onto surviving composite paths."""
        return float(sum(s.carried_mb for s in self.swaps))

    @property
    def recovery_ms(self) -> float:
        """Worst-case swap recovery latency (ms); 0.0 with no swaps."""
        if not self.swaps:
            return 0.0
        return max(s.recovery_ms for s in self.swaps)

    def to_dict(self) -> dict:
        """JSON-ready form for journals and traces."""
        return {
            "n_swaps": self.n_swaps,
            "backups_armed": self.backups_armed,
            "reparked_mb": self.reparked_mb,
            "recovery_ms": self.recovery_ms,
            "swaps": [
                {
                    "key": s.key,
                    "detected_ms": s.detected_ms,
                    "resumed_ms": s.resumed_ms,
                    "released_mb": s.released_mb,
                    "carried_mb": s.carried_mb,
                }
                for s in self.swaps
            ],
        }


def _granted_ports(entries) -> "list[tuple[str, int]]":
    """The ``(kind, port)`` composite grants of a base cp-Switch schedule,
    in first-grant order (deduplicated)."""
    granted: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    for entry in entries:
        for kind, port in (("o2m", entry.o2m_port), ("m2o", entry.m2o_port)):
            if port is not None and (kind, port) not in seen:
                seen.add((kind, port))
                granted.append((kind, int(port)))
    return granted


@dataclass
class BackupPlanner:
    """Precompute a :class:`BackupSet` for a primary cp-Switch schedule.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.core.scheduler.CpSwitchScheduler` that produced
        the primary (its :class:`~repro.core.config.FilterConfig` drives
        the backup reductions; ``full_reschedule`` also reuses its inner
        h-Switch scheduler).
    full_reschedule:
        Compute each backup as a complete replacement schedule
        (``scheduler.schedule`` with the failure class blocked) instead of
        the incremental reduction-only repair.  Expensive — the orphaned
        entries are small, so the inner scheduler burns one circuit per
        entry; kept for experiments, off by default.
    """

    scheduler: "object"
    full_reschedule: bool = False

    def plan(
        self,
        demand: np.ndarray,
        primary,
        params,
        *,
        blocked_o2m=(),
        blocked_m2o=(),
    ) -> BackupSet:
        """Backups for every composite port ``primary`` actually grants.

        ``blocked_o2m`` / ``blocked_m2o`` are the ports already excluded
        when the primary was scheduled (the epoch controller's dead-port
        carry-over); each backup blocks them *plus* its own failure class.
        Only base (single path per direction) cp-Switch schedules are
        supported — the k-path extension's lanes change what a surviving
        grant may serve.
        """
        demand = check_demand_matrix(demand)
        base_o2m = frozenset(int(p) for p in blocked_o2m)
        base_m2o = frozenset(int(p) for p in blocked_m2o)
        granted = _granted_ports(primary.entries)
        started = time.perf_counter()
        with obs.profiled(
            "reroute.plan", n=demand.shape[0], granted=len(granted)
        ) as span:
            per_port: dict[tuple[str, int], BackupSchedule] = {}
            for kind, port in granted:
                per_port[(kind, port)] = self._plan_port(
                    demand, primary, params, kind, port, base_o2m, base_m2o
                )
            fallback = BackupSchedule(
                key=FALLBACK_KEY,
                filtered=np.zeros_like(demand),
                blocked_o2m=base_o2m,
                blocked_m2o=base_m2o,
            )
            span.set(armed=len(per_port), full_reschedule=self.full_reschedule)
        elapsed = time.perf_counter() - started
        if obs.active():
            obs.get_metrics().counter(
                "reroute_backups_planned_total",
                "per-failure-class backup schedules precomputed",
            ).inc(len(per_port))
        return BackupSet(
            per_port=per_port,
            fallback=fallback,
            base_blocked_o2m=base_o2m,
            base_blocked_m2o=base_m2o,
            plan_seconds=elapsed,
        )

    def _plan_port(
        self,
        demand: np.ndarray,
        primary,
        params,
        kind: str,
        port: int,
        base_o2m: "frozenset[int]",
        base_m2o: "frozenset[int]",
    ) -> BackupSchedule:
        blocked_o2m = base_o2m | ({port} if kind == "o2m" else frozenset())
        blocked_m2o = base_m2o | ({port} if kind == "m2o" else frozenset())
        if self.full_reschedule:
            schedule = self.scheduler.schedule(
                demand,
                params,
                blocked_o2m=blocked_o2m or None,
                blocked_m2o=blocked_m2o or None,
            )
            return BackupSchedule(
                key=backup_key(kind, port),
                filtered=schedule.reduction.filtered,
                blocked_o2m=blocked_o2m,
                blocked_m2o=blocked_m2o,
                entries=schedule.entries,
                replace=True,
            )
        # Incremental repair: re-run only the Algorithm 1 reduction with
        # the failure class blocked.  The full demand matrix is passed so
        # row/column qualification keeps its original context — re-reducing
        # just the orphaned delta would find no qualifying fan-out at all.
        reduction = reduce_with_config(
            demand,
            params,
            getattr(self.scheduler, "filter_config", None),
            blocked_o2m=blocked_o2m or None,
            blocked_m2o=blocked_m2o or None,
        )
        # Only entries some *surviving* grant of the primary can serve may
        # be parked: the engine's composite service covers the whole
        # row/column of a granted port, so an entry is servable iff its row
        # has a surviving o2m grant or its column a surviving m2o grant.
        # And only entries the *primary* reduction also parked: the
        # primary's regular tail was scheduled with everything else on the
        # packet/circuit paths, so parking a newly-filtered entry would
        # idle the circuits that expect it and trade Co-rate service for a
        # Ce*-rate composite hop.
        n = demand.shape[0]
        primary_parked = primary.reduction.filtered > VOLUME_TOL
        row_granted = np.zeros(n, dtype=bool)
        col_granted = np.zeros(n, dtype=bool)
        for g_kind, g_port in _granted_ports(primary.entries):
            if (g_kind, g_port) == (kind, port):
                continue
            if g_kind == "o2m":
                row_granted[g_port] = True
            else:
                col_granted[g_port] = True
        parkable = np.where(
            (row_granted[:, None] | col_granted[None, :]) & primary_parked,
            reduction.filtered,
            0.0,
        )
        return BackupSchedule(
            key=backup_key(kind, port),
            filtered=parkable,
            blocked_o2m=blocked_o2m,
            blocked_m2o=blocked_m2o,
        )


@dataclass
class _OpenSwap:
    """A swap whose re-parked demand has not been served yet."""

    key: str
    detected_ms: float
    released_mb: float
    carried_mb: float
    covering: "set[tuple[str, int]]" = field(default_factory=set)


class RerouteRuntime:
    """Per-run swap executor, driven by :func:`repro.sim.cp_sim._run`.

    The simulator calls :meth:`on_outage` when a granted composite path is
    discovered dead, :meth:`note_hold` at the start of every established
    hold phase (to timestamp recovery), and :meth:`note_drain` when the
    final merge-and-drain starts.  None of these touch the engine unless a
    swap actually fires, keeping fault-free runs bit-identical.
    """

    def __init__(self, backups: BackupSet, engine, injector) -> None:
        self.backups = backups
        self._engine = engine
        self._injector = injector
        self._active_key: "str | None" = None
        self._released_seen = injector.summary.released_composite
        self._dead_keys: "set[tuple[str, int]]" = set()
        self._open: "list[_OpenSwap]" = []
        self._events: "list[SwapEvent]" = []
        self._swapped = False

    # ------------------------------------------------------------------ #

    @property
    def swapped(self) -> bool:
        """Whether any swap has fired in this run."""
        return self._swapped

    def strip(self, composites_for):
        """Wrap a composites accessor to drop grants of dead ports.

        Applied to the pending tail after a swap so a later configuration
        re-granting the dead port cannot release the re-parked repair
        demand all over again.  Looks the dead set up live, so one wrapper
        survives any number of swaps.
        """

        def stripped(entry):
            return [
                s
                for s in composites_for(entry)
                if (s.kind, s.port) not in self._dead_keys
            ]

        stripped.__wrapped_by_reroute__ = True  # idempotence marker
        return stripped

    def on_outage(self, pending, index, alive_composites, composites_for):
        """Swap to the matching backup after an outage was discovered.

        Called right after ``_surviving_composites`` dropped (and released)
        the dead grants of the configuration at ``pending[index]``.
        Returns ``(pending, composites_for, replace_swapped)`` — the
        (possibly respliced) pending list, the (possibly stripped/switched)
        composites accessor, and whether a replace-mode backup reset the
        tail.
        """
        injector, engine = self._injector, self._engine
        self._dead_keys = {("o2m", p) for p in injector.dead_o2m} | {
            ("m2o", p) for p in injector.dead_m2o
        }
        backup = self.backups.select(
            injector.dead_o2m, injector.dead_m2o, self._active_key
        )
        if backup is None:
            return pending, composites_for, False
        self._swapped = True
        self._active_key = backup.key
        detected = engine.clock
        released = injector.summary.released_composite - self._released_seen
        self._released_seen = injector.summary.released_composite

        # 1. Coverage from the *remaining* schedule: a grant that only ever
        #    occurred in an already-executed configuration cannot serve
        #    anything again, so parking demand against it would strand the
        #    demand until the final drain.
        if backup.replace:
            tail = list(backup.entries)
            remaining = {
                (s.kind, s.port)
                for e in tail
                for s in _base_composites(e)
            }
        else:
            tail = None
            remaining = {
                (s.kind, s.port)
                for e in pending[index + 1 :]
                for s in composites_for(e)
            }
        remaining |= {(s.kind, s.port) for s in alive_composites}
        remaining -= self._dead_keys
        n = engine.n
        row_covered = np.zeros(n, dtype=bool)
        col_covered = np.zeros(n, dtype=bool)
        for g_kind, g_port in remaining:
            if g_kind == "o2m":
                row_covered[g_port] = True
            else:
                col_covered[g_port] = True
        covered = row_covered[:, None] | col_covered[None, :]

        # 2. Consolidate.  Replace-mode resets all parking for its fresh
        #    tail.  The incremental repair leaves covered parked demand
        #    exactly where the primary put it (its grants still serve it)
        #    and *abandons* to the EPS only the composite residual no
        #    surviving grant will ever cover again — otherwise that volume
        #    sits parked and unservable until the horizon.  The dead
        #    row/column itself was already released by the engine, so the
        #    orphans are on the regular paths and step 3 re-parks only
        #    them (covered parked cells have no regular residual to take).
        if backup.replace:
            abandoned = engine.merge_composite_into_regular()
        else:
            abandoned = engine.merge_composite_into_regular(mask=~covered)

        # 3. Re-park the orphans the backup can still serve, capped by the
        #    surviving grants' remaining service capacity.
        parkable = np.where(covered, backup.filtered, 0.0)
        take = np.minimum(parkable, engine.regular)
        take = self._cap_to_capacity(
            take, pending, index, alive_composites, tail, composites_for
        )
        carried = engine.repark_composite(take)

        # 4. Re-splice the pending tail.
        if backup.replace:
            pending = pending[: index + 1] + tail
            composites_for = self.strip(_base_composites)
        elif not getattr(composites_for, "__wrapped_by_reroute__", False):
            composites_for = self.strip(composites_for)

        # 5. Recovery bookkeeping: which surviving grants cover the
        #    re-parked demand, for the resumed_ms timestamp.
        parked_mask = take > VOLUME_TOL
        covering: set[tuple[str, int]] = set()
        if parked_mask.any():
            parked_rows = parked_mask.any(axis=1)
            parked_cols = parked_mask.any(axis=0)
            for g_kind, g_port in remaining:
                hit = parked_rows[g_port] if g_kind == "o2m" else parked_cols[g_port]
                if hit:
                    covering.add((g_kind, g_port))
        swap = _OpenSwap(
            key=backup.key,
            detected_ms=detected,
            released_mb=released,
            carried_mb=carried,
            covering=covering,
        )
        if carried <= 0.0:
            # Nothing re-parked: recovery is instantaneous — the orphaned
            # demand is already on the regular paths being served.
            self._close(swap, detected)
        else:
            self._open.append(swap)
        if obs.active():
            obs.get_tracer().event(
                "sim.reroute_swap",
                key=backup.key,
                detected_ms=detected,
                released_mb=released,
                carried_mb=carried,
                abandoned_mb=abandoned,
                replace=backup.replace,
            )
            metrics = obs.get_metrics()
            metrics.counter(
                "reroute_swaps_total", "fast-reroute swaps executed"
            ).labels(key=backup.key).inc()
            metrics.counter(
                "reroute_reparked_mb_total",
                "volume (Mb) re-parked onto surviving composite paths",
            ).inc(carried)
        return pending, composites_for, backup.replace

    def _cap_to_capacity(
        self, take, pending, index, alive_composites, tail, composites_for
    ):
        """Cap the re-parked volume by what surviving grants can still serve.

        Demand parked on a composite path is only served while a covering
        grant holds, at most at the OCS line rate — everything beyond
        ``remaining hold time x ocs_rate`` would just sit parked while the
        EPS could have been draining it.  Rows are capped proportionally
        against their remaining one-to-many hold budget; whatever a row
        cannot absorb falls through to the column's many-to-one budget, and
        the rest stays on the regular paths.  With ample capacity (the
        covering-workload case) this is the identity.
        """
        total = float(take.sum())
        if total <= VOLUME_TOL:
            return take
        engine = self._engine
        n = engine.n
        rate = engine.params.ocs_rate
        row_ms = np.zeros(n)
        col_ms = np.zeros(n)
        entries = tail if tail is not None else pending[index + 1 :]
        accessor = _base_composites if tail is not None else composites_for
        for entry in entries:
            for grant in accessor(entry):
                if (grant.kind, grant.port) in self._dead_keys:
                    continue
                if grant.kind == "o2m":
                    row_ms[grant.port] += entry.duration
                else:
                    col_ms[grant.port] += entry.duration
        # The imminent hold of the current configuration serves too.
        for grant in alive_composites:
            if grant.kind == "o2m":
                row_ms[grant.port] += pending[index].duration
            else:
                col_ms[grant.port] += pending[index].duration
        # Per-entry the CPSched rate is min(Ce*, Co/active_count): a cell
        # can never drain faster than Ce* over its covering hold time, and
        # a whole grant never faster than Co.
        budget = engine.params.effective_eps_budget
        take = np.minimum(take, (row_ms[:, None] + col_ms[None, :]) * budget)
        row_cap = row_ms * rate
        col_cap = col_ms * rate

        row_sum = take.sum(axis=1)
        row_scale = np.ones(n)
        over = row_sum > VOLUME_TOL
        row_scale[over] = np.minimum(1.0, row_cap[over] / row_sum[over])
        by_row = take * row_scale[:, None]
        spill = take - by_row
        col_sum = spill.sum(axis=0)
        col_scale = np.ones(n)
        over = col_sum > VOLUME_TOL
        col_scale[over] = np.minimum(1.0, col_cap[over] / col_sum[over])
        return by_row + spill * col_scale[None, :]

    def note_hold(self, alive_composites) -> None:
        """Timestamp recovery at the start of an established hold phase."""
        if not self._open or not alive_composites:
            return
        keys = {(s.kind, s.port) for s in alive_composites}
        clock = self._engine.clock
        still_open = []
        for swap in self._open:
            if swap.covering & keys:
                self._close(swap, clock)
            else:
                still_open.append(swap)
        self._open = still_open

    def note_drain(self) -> None:
        """The final merge-and-drain serves everything still parked."""
        clock = self._engine.clock
        for swap in self._open:
            self._close(swap, clock)
        self._open = []

    def _close(self, swap: _OpenSwap, resumed_ms: float) -> None:
        self._events.append(
            SwapEvent(
                key=swap.key,
                detected_ms=swap.detected_ms,
                resumed_ms=resumed_ms,
                released_mb=swap.released_mb,
                carried_mb=swap.carried_mb,
            )
        )

    def outcome(self) -> RerouteOutcome:
        """Freeze the bookkeeping (horizon-truncated swaps get ``nan``)."""
        events = list(self._events)
        for swap in self._open:
            events.append(
                SwapEvent(
                    key=swap.key,
                    detected_ms=swap.detected_ms,
                    resumed_ms=float("nan"),
                    released_mb=swap.released_mb,
                    carried_mb=swap.carried_mb,
                )
            )
        events.sort(key=lambda e: e.detected_ms)
        return RerouteOutcome(
            swaps=tuple(events), backups_armed=self.backups.n_armed
        )


def _base_composites(entry):
    """Base-schedule composites accessor (for replace-mode backup tails)."""
    from repro.sim.engine import CompositeService

    services = []
    if entry.o2m_port is not None:
        services.append(CompositeService(kind="o2m", port=entry.o2m_port))
    if entry.m2o_port is not None:
        services.append(CompositeService(kind="m2o", port=entry.m2o_port))
    return services
