"""Seedable fault plans for imperfect cp-Switch / h-Switch hardware.

The paper evaluates a perfect fabric: every OCS reconfiguration lands on
time, every circuit establishes, every composite port stays up, every EPS
port runs at its line rate.  A :class:`FaultPlan` describes the ways a real
2D/3D MEMS fabric misbehaves — and nothing else; the *consequences* live in
the simulators, which consume the plan through a
:class:`~repro.faults.injector.FaultInjector`:

* **reconfiguration failures** — the OCS burns the δ penalty but none of
  the configuration's circuits (or composite grants) establish; the EPS
  keeps serving while the schedule loses the whole hold phase;
* **reconfiguration stragglers** — the reconfiguration completes but takes
  ``straggle_factor × δ``, eating into the schedule;
* **circuit setup failures** — individual circuits of an otherwise
  successful configuration come up dark and serve zero rate;
* **composite-path port outages** — a granted one-to-many / many-to-one
  composite port fails permanently; demand parked on the dead path *falls
  back to the regular EPS/OCS paths* (graceful cp-Switch → h-Switch
  degradation — volume is never lost);
* **EPS port rate degradation** — a port's electronic line runs at a
  fraction of ``Ce`` for the whole run.

All draws are made by a generator seeded from :attr:`FaultPlan.seed`, so a
plan replays identically; the all-zero plan (:meth:`FaultPlan.is_null`)
injects nothing and executes bit-identically to a fault-free simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seedable description of the faults to inject into one run.

    Attributes
    ----------
    seed:
        Root seed for every fault draw; two runs with the same plan see the
        same fault realization for the same sequence of injection queries.
    reconfig_failure_rate:
        Probability that an OCS reconfiguration fails outright.  The δ
        penalty is still paid, but the configuration never establishes:
        its circuits and composite grants serve zero rate for the whole
        hold phase (the EPS keeps serving).
    reconfig_straggle_rate:
        Probability that a (successful) reconfiguration straggles, taking
        ``straggle_factor`` times the nominal δ.
    straggle_factor:
        Multiplier (≥ 1) applied to δ for a straggling reconfiguration.
    circuit_failure_rate:
        Per-circuit probability that one circuit of an established
        configuration fails to set up and serves zero rate.
    o2m_outage_rate, m2o_outage_rate:
        Probability — drawn once per (direction, port), on first grant —
        that the composite-path port fails *permanently*.  Filtered demand
        parked on a dead path is released back to the regular paths.
    eps_degradation_rate:
        Per-port probability (drawn once per run) that an EPS port is
        degraded for the whole run.
    eps_degradation_factor:
        Fraction of ``Ce`` a degraded EPS port still delivers, in (0, 1]
        (exactly 0 would leave the port's queues undrainable forever).
    """

    seed: int = 0
    reconfig_failure_rate: float = 0.0
    reconfig_straggle_rate: float = 0.0
    straggle_factor: float = 4.0
    circuit_failure_rate: float = 0.0
    o2m_outage_rate: float = 0.0
    m2o_outage_rate: float = 0.0
    eps_degradation_rate: float = 0.0
    eps_degradation_factor: float = 0.5

    def __post_init__(self) -> None:
        _check_probability("reconfig_failure_rate", self.reconfig_failure_rate)
        _check_probability("reconfig_straggle_rate", self.reconfig_straggle_rate)
        _check_probability("circuit_failure_rate", self.circuit_failure_rate)
        _check_probability("o2m_outage_rate", self.o2m_outage_rate)
        _check_probability("m2o_outage_rate", self.m2o_outage_rate)
        _check_probability("eps_degradation_rate", self.eps_degradation_rate)
        # A factor of exactly 0 would leave a port's VOQ undrainable and the
        # open-ended final drain spinning forever; degradation must leave a
        # trickle.
        if not (0.0 < self.eps_degradation_factor <= 1.0):
            raise ValueError(
                "eps_degradation_factor must be in (0, 1], "
                f"got {self.eps_degradation_factor}"
            )
        if self.straggle_factor < 1.0:
            raise ValueError(
                f"straggle_factor must be >= 1, got {self.straggle_factor}"
            )

    @property
    def is_null(self) -> bool:
        """Whether this plan can never inject a fault."""
        return (
            self.reconfig_failure_rate == 0.0
            and self.reconfig_straggle_rate == 0.0
            and self.circuit_failure_rate == 0.0
            and self.o2m_outage_rate == 0.0
            and self.m2o_outage_rate == 0.0
            and self.eps_degradation_rate == 0.0
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan with a different root seed (new realization)."""
        return replace(self, seed=seed)

    def injector(self, n_ports: int, stream: int = 0) -> "FaultInjector":
        """Realize this plan for one run on an ``n_ports`` switch.

        ``stream`` derives an independent fault realization from the same
        plan (the epoch controller passes the epoch index so each epoch
        sees fresh faults while the whole trajectory replays from one
        seed).
        """
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, n_ports, stream=stream)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan applying ``rate`` to every fault channel at once.

        The degradation-curve experiments sweep this single knob: it
        couples reconfiguration failures/stragglers, circuit setup
        failures, composite-port outages, and EPS degradation to one
        severity parameter.
        """
        return cls(
            seed=seed,
            reconfig_failure_rate=rate,
            reconfig_straggle_rate=rate,
            circuit_failure_rate=rate,
            o2m_outage_rate=rate,
            m2o_outage_rate=rate,
            eps_degradation_rate=rate,
        )


@dataclass
class FaultSummary:
    """What actually happened during one faulted run.

    Attached to :class:`repro.sim.metrics.SimulationResult` so callers can
    correlate the degradation they measure with the faults that caused it.
    """

    reconfig_failures: int = 0
    reconfig_straggles: int = 0
    extra_reconfig_delay: float = 0.0
    failed_circuits: int = 0
    dead_o2m_ports: "tuple[int, ...]" = ()
    dead_m2o_ports: "tuple[int, ...]" = ()
    degraded_eps_ports: "tuple[int, ...]" = ()
    released_composite: float = 0.0

    @property
    def composite_outages(self) -> int:
        """Number of composite-path ports that failed permanently."""
        return len(self.dead_o2m_ports) + len(self.dead_m2o_ports)

    @property
    def total_events(self) -> int:
        """Total count of discrete fault events this run."""
        return (
            self.reconfig_failures
            + self.reconfig_straggles
            + self.failed_circuits
            + self.composite_outages
            + len(self.degraded_eps_ports)
        )
