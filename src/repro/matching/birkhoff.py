"""Birkhoff–von-Neumann decomposition of equal-row/column-sum matrices.

A non-negative matrix whose row sums and column sums are all equal to the
same value φ (a scaled doubly-stochastic matrix) can be written as a sum of
at most ``n^2 - 2n + 2`` weighted permutation matrices.  Solstice's stuffing
step manufactures exactly such a matrix, which is why its slicing loop can
always find a perfect matching on the positive entries.

This module provides a classic BvN decomposition used (a) as a test oracle
for that invariant, and (b) by the offline-execution extension, which wants
a complete decomposition it can reorder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.hopcroft_karp import perfect_matching_mask
from repro.utils.validation import VOLUME_TOL


@dataclass(frozen=True)
class BirkhoffTerm:
    """One ``weight × permutation`` term of a BvN decomposition."""

    weight: float
    permutation: np.ndarray  # (n, n) int8 0/1 full permutation


def is_equal_sum(matrix: np.ndarray, tol: float = 1e-6) -> bool:
    """Whether all row sums and column sums agree (within relative ``tol``).

    The tolerance is scaled by ``max(1, φ)`` (φ = the largest port sum),
    matching ``SimulationResult.check_conservation``: an absolute cutoff
    spuriously fails large-volume stuffed matrices whose float error is a
    few ulps of φ, which at radix 512–1024 workload volumes is far above
    any fixed absolute threshold.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    sums = np.concatenate([arr.sum(axis=0), arr.sum(axis=1)])
    phi = float(sums.max())
    return bool(sums.max() - sums.min() <= tol * max(1.0, phi))


def birkhoff_von_neumann(matrix: np.ndarray, tol: float = VOLUME_TOL) -> "list[BirkhoffTerm]":
    """Decompose an equal-sum non-negative matrix into weighted permutations.

    Each step extracts a perfect matching over the strictly positive entries
    and subtracts the minimum matched value, zeroing at least one entry, so
    the loop runs at most ``nnz`` times.

    Raises
    ------
    ValueError
        If the matrix is not square/non-negative or its row and column sums
        are not all equal (so no full decomposition exists).
    """
    residual = np.asarray(matrix, dtype=np.float64).copy()
    if residual.ndim != 2 or residual.shape[0] != residual.shape[1]:
        raise ValueError(f"matrix must be square, got shape {residual.shape}")
    if np.any(residual < -tol):
        raise ValueError("matrix must be non-negative")
    if not is_equal_sum(residual, tol=max(tol, 1e-6)):
        raise ValueError("matrix row/column sums are not all equal; stuff it first")
    # Snap sub-tolerance dust to zero: such entries are excluded from the
    # matching mask but would still skew row/column sums, letting the
    # equal-sum check pass while no perfect matching exists on the mask.
    residual[residual <= tol] = 0.0

    n = residual.shape[0]
    # Residue below this total is float dust (≤ a few bits of "demand"),
    # not a broken invariant: subtraction noise, or near-tolerance entries
    # the stuffing produced, can strand volume that no perfect matching
    # over the >tol mask can reach once the real entries drain.
    dust_budget = n * 1e3 * tol
    terms: list[BirkhoffTerm] = []
    while residual.max(initial=0.0) > tol:
        mask = residual > tol
        match = perfect_matching_mask(mask)
        if match is None:
            if residual.sum() <= dust_budget:
                break  # discard the dust
            raise RuntimeError(
                "no perfect matching over positive entries; equal-sum invariant broken"
            )
        rows = np.arange(n)
        weight = float(residual[rows, match].min())
        perm = np.zeros((n, n), dtype=np.int8)
        perm[rows, match] = 1
        residual[rows, match] -= weight
        np.clip(residual, 0.0, None, out=residual)
        terms.append(BirkhoffTerm(weight=weight, permutation=perm))
    return terms


def recompose(terms: "list[BirkhoffTerm]", n: int) -> np.ndarray:
    """Sum of ``weight × permutation`` over the terms (inverse of decompose)."""
    total = np.zeros((n, n), dtype=np.float64)
    for term in terms:
        total += term.weight * term.permutation
    return total
