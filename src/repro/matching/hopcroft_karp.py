"""Hopcroft–Karp maximum-cardinality bipartite matching.

This is the feasibility oracle inside Solstice's *BigSlice* step: given a
stuffed demand matrix and a candidate threshold ``r``, BigSlice asks whether
the bipartite graph with an edge (sender i, receiver j) wherever
``E[i, j] >= r`` admits a perfect matching.  Hopcroft–Karp answers in
``O(E * sqrt(V))``.

The implementation is a standard BFS-layering + DFS-augmentation version
operating on adjacency lists, with left vertices ``0..n_left-1`` and right
vertices ``0..n_right-1``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

try:  # scipy backend for the hot path; pure Python remains the oracle
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching as _scipy_matching
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _csr_matrix = None
    _scipy_matching = None

#: Sentinel for "unmatched" in the matching arrays.
UNMATCHED: int = -1


def hopcroft_karp(adjacency: "list[list[int]]", n_right: int) -> "tuple[np.ndarray, np.ndarray, int]":
    """Maximum-cardinality matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side neighbours of left vertex
        ``u``.
    n_right:
        Number of right-side vertices.

    Returns
    -------
    match_left, match_right, size:
        ``match_left[u]`` is the right vertex matched to ``u`` (or
        :data:`UNMATCHED`); ``match_right`` is the inverse map; ``size`` is
        the matching cardinality.
    """
    n_left = len(adjacency)
    match_left = np.full(n_left, UNMATCHED, dtype=np.int64)
    match_right = np.full(n_right, UNMATCHED, dtype=np.int64)
    inf = n_left + n_right + 1
    dist = np.zeros(n_left, dtype=np.int64)

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == UNMATCHED:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = inf
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                nxt = match_right[v]
                if nxt == UNMATCHED:
                    found_free = True
                elif dist[nxt] == inf:
                    dist[nxt] = dist[u] + 1
                    queue.append(nxt)
        return found_free

    def dfs(root: int) -> bool:
        # Explicit-stack DFS: the recursive formulation recurses once per
        # augmenting-path hop, and at radix >= ~500 a single path can blow
        # Python's default 1000-frame recursion limit.  Frames are
        # ``[u, next_neighbour_index, edge_taken]`` and are visited in the
        # exact order of the recursive version, so results are bit-identical.
        stack: "list[list[int]]" = [[root, 0, -1]]
        while stack:
            frame = stack[-1]
            u, idx = frame[0], frame[1]
            neighbours = adjacency[u]
            descended = False
            while idx < len(neighbours):
                v = neighbours[idx]
                idx += 1
                nxt = match_right[v]
                if nxt == UNMATCHED:
                    # Augmenting path found: flip the edge here, then the
                    # pending edge of every frame on the way back up.
                    match_left[u] = v
                    match_right[v] = u
                    stack.pop()
                    while stack:
                        parent = stack.pop()
                        match_left[parent[0]] = parent[2]
                        match_right[parent[2]] = parent[0]
                    return True
                if dist[nxt] == dist[u] + 1:
                    frame[1] = idx
                    frame[2] = v
                    stack.append([nxt, 0, -1])
                    descended = True
                    break
            if not descended:
                dist[u] = inf
                stack.pop()
        return False

    size = 0
    while bfs():
        for u in range(n_left):
            if match_left[u] == UNMATCHED and dfs(u):
                size += 1
    return match_left, match_right, size


def _adjacency_from_mask(mask: np.ndarray) -> "list[list[int]]":
    """Adjacency lists of the bipartite graph encoded by a boolean matrix."""
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    rows, cols = np.nonzero(mask)
    adjacency: list[list[int]] = [[] for _ in range(mask.shape[0])]
    for r, c in zip(rows.tolist(), cols.tolist()):
        adjacency[r].append(c)
    return adjacency


def maximum_matching_mask(mask: np.ndarray, *, use_scipy: bool = True) -> "tuple[np.ndarray, int]":
    """Maximum matching of the graph given as a boolean adjacency matrix.

    Returns ``(match_left, size)`` with ``match_left`` as in
    :func:`hopcroft_karp`.  The default backend is scipy's C implementation
    of Hopcroft–Karp (this call sits in Solstice's inner loop); the
    pure-Python implementation above is its test oracle and fallback.
    """
    mask = np.asarray(mask, dtype=bool)
    if use_scipy and _scipy_matching is not None:
        # Build the CSR triplet directly: scipy's dense-matrix constructor
        # routes through a COO intermediate whose Python-level validation
        # dominates this call at Solstice's probe frequency.  The resulting
        # indices/indptr are exactly the canonical dense→CSR conversion, so
        # the matching is unchanged.
        n_rows, n_cols = mask.shape
        indices = np.flatnonzero(mask).astype(np.int32)
        indptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(mask.sum(axis=1, dtype=np.int32), out=indptr[1:])
        indices %= n_cols
        graph = _csr_matrix(
            (np.ones(indices.size, dtype=np.int8), indices, indptr),
            shape=(n_rows, n_cols),
        )
        match_left = np.asarray(_scipy_matching(graph, perm_type="column"), dtype=np.int64)
        return match_left, int((match_left != UNMATCHED).sum())
    adjacency = _adjacency_from_mask(mask)
    match_left, _match_right, size = hopcroft_karp(adjacency, mask.shape[1])
    return match_left, size


def has_perfect_matching(mask: np.ndarray) -> bool:
    """Whether the boolean adjacency matrix admits a perfect matching."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape[0] != mask.shape[1]:
        return False
    # Cheap necessary condition before running HK: no empty row/column.
    if not (mask.any(axis=1).all() and mask.any(axis=0).all()):
        return False
    _match, size = maximum_matching_mask(mask)
    return size == mask.shape[0]


def perfect_matching_mask(mask: np.ndarray) -> "np.ndarray | None":
    """Perfect matching of a boolean adjacency matrix, if one exists.

    Returns ``match_left`` (length-n array mapping each row to its matched
    column) or ``None`` when no perfect matching exists.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape[0] != mask.shape[1]:
        return None
    match_left, size = maximum_matching_mask(mask)
    return match_left if size == mask.shape[0] else None


def matching_to_permutation(match_left: np.ndarray, n: int) -> np.ndarray:
    """Convert a ``match_left`` array to a 0/1 permutation matrix.

    Unmatched rows produce all-zero rows (a *partial* permutation).
    """
    perm = np.zeros((n, n), dtype=np.int8)
    for u, v in enumerate(match_left.tolist()):
        if v != UNMATCHED:
            perm[u, v] = 1
    return perm
