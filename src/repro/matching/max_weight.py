"""Maximum-weight perfect matching on a dense weight matrix.

Eclipse's greedy step needs, for each candidate circuit duration α, the
permutation ``M`` maximizing ``sum_{(i,j) in M} min(D_ij, α·Co)``.  That is
a maximum-weight perfect-matching (assignment) problem on an n×n matrix of
non-negative weights.

The default implementation delegates to
:func:`scipy.optimize.linear_sum_assignment` (Jonker–Volgenant, O(n^3)).
A pure-Python Hungarian implementation is kept as an importable fallback
and as a test oracle for the scipy path.
"""

from __future__ import annotations

import numpy as np

try:  # scipy is a hard dependency, but keep the fallback importable alone
    from scipy.optimize import linear_sum_assignment as _scipy_assignment
except ImportError:  # pragma: no cover - scipy is always installed in CI
    _scipy_assignment = None


def max_weight_matching(weights: np.ndarray, *, use_scipy: bool = True) -> "tuple[np.ndarray, float]":
    """Maximum-weight perfect matching of a square weight matrix.

    Parameters
    ----------
    weights:
        n×n array of finite weights (negative weights are allowed; zero
        weight simply contributes nothing).
    use_scipy:
        Use the scipy assignment solver (default).  ``False`` forces the
        pure-Python Hungarian implementation (slower; used in tests).

    Returns
    -------
    assignment, value:
        ``assignment[i]`` is the column matched to row ``i``;
        ``value`` is the total matched weight.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weight matrix must be square, got shape {w.shape}")
    if not np.all(np.isfinite(w)):
        raise ValueError("weight matrix contains non-finite entries")
    if use_scipy and _scipy_assignment is not None:
        rows, cols = _scipy_assignment(w, maximize=True)
        assignment = np.empty(w.shape[0], dtype=np.int64)
        assignment[rows] = cols
        value = float(w[rows, cols].sum())
        return assignment, value
    return _hungarian(w)


def assignment_to_permutation(assignment: np.ndarray) -> np.ndarray:
    """0/1 permutation matrix from an assignment vector."""
    n = assignment.shape[0]
    perm = np.zeros((n, n), dtype=np.int8)
    perm[np.arange(n), assignment] = 1
    return perm


def _hungarian(weights: np.ndarray) -> "tuple[np.ndarray, float]":
    """Pure-Python O(n^3) Hungarian algorithm (maximization form).

    Classic shortest-augmenting-path formulation with potentials, written
    for minimization of ``-weights``.
    """
    n = weights.shape[0]
    cost = -weights  # minimize
    inf = float("inf")
    # Potentials and matching use 1-based auxiliary arrays per the classic
    # formulation; p[j] is the row matched to column j.
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=np.int64)  # column -> row (1-based rows)
    way = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = np.empty(n, dtype=np.int64)
    for j in range(1, n + 1):
        assignment[p[j] - 1] = j - 1
    value = float(weights[np.arange(n), assignment].sum())
    return assignment, value
