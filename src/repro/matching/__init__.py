"""Bipartite-matching algorithms used by the hybrid-switch schedulers.

* :func:`hopcroft_karp` / :func:`has_perfect_matching` — maximum-cardinality
  matching; the feasibility oracle inside Solstice's BigSlice.
* :func:`max_weight_matching` — maximum-weight perfect matching; the inner
  step of Eclipse's greedy.
* :func:`birkhoff_von_neumann` — decomposition of an equal-row/column-sum
  matrix into weighted permutations; used as a test oracle and by the
  offline-execution extension.
"""

from repro.matching.birkhoff import BirkhoffTerm, birkhoff_von_neumann
from repro.matching.hopcroft_karp import has_perfect_matching, hopcroft_karp, matching_to_permutation
from repro.matching.max_weight import max_weight_matching

__all__ = [
    "BirkhoffTerm",
    "birkhoff_von_neumann",
    "has_perfect_matching",
    "hopcroft_karp",
    "matching_to_permutation",
    "max_weight_matching",
]
