"""Bipartite-matching algorithms used by the hybrid-switch schedulers.

* :func:`hopcroft_karp` / :func:`has_perfect_matching` — maximum-cardinality
  matching; the feasibility oracle inside Solstice's BigSlice.
* :func:`max_weight_matching` — maximum-weight perfect matching; the inner
  step of Eclipse's greedy.
* :func:`birkhoff_von_neumann` — decomposition of an equal-row/column-sum
  matrix into weighted permutations; used as a test oracle and by the
  offline-execution extension.
* :mod:`repro.matching.kernels` — the fast kernel implementations behind
  the ``REPRO_KERNELS`` backend switch (:func:`backend`,
  :func:`set_backend`, :func:`use_backend`, :func:`kernels_active`);
  ``REPRO_KERNELS=oracle`` pins the original pure-Python paths.
"""

from repro.matching.birkhoff import BirkhoffTerm, birkhoff_von_neumann
from repro.matching.hopcroft_karp import has_perfect_matching, hopcroft_karp, matching_to_permutation
from repro.matching.kernels import (
    KERNEL,
    ORACLE,
    backend,
    kernels_active,
    set_backend,
    use_backend,
)
from repro.matching.max_weight import max_weight_matching

__all__ = [
    "BirkhoffTerm",
    "KERNEL",
    "ORACLE",
    "backend",
    "birkhoff_von_neumann",
    "has_perfect_matching",
    "hopcroft_karp",
    "kernels_active",
    "matching_to_permutation",
    "max_weight_matching",
    "set_backend",
    "use_backend",
]
