"""Fast matching kernels and the ``REPRO_KERNELS`` backend switch.

The h-Switch hot path (Solstice's BigSlice threshold search, Eclipse's
greedy duration scan) is dominated by bipartite-matching calls.  This
module provides the *kernel* implementations of those calls:

* :class:`WarmMatcher` — a warm-startable perfect-matching **feasibility**
  oracle over thresholded masks of a live (mutating) matrix.  It keeps the
  last perfect matching it found and, for each probe, only repairs the few
  pairs that crossed the probed threshold, fetching row adjacency lazily
  (``O(row)`` per visited row) instead of materialising a dense ``n×n``
  mask per probe.  Feasibility verdicts are exact — perfect-matching
  existence does not depend on which maximum matching an algorithm finds —
  so any caller that only branches on feasibility stays bit-identical to
  the pure-Python oracle.
* :func:`scipy_matching_mask` — the same scipy Hopcroft–Karp call as
  :func:`repro.matching.hopcroft_karp.maximum_matching_mask`, but through
  a recycled CSR container that skips scipy's Python-level constructor
  validation (the dominant per-call cost at Solstice's probe frequency).
  The compiled routine sees byte-identical CSR arrays, so the returned
  matching is bit-identical to the plain wrapper's.

Backend selection
-----------------
``REPRO_KERNELS=kernel`` (the default) routes the schedulers through the
kernels; ``REPRO_KERNELS=oracle`` forces the original pure-Python/seed
code paths, which stay in the tree as correctness oracles.  The CI gate
records an ``obs baseline`` under the oracle backend and ``obs check``-s
the kernel backend against it: any schedule-quality drift — one slice
count, one makespan ulp — fails the build.

Numba
-----
When :mod:`numba` is importable, :func:`maybe_jit` compiles the hot inner
loops (QuickStuff's pass-1 scan); without it the decorator is a no-op and
the pure-Python loops run unchanged.  Numba is optional and never
required for correctness.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

try:  # scipy backend for the exact-matching call; optional at import time
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching as _scipy_matching
except ImportError:  # pragma: no cover - scipy is a hard dependency in CI
    _csr_matrix = None
    _scipy_matching = None

try:  # optional JIT for the sequential inner loops
    import numba as _numba
except ImportError:  # pragma: no cover - exercised wherever numba is absent
    _numba = None

#: Whether the optional numba JIT is available in this environment.
NUMBA_AVAILABLE: bool = _numba is not None

#: Whether scipy's compiled matching backend is importable.
SCIPY_AVAILABLE: bool = _scipy_matching is not None

#: Environment variable naming the active backend.
BACKEND_ENV: str = "REPRO_KERNELS"

#: The fast path: sparse/warm-start kernels (default).
KERNEL: str = "kernel"

#: The reference path: the original pure-Python/seed implementations.
ORACLE: str = "oracle"

_VALID_BACKENDS: "tuple[str, ...]" = (KERNEL, ORACLE)

#: Process-local override taking precedence over the environment.
_override: "str | None" = None


def maybe_jit(func):
    """``numba.njit(cache=True)`` when numba is available, else identity.

    The decorated loops are written so that the JIT-compiled and
    interpreted versions perform operation-for-operation identical float64
    arithmetic — numba only removes interpreter overhead.
    """
    if _numba is not None:  # pragma: no cover - numba not in the CI image
        return _numba.njit(cache=True)(func)
    return func


def backend() -> str:
    """The active kernel backend: :data:`KERNEL` or :data:`ORACLE`."""
    if _override is not None:
        return _override
    raw = os.environ.get(BACKEND_ENV, KERNEL).strip().lower()
    if raw not in _VALID_BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={raw!r} is not a valid backend; "
            f"expected one of {_VALID_BACKENDS}"
        )
    return raw


def set_backend(name: "str | None") -> None:
    """Set (or with ``None`` clear) the process-local backend override."""
    global _override
    if name is not None:
        name = name.strip().lower()
        if name not in _VALID_BACKENDS:
            raise ValueError(
                f"unknown backend {name!r}; expected one of {_VALID_BACKENDS}"
            )
    _override = name


@contextmanager
def use_backend(name: str):
    """Context manager pinning the backend for a ``with`` block."""
    global _override
    previous = _override
    set_backend(name)
    try:
        yield
    finally:
        _override = previous


def kernels_active() -> bool:
    """Whether the fast kernel backend is selected."""
    return backend() == KERNEL


# ---------------------------------------------------------------------- #
# QuickStuff pass-1 kernel
# ---------------------------------------------------------------------- #


@maybe_jit
def _stuff_pass1_compiled(added, rows, cols, row_sums, col_sums, phi):
    # Same operation-for-operation arithmetic as the interpreted loop in
    # quick_stuff_pass1 below: min of two float64 differences, one addition
    # per side.  numba only strips interpreter overhead.
    for k in range(rows.shape[0]):
        i = rows[k]
        j = cols[k]
        slack = phi - row_sums[i]
        other = phi - col_sums[j]
        if other < slack:
            slack = other
        if slack > 0.0:
            added[k] = slack
            row_sums[i] += slack
            col_sums[j] += slack


def quick_stuff_pass1(
    rows: np.ndarray,
    cols: np.ndarray,
    row_sums: np.ndarray,
    col_sums: np.ndarray,
    phi: float,
) -> np.ndarray:
    """QuickStuff's sequential non-zero pass: absorb slack, largest first.

    Walks the (row, col) entries in the caller's order, adding to each the
    largest volume that keeps both its row and column sum at most ``phi``.
    ``row_sums``/``col_sums`` are updated **in place**; the per-entry
    additions are returned aligned with ``rows``/``cols``.

    The scan is inherently sequential (each entry's slack depends on the
    updates before it).  With numba it runs compiled; otherwise it runs
    over plain Python floats — an order of magnitude cheaper than numpy
    scalar indexing — with bit-identical float64 arithmetic either way.
    """
    if NUMBA_AVAILABLE:  # pragma: no cover - numba not in the CI image
        added = np.zeros(rows.shape[0], dtype=np.float64)
        _stuff_pass1_compiled(added, rows, cols, row_sums, col_sums, phi)
        return added
    rs = row_sums.tolist()
    cs = col_sums.tolist()
    row_list = rows.tolist()
    col_list = cols.tolist()
    added = [0.0] * len(row_list)
    for k, (i, j) in enumerate(zip(row_list, col_list)):
        ri, cj = rs[i], cs[j]
        slack = min(phi - ri, phi - cj)
        if slack > 0:
            added[k] = slack
            rs[i] = ri + slack
            cs[j] = cj + slack
    row_sums[:] = rs
    col_sums[:] = cs
    return np.asarray(added, dtype=np.float64)


# ---------------------------------------------------------------------- #
# recycled-CSR scipy matching
# ---------------------------------------------------------------------- #


class _CsrScratch:
    """A reusable CSR container fed fresh index arrays on every call.

    ``scipy.sparse.csr_matrix((data, indices, indptr))`` spends most of its
    time in Python-level validation (``check_format``, index-dtype
    resolution, pruning) that is pure overhead when the caller constructs
    canonical CSR arrays itself.  This scratch builds one csr_matrix and
    thereafter swaps its ``data``/``indices``/``indptr`` attributes in
    place — the compiled csgraph routine reads exactly those arrays, so
    results are identical to a fresh construction.
    """

    def __init__(self) -> None:
        self._graph = None
        self._ones = np.ones(0, dtype=np.int8)

    def matching(self, mask: np.ndarray) -> np.ndarray:
        """``maximum_bipartite_matching(csr(mask), perm_type="column")``."""
        n_rows, n_cols = mask.shape
        indices = np.flatnonzero(mask).astype(np.int32)
        indptr = np.zeros(n_rows + 1, dtype=np.int32)
        np.cumsum(mask.sum(axis=1, dtype=np.int32), out=indptr[1:])
        indices %= n_cols
        return self.matching_csr(indices, indptr, (n_rows, n_cols))

    def matching_csr(
        self,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: "tuple[int, int]",
    ) -> np.ndarray:
        """Matching from caller-built canonical CSR index arrays.

        ``indices`` must be int32 column ids in row-major order (sorted
        within each row) and ``indptr`` the int32 row pointer — exactly
        what ``csr_matrix(mask)`` would hold, so the compiled matcher sees
        byte-identical inputs.
        """
        if self._ones.size < indices.size:
            self._ones = np.ones(max(indices.size, 256), dtype=np.int8)
        data = self._ones[: indices.size]
        if self._graph is None:
            self._graph = _csr_matrix(
                (data, indices, indptr), shape=shape
            )
        else:
            graph = self._graph
            graph.data = data
            graph.indices = indices
            graph.indptr = indptr
            graph._shape = (int(shape[0]), int(shape[1]))
        return np.asarray(
            _scipy_matching(self._graph, perm_type="column"), dtype=np.int64
        )


_scratch = _CsrScratch()


def scipy_matching_mask(mask: np.ndarray) -> "tuple[np.ndarray, int]":
    """Maximum matching of a boolean mask via scipy, recycling the CSR.

    Bit-identical to the scipy path of
    :func:`repro.matching.hopcroft_karp.maximum_matching_mask` — same CSR
    arrays, same compiled Hopcroft–Karp — at a fraction of the per-call
    constructor overhead.  Falls back to that wrapper when scipy is
    unavailable.
    """
    mask = np.asarray(mask, dtype=bool)
    if _scipy_matching is None:  # pragma: no cover - scipy always in CI
        from repro.matching.hopcroft_karp import maximum_matching_mask

        return maximum_matching_mask(mask)
    match_left = _scratch.matching(mask)
    return match_left, int((match_left != -1).sum())


def scipy_matching_csr(
    indices: np.ndarray, indptr: np.ndarray, n: int
) -> "tuple[np.ndarray, int]":
    """Maximum matching of an n×n biadjacency given as canonical CSR arrays.

    Same contract as :meth:`_CsrScratch.matching_csr`: the caller supplies
    the exact index arrays ``csr_matrix(mask)`` would hold, so the result
    is bit-identical to :func:`scipy_matching_mask` on that mask — without
    ever materialising the dense mask.  Callers that track the nonzero
    structure of a shrinking matrix (BigSlice) build these in O(nnz).
    """
    match_left = _scratch.matching_csr(indices, indptr, (n, n))
    return match_left, int((match_left != -1).sum())


# ---------------------------------------------------------------------- #
# warm-start feasibility matcher
# ---------------------------------------------------------------------- #


class WarmMatcher:
    """Perfect-matching feasibility probes over ``matrix >= threshold``.

    The matcher holds a reference to a **live** matrix (the caller may
    mutate entries between probes, as Solstice's slicing loop does) and the
    last perfect matching it certified.  Each :meth:`feasible` probe copies
    that matching, drops pairs whose entries fell below the probed
    threshold, and re-augments only the deficient rows with an iterative
    Kuhn search over lazily-fetched row adjacency.  An infeasible probe
    leaves the stored matching untouched, so a failed high probe never
    degrades the warm start for the lower probes that follow.

    Only the feasibility *verdict* is exposed; internal matchings are
    arbitrary maximum matchings and deliberately never leak into schedule
    output (the exact permutation the schedulers publish always comes from
    the same scipy call the oracle path makes).
    """

    def __init__(self, matrix: np.ndarray) -> None:
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square 2-D, got {matrix.shape}")
        self.matrix = matrix
        self.n = matrix.shape[0]
        self._match_left = np.full(self.n, -1, dtype=np.int64)
        self._match_right = np.full(self.n, -1, dtype=np.int64)

    def seed(self, match_left: np.ndarray) -> None:
        """Adopt a known matching (e.g. the slice just published) as warm start."""
        ml = np.asarray(match_left, dtype=np.int64)
        self._match_left = ml.copy()
        self._match_right = np.full(self.n, -1, dtype=np.int64)
        matched = np.flatnonzero(ml >= 0)
        self._match_right[ml[matched]] = matched

    def feasible(
        self,
        threshold: float,
        budget: "int | None" = None,
        max_free: "int | None" = None,
    ) -> "bool | None":
        """Whether ``matrix >= threshold`` admits a perfect matching.

        ``max_free`` bounds how many deficient rows the warm repair will
        take on, and ``budget`` caps the total row expansions (adjacency
        fetches) it may spend.  When the warm matching is close to valid at
        ``threshold`` the repair finishes in a handful of expansions; a
        probe past either limit is a *restructuring* — interpreted Kuhn
        would crawl through a deep search forest — and the method returns
        ``None`` so the caller can re-ask a compiled matcher.  Verdicts
        (``True``/``False``) are always exact.
        """
        matrix = self.matrix
        ml = self._match_left.copy()
        mr = self._match_right.copy()
        matched = np.flatnonzero(ml >= 0)
        if matched.size:
            stale = matched[matrix[matched, ml[matched]] < threshold]
            if stale.size:
                mr[ml[stale]] = -1
                ml[stale] = -1
        free = np.flatnonzero(ml < 0)
        if free.size:
            # Cheap Hall pre-check: a free row with no admissible entry can
            # never be matched; bail before building any search forest.
            if (matrix[free].max(axis=1) < threshold).any():
                return False
            if max_free is not None and free.size > max_free:
                return None
            remaining = budget if budget is not None else -1
            for root in free.tolist():
                verdict, remaining = self._augment(
                    root, threshold, ml, mr, remaining
                )
                if verdict is not True:
                    return verdict
        self._match_left = ml
        self._match_right = mr
        return True

    def _augment(
        self,
        root: int,
        threshold: float,
        ml: np.ndarray,
        mr: np.ndarray,
        budget: int,
    ) -> "tuple[bool | None, int]":
        """One iterative Kuhn augmentation from ``root``.

        Returns the verdict plus the budget left: ``True`` = augmented,
        ``False`` = no augmenting path, ``None`` = budget exhausted
        (``budget < 0`` means unlimited).  Kuhn's invariant makes a False
        verdict final: if no augmenting path exists from a free row under
        the current matching, none will exist after other rows augment, so
        the caller may declare infeasibility immediately.
        """
        if budget == 0:
            return None, 0
        matrix = self.matrix
        visited = np.zeros(self.n, dtype=bool)
        # Frames: [row, neighbour array, next index, edge column taken].
        neighbours = np.flatnonzero(matrix[root] >= threshold)
        budget -= 1
        stack: "list[list]" = [[root, neighbours, 0, -1]]
        while stack:
            if budget == 0:
                return None, 0
            frame = stack[-1]
            u, adj, idx = frame[0], frame[1], frame[2]
            descended = False
            while idx < adj.size:
                v = int(adj[idx])
                idx += 1
                if visited[v]:
                    continue
                visited[v] = True
                nxt = int(mr[v])
                if nxt < 0:
                    ml[u] = v
                    mr[v] = u
                    stack.pop()
                    while stack:
                        parent = stack.pop()
                        ml[parent[0]] = parent[3]
                        mr[parent[3]] = parent[0]
                    return True, budget
                frame[2] = idx
                frame[3] = v
                stack.append(
                    [nxt, np.flatnonzero(matrix[nxt] >= threshold), 0, -1]
                )
                budget -= 1
                descended = True
                break
            if not descended:
                stack.pop()
        return False, budget
