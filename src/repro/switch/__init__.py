"""Switch model: port/link parameters, demand matrices, virtual output queues."""

from repro.switch.demand import DemandMatrix
from repro.switch.params import (
    FAST_OCS_DELTA_MS,
    SLOW_OCS_DELTA_MS,
    OcsClass,
    SwitchParams,
    fast_ocs_params,
    slow_ocs_params,
)
from repro.switch.voq import VirtualOutputQueues

__all__ = [
    "FAST_OCS_DELTA_MS",
    "SLOW_OCS_DELTA_MS",
    "DemandMatrix",
    "OcsClass",
    "SwitchParams",
    "VirtualOutputQueues",
    "fast_ocs_params",
    "slow_ocs_params",
]
