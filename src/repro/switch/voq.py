"""Per-receiver Virtual Output Queues (VOQs).

Each sender implements one queue per receiver (§2.1); their occupancies form
the demand matrix the scheduler consumes.  The fluid simulator tracks VOQ
state as a residual matrix; this class is the stateful façade used by the
packet-level EPS cross-check model and by the examples, and it enforces the
conservation invariants (enqueue/serve never go negative, totals balance).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import VOLUME_TOL, check_demand_matrix


class VirtualOutputQueues:
    """n×n matrix of VOQ occupancies with conservation accounting.

    Parameters
    ----------
    n_ports:
        Switch radix.
    initial:
        Optional initial occupancy matrix (Mb).
    """

    def __init__(self, n_ports: int, initial: np.ndarray | None = None) -> None:
        if n_ports < 1:
            raise ValueError(f"n_ports must be >= 1, got {n_ports}")
        self._n = int(n_ports)
        if initial is None:
            self._occupancy = np.zeros((self._n, self._n), dtype=np.float64)
        else:
            arr = check_demand_matrix(initial)
            if arr.shape != (self._n, self._n):
                raise ValueError(f"initial occupancy shape {arr.shape} != ({self._n}, {self._n})")
            self._occupancy = arr
        self._total_enqueued = float(self._occupancy.sum())
        self._total_served = 0.0

    # ------------------------------------------------------------------ #

    @property
    def n_ports(self) -> int:
        return self._n

    @property
    def occupancy(self) -> np.ndarray:
        """Read-only view of current occupancies (Mb)."""
        view = self._occupancy.view()
        view.setflags(write=False)
        return view

    @property
    def total_enqueued(self) -> float:
        """All volume ever enqueued, including the initial occupancy (Mb)."""
        return self._total_enqueued

    @property
    def total_served(self) -> float:
        """All volume ever served (Mb)."""
        return self._total_served

    @property
    def backlog(self) -> float:
        """Currently queued volume (Mb)."""
        return float(self._occupancy.sum())

    def is_empty(self, tol: float = VOLUME_TOL) -> bool:
        """Whether every VOQ is drained (within ``tol``)."""
        return bool(self._occupancy.max(initial=0.0) <= tol)

    # ------------------------------------------------------------------ #

    def enqueue(self, sender: int, receiver: int, volume: float) -> None:
        """Add ``volume`` Mb to the (sender → receiver) VOQ."""
        if volume < 0:
            raise ValueError(f"cannot enqueue negative volume {volume}")
        self._occupancy[sender, receiver] += volume
        self._total_enqueued += volume

    def serve(self, sender: int, receiver: int, volume: float) -> float:
        """Drain up to ``volume`` Mb from the (sender → receiver) VOQ.

        Returns the volume actually served (saturates at the occupancy).
        """
        if volume < 0:
            raise ValueError(f"cannot serve negative volume {volume}")
        served = min(volume, self._occupancy[sender, receiver])
        self._occupancy[sender, receiver] -= served
        self._total_served += served
        return float(served)

    def serve_matrix(self, amounts: np.ndarray) -> np.ndarray:
        """Drain an entire matrix of amounts at once; returns actual drains."""
        amounts = np.asarray(amounts, dtype=np.float64)
        if amounts.shape != self._occupancy.shape:
            raise ValueError(f"amounts shape {amounts.shape} != {self._occupancy.shape}")
        if np.any(amounts < 0):
            raise ValueError("cannot serve negative amounts")
        served = np.minimum(amounts, self._occupancy)
        self._occupancy -= served
        self._total_served += float(served.sum())
        return served

    def check_conservation(self, tol: float = 1e-6) -> None:
        """Raise if enqueued != served + backlog (volume leaked somewhere)."""
        drift = abs(self._total_enqueued - self._total_served - self.backlog)
        if drift > tol:
            raise AssertionError(
                f"VOQ volume conservation violated: enqueued={self._total_enqueued}, "
                f"served={self._total_served}, backlog={self.backlog}, drift={drift}"
            )
