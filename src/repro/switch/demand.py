"""Demand-matrix wrapper with the statistics the schedulers care about.

A demand matrix ``D`` is an n×n array whose entry ``D[i, j]`` is the volume
(Mb) queued at sender ``i``'s virtual output queue towards receiver ``j``
(§2.1).  The raw array is the lingua franca of the library — every scheduler
accepts a plain ``numpy`` array — but :class:`DemandMatrix` adds validation
and the sparsity/skew statistics used in the evaluation discussion (§3.3
mentions the mean number of non-zero entries; Solstice exploits sparsity and
skewness explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import VOLUME_TOL, check_demand_matrix


@dataclass(frozen=True)
class DemandStats:
    """Summary statistics of a demand matrix."""

    n_ports: int
    total_volume: float
    nonzero_entries: int
    density: float
    max_row_sum: float
    max_col_sum: float
    max_entry: float
    skewness: float

    def __str__(self) -> str:
        return (
            f"DemandStats(n={self.n_ports}, total={self.total_volume:.1f} Mb, "
            f"nnz={self.nonzero_entries}, density={self.density:.3f}, "
            f"max_port_load={max(self.max_row_sum, self.max_col_sum):.1f} Mb, "
            f"skewness={self.skewness:.2f})"
        )


class DemandMatrix:
    """Validated, immutable view of an n×n demand matrix.

    Parameters
    ----------
    demand:
        Square, non-negative, finite 2-D array (Mb).

    Notes
    -----
    The underlying array is copied and marked read-only; use
    :meth:`to_array` to obtain a private mutable copy.
    """

    def __init__(self, demand: np.ndarray) -> None:
        arr = check_demand_matrix(demand)
        arr.setflags(write=False)
        self._demand = arr

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n_ports(self) -> int:
        """Switch radix n."""
        return self._demand.shape[0]

    @property
    def array(self) -> np.ndarray:
        """Read-only view of the demand (Mb)."""
        return self._demand

    def to_array(self) -> np.ndarray:
        """Private mutable copy of the demand (Mb)."""
        return self._demand.copy()

    def __getitem__(self, key):
        return self._demand[key]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DemandMatrix):
            return np.array_equal(self._demand, other._demand)
        return NotImplemented

    def __hash__(self) -> int:  # frozen-by-convention value object
        return hash((self._demand.shape, self._demand.tobytes()))

    def __repr__(self) -> str:
        return f"DemandMatrix(n={self.n_ports}, total={self.total_volume:.1f} Mb)"

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def total_volume(self) -> float:
        """Total demand volume in Mb."""
        return float(self._demand.sum())

    @property
    def nonzero_mask(self) -> np.ndarray:
        """Boolean mask of entries with meaningful (> tolerance) demand."""
        return self._demand > VOLUME_TOL

    def row_sums(self) -> np.ndarray:
        """Per-sender total demand (Mb)."""
        return self._demand.sum(axis=1)

    def col_sums(self) -> np.ndarray:
        """Per-receiver total demand (Mb)."""
        return self._demand.sum(axis=0)

    def max_port_load(self) -> float:
        """Largest per-port load — a lower bound on any schedule's volume."""
        return float(max(self.row_sums().max(), self.col_sums().max()))

    def eps_only_completion_bound(self, eps_rate: float) -> float:
        """Lower bound (ms) on serving everything through the EPS alone.

        The EPS serves each port at ``Ce``; the bottleneck port needs at
        least ``max_port_load / Ce``.
        """
        if eps_rate <= 0:
            raise ValueError(f"eps_rate must be positive, got {eps_rate}")
        return self.max_port_load() / eps_rate

    def stats(self) -> DemandStats:
        """Compute the :class:`DemandStats` summary."""
        mask = self.nonzero_mask
        nnz = int(mask.sum())
        values = self._demand[mask]
        total = float(values.sum()) if nnz else 0.0
        if nnz >= 2 and values.std() > 0:
            centered = values - values.mean()
            skew = float((centered**3).mean() / values.std() ** 3)
        else:
            skew = 0.0
        return DemandStats(
            n_ports=self.n_ports,
            total_volume=total,
            nonzero_entries=nnz,
            density=nnz / self._demand.size,
            max_row_sum=float(self.row_sums().max()),
            max_col_sum=float(self.col_sums().max()),
            max_entry=float(values.max()) if nnz else 0.0,
            skewness=skew,
        )
