"""Physical parameters of the hybrid / composite-path switch.

The paper (§2.1, §3) evaluates a switch with:

* ``Ce = 10 Gbps`` electronic packet switch (EPS) port rate,
* ``Co = 100 Gbps`` optical circuit switch (OCS) port rate (1:10 ratio),
* a *Fast OCS* with reconfiguration penalty ``δ = 20 µs`` (2D MEMS
  wavelength-selective switches) and a *Slow OCS* with ``δ = 20 ms``
  (3D MEMS),
* radix (port count) n ∈ {32, 64, 128}.

Composite paths add a per-EPS-link bandwidth budget ``Ce* ≤ Ce`` (§2.3,
"EPS Reservation") that the scheduler hands to CPSched instead of ``Ce``.
The paper's evaluation does not reserve headroom, so ``Ce*`` defaults to
``Ce``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.utils.units import us_to_ms
from repro.utils.validation import check_nonnegative, check_positive

#: Fast (2D MEMS) OCS reconfiguration penalty, ms.
FAST_OCS_DELTA_MS: float = us_to_ms(20.0)

#: Slow (3D MEMS) OCS reconfiguration penalty, ms.
SLOW_OCS_DELTA_MS: float = 20.0

#: Eclipse scheduling-window lengths the paper pairs with each OCS class, ms.
FAST_OCS_WINDOW_MS: float = 1.0
SLOW_OCS_WINDOW_MS: float = 100.0


class OcsClass(enum.Enum):
    """The two OCS technology classes evaluated in the paper."""

    FAST = "fast"
    SLOW = "slow"

    @property
    def reconfig_delay(self) -> float:
        """Reconfiguration penalty δ in ms."""
        return FAST_OCS_DELTA_MS if self is OcsClass.FAST else SLOW_OCS_DELTA_MS

    @property
    def eclipse_window(self) -> float:
        """Eclipse scheduling window W in ms (§3.1)."""
        return FAST_OCS_WINDOW_MS if self is OcsClass.FAST else SLOW_OCS_WINDOW_MS


@dataclass(frozen=True)
class SwitchParams:
    """Immutable description of one hybrid / cp-Switch instance.

    Attributes
    ----------
    n_ports:
        Switch radix n — number of sender and receiver ports.
    eps_rate:
        EPS link rate ``Ce`` in Mb/ms (== Gbps).
    ocs_rate:
        OCS link rate ``Co`` in Mb/ms (== Gbps).
    reconfig_delay:
        OCS reconfiguration penalty ``δ`` in ms.  During reconfiguration no
        data crosses the OCS (§2.1).
    eps_budget:
        ``Ce*`` — per-EPS-link bandwidth budget available to composite
        paths (§2.3).  ``None`` means "no reservation", i.e. ``Ce* = Ce``.
    """

    n_ports: int
    eps_rate: float = 10.0
    ocs_rate: float = 100.0
    reconfig_delay: float = FAST_OCS_DELTA_MS
    eps_budget: float | None = field(default=None)

    def __post_init__(self) -> None:
        if int(self.n_ports) != self.n_ports or self.n_ports < 2:
            raise ValueError(f"n_ports must be an integer >= 2, got {self.n_ports}")
        check_positive("eps_rate", self.eps_rate)
        check_positive("ocs_rate", self.ocs_rate)
        check_nonnegative("reconfig_delay", self.reconfig_delay)
        if self.eps_rate > self.ocs_rate:
            raise ValueError(
                "hybrid switching assumes the EPS is the low-bandwidth fabric: "
                f"eps_rate={self.eps_rate} > ocs_rate={self.ocs_rate}"
            )
        if self.eps_budget is not None:
            check_positive("eps_budget", self.eps_budget)
            if self.eps_budget > self.eps_rate:
                raise ValueError(
                    f"eps_budget (Ce*={self.eps_budget}) cannot exceed eps_rate (Ce={self.eps_rate})"
                )

    @property
    def effective_eps_budget(self) -> float:
        """``Ce*`` with the "no reservation" default resolved to ``Ce``."""
        return self.eps_rate if self.eps_budget is None else self.eps_budget

    @property
    def rate_ratio(self) -> float:
        """OCS-to-EPS speedup ``Co / Ce`` (10 in the paper)."""
        return self.ocs_rate / self.eps_rate

    def with_ports(self, n_ports: int) -> "SwitchParams":
        """Copy of these parameters at a different radix."""
        return replace(self, n_ports=n_ports)

    def with_budget(self, eps_budget: float | None) -> "SwitchParams":
        """Copy of these parameters with a different composite-path budget."""
        return replace(self, eps_budget=eps_budget)


def fast_ocs_params(n_ports: int, *, eps_rate: float = 10.0, ocs_rate: float = 100.0) -> SwitchParams:
    """Paper's Fast-OCS switch: ``δ = 20 µs`` (§3, 2D MEMS)."""
    return SwitchParams(
        n_ports=n_ports,
        eps_rate=eps_rate,
        ocs_rate=ocs_rate,
        reconfig_delay=FAST_OCS_DELTA_MS,
    )


def slow_ocs_params(n_ports: int, *, eps_rate: float = 10.0, ocs_rate: float = 100.0) -> SwitchParams:
    """Paper's Slow-OCS switch: ``δ = 20 ms`` (§3, 3D MEMS)."""
    return SwitchParams(
        n_ports=n_ports,
        eps_rate=eps_rate,
        ocs_rate=ocs_rate,
        reconfig_delay=SLOW_OCS_DELTA_MS,
    )


def ocs_params(ocs: str, n_ports: int) -> SwitchParams:
    """Switch parameters by OCS class name (``"fast"`` / ``"slow"``).

    The string form is what journaled trial specs store, so resumable
    sweeps rebuild parameters through this helper.
    """
    if ocs == "fast":
        return fast_ocs_params(n_ports)
    if ocs == "slow":
        return slow_ocs_params(n_ports)
    raise ValueError(f"unknown OCS class {ocs!r}; expected 'fast' or 'slow'")
