"""repro — reproduction of "Composite-Path Switching" (CoNEXT 2016).

A composite-path switch (cp-Switch) extends the hybrid circuit/packet
switch (h-Switch) with composite OCS→EPS and EPS→OCS paths so that skewed
one-to-many / many-to-one datacenter coflows can ride a single optical
circuit instead of paying one reconfiguration per destination.

Public API tour
---------------
>>> import numpy as np
>>> from repro import (
...     CpSwitchScheduler, SolsticeScheduler, fast_ocs_params,
...     simulate_cp, simulate_hybrid,
... )
>>> params = fast_ocs_params(32)
>>> demand = np.zeros((32, 32)); demand[0, 1:25] = 1.2   # one-to-many coflow
>>> h = SolsticeScheduler()
>>> cp = CpSwitchScheduler(h)
>>> res_h = simulate_hybrid(demand, h.schedule(demand, params), params)
>>> res_cp = simulate_cp(demand, cp.schedule(demand, params), params)
>>> bool(res_cp.completion_time < res_h.completion_time)
True

Layers
------
* :mod:`repro.core` — the paper's Algorithms 1–4 and the k-path extension;
* :mod:`repro.hybrid` — Solstice and Eclipse h-Switch schedulers (built
  from scratch per their papers);
* :mod:`repro.sim` — fluid online execution of either switch;
* :mod:`repro.faults` — seedable fault injection with graceful cp-Switch →
  h-Switch degradation;
* :mod:`repro.workloads` — the paper's §3.2–§3.5 demand models;
* :mod:`repro.analysis` — seeded comparison experiments and reporting;
* :mod:`repro.matching`, :mod:`repro.switch`, :mod:`repro.utils` —
  substrates.
"""

from repro.analysis import EpochController, ExperimentConfig, run_comparison
from repro.core import (
    CpSchedule,
    CpSwitchScheduler,
    FilterConfig,
    ReducedDemand,
    cp_switch_demand_reduction,
    cpsched,
    divide_by_type,
)
from repro.core.multipath import MultiPathCpScheduler, multi_path_reduction
from repro.faults import (
    BackupPlanner,
    BackupSchedule,
    BackupSet,
    FaultInjector,
    FaultPlan,
    FaultSummary,
    RerouteOutcome,
    SwapEvent,
)
from repro.hybrid import (
    EclipseScheduler,
    Schedule,
    ScheduleEntry,
    SolsticeScheduler,
    TdmScheduler,
    make_scheduler,
)
from repro.sim import SimulationResult, simulate_cp, simulate_hybrid, simulate_multipath
from repro.switch import DemandMatrix, OcsClass, SwitchParams, fast_ocs_params, slow_ocs_params
from repro.workloads import (
    CombinedWorkload,
    SkewedWorkload,
    TypicalBackgroundWorkload,
    VaryingSkewWorkload,
)
from repro.workloads.coflows import (
    BurstyCoflowWorkload,
    Coflow,
    CoflowMixWorkload,
    CoflowSet,
    CoflowType,
)

__version__ = "1.0.0"

__all__ = [
    "BackupPlanner",
    "BackupSchedule",
    "BackupSet",
    "BurstyCoflowWorkload",
    "Coflow",
    "CoflowMixWorkload",
    "CoflowSet",
    "CoflowType",
    "CombinedWorkload",
    "CpSchedule",
    "CpSwitchScheduler",
    "DemandMatrix",
    "EclipseScheduler",
    "EpochController",
    "ExperimentConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "FilterConfig",
    "MultiPathCpScheduler",
    "OcsClass",
    "ReducedDemand",
    "RerouteOutcome",
    "Schedule",
    "ScheduleEntry",
    "SimulationResult",
    "SkewedWorkload",
    "SolsticeScheduler",
    "SwapEvent",
    "SwitchParams",
    "TdmScheduler",
    "TypicalBackgroundWorkload",
    "VaryingSkewWorkload",
    "__version__",
    "cp_switch_demand_reduction",
    "cpsched",
    "divide_by_type",
    "fast_ocs_params",
    "make_scheduler",
    "multi_path_reduction",
    "run_comparison",
    "simulate_cp",
    "simulate_hybrid",
    "simulate_multipath",
    "slow_ocs_params",
]
