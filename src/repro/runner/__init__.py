"""Crash-tolerant, resumable sweep execution.

The runner layer makes the experiment harness production-grade: every
trial result is checkpointed to an atomic JSONL journal, trials execute in
subprocess workers with timeouts and bounded retry, failures are
quarantined as reproducible ``.npz`` files instead of aborting the sweep,
and an interrupted sweep resumes from its journal bit-identically.

Entry points: :class:`SweepRunner` (library), ``python -m repro sweep``
(CLI, including ``--resume <journal>``).
"""

from repro.runner.failures import TrialFailure, demand_fingerprint, quarantine_trial
from repro.runner.heartbeat import (
    HEARTBEAT_FORMAT,
    HeartbeatTicker,
    heartbeat_dir,
    read_heartbeats,
    write_heartbeat,
)
from repro.runner.isolation import (
    TrialOutcome,
    TrialSpec,
    resolve_fn,
    run_in_subprocess,
    run_inline,
)
from repro.runner.journal import JOURNAL_FORMAT, JournalFormatError, RunJournal
from repro.runner.pool import StageResult, StageTask, WorkerPool, absorb_observations
from repro.runner.retry import RetryPolicy
from repro.runner.sweep import SweepConfig, SweepResult, SweepRunner, specs_from_journal

__all__ = [
    "HEARTBEAT_FORMAT",
    "HeartbeatTicker",
    "JOURNAL_FORMAT",
    "JournalFormatError",
    "RetryPolicy",
    "RunJournal",
    "SweepConfig",
    "StageResult",
    "StageTask",
    "SweepResult",
    "SweepRunner",
    "TrialFailure",
    "WorkerPool",
    "absorb_observations",
    "TrialOutcome",
    "TrialSpec",
    "demand_fingerprint",
    "heartbeat_dir",
    "quarantine_trial",
    "read_heartbeats",
    "resolve_fn",
    "run_in_subprocess",
    "run_inline",
    "specs_from_journal",
    "write_heartbeat",
]
