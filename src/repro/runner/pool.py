"""Warm worker-process pool for sharding per-epoch heavy stages.

The sweep runner forks one subprocess per trial attempt because a trial is
long (seconds) and must be killable.  The scheduling service has the
opposite profile: every epoch it fans out a handful of *short* heavy
stages (independent-scheduler arms, backup planning, robustness checks)
and fork-per-stage would dominate the epoch budget.  :class:`WorkerPool`
keeps ``K`` worker processes alive across epochs — each is a long-lived
loop around the same ``(fn_path, kwargs)`` protocol as
:mod:`repro.runner.isolation`, so stage functions are addressed by
importable ``"module:function"`` paths and results come back over a pipe.

Contract:

* **Warm** — workers persist across :meth:`WorkerPool.map` calls; the
  service reuses the same pids epoch after epoch (the smoke test asserts
  this).
* **Crash-tolerant** — a worker that dies mid-task is respawned and the
  task is retried (up to ``retries`` extra attempts); only then does the
  stage report ``crashed``.
* **Observable** — each task ships a spans/metrics blob back with its
  result; callers absorb the blobs on their own thread via
  :func:`absorb_observations` (the pool never touches the tracer from a
  worker-management thread).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait

from repro import obs
from repro.runner.isolation import error_dict, obs_blob, resolve_fn


@dataclass(frozen=True)
class StageTask:
    """One unit of pool work: a picklable call, addressed like a trial.

    Attributes
    ----------
    name:
        Caller-chosen label (unique within one ``map`` batch is not
        required; results are returned positionally).
    fn:
        ``"module:function"`` path, resolved inside the worker.
    kwargs:
        Keyword arguments; must be picklable (pipes carry pickles, so —
        unlike journal specs — numpy arrays and dataclasses are fine).
    """

    name: str
    fn: str
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class StageResult:
    """Result of one :class:`StageTask`, normalized like a trial outcome."""

    name: str
    status: str  # "ok" | "error" | "crashed"
    payload: "object | None" = None
    error: "dict | None" = None
    pid: "int | None" = None
    attempts: int = 1
    elapsed_s: float = 0.0
    obs: "dict | None" = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def absorb_observations(results: "list[StageResult]") -> None:
    """Fold worker span/metric blobs into this process's backends.

    Call from the thread that owns the tracer (the service's event-loop
    thread), not from inside the pool.
    """
    if not obs.active():
        return
    tracer = obs.get_tracer()
    metrics = obs.get_metrics()
    for result in results:
        if result.obs:
            tracer.absorb(result.obs.get("spans") or [])
            metrics.merge(result.obs.get("metrics") or {})


def _pool_worker_main(conn) -> None:
    """Child-side loop: recv ``(task_id, fn, kwargs)``, send the result.

    A ``None`` message (or a closed pipe) is the shutdown signal.  Like
    the one-shot trial worker, inherited observability records are cleared
    on startup and each task's own spans/metrics ship back in its result
    tuple.
    """
    obs.reset_for_fork()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, fn_path, kwargs = message
        try:
            payload = resolve_fn(fn_path)(**kwargs)
            status, body = "ok", payload
        except Exception as exc:  # noqa: BLE001 — containment is the job
            status, body = "error", error_dict(exc)
        blob = obs_blob()
        # obs_blob() drains the tracer but *snapshots* the metrics; a warm
        # worker must ship per-task deltas, so clear the registry after
        # every blob or the parent would double-count across tasks.
        obs.get_metrics().reset()
        try:
            conn.send((task_id, status, body, os.getpid(), blob))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    """Parent-side handle: process + duplex pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    @property
    def pid(self) -> "int | None":
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
        self.process.join(timeout=2.0)


class WorkerPool:
    """``K`` persistent subprocess workers executing :class:`StageTask`s.

    Parameters
    ----------
    n_workers:
        Pool size (>= 1).
    retries:
        Extra attempts granted to a task whose worker died mid-run
        (a task that *raises* is not retried — exceptions are
        deterministic, crashes are not).
    start_method:
        Multiprocessing start method; defaults to ``fork`` where
        available, matching :func:`~repro.runner.isolation.run_in_subprocess`.
    timeout_s:
        Per-task wall-clock budget; a worker that exceeds it is killed
        (and the task retried like any other crash).  ``None`` disables.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        retries: int = 1,
        start_method: "str | None" = None,
        timeout_s: "float | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.retries = retries
        self.timeout_s = timeout_s
        self.worker_deaths = 0
        self.tasks_retried = 0
        #: Structured crash records, one per buried worker — the service's
        #: flight recorder reads per-epoch deltas off the tail.  Appended
        #: from whichever thread runs ``map()``; readers take len-slices
        #: (list appends are atomic under the GIL).
        self.death_log: "list[dict]" = []
        self._closed = False
        self._workers: "list[_Worker]" = [self._spawn() for _ in range(n_workers)]

    # ------------------------------------------------------------------ #

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _bury(
        self, worker: _Worker, *, reason: str = "crashed", task: "str | None" = None
    ) -> _Worker:
        """Retire a dead/wedged worker and return its warm replacement."""
        self.worker_deaths += 1
        pid = worker.pid
        worker.kill()
        self._workers.remove(worker)
        replacement = self._spawn()
        self._workers.append(replacement)
        self.death_log.append(
            {
                "pid": pid,
                "reason": reason,
                "task": task,
                "respawned_pid": replacement.pid,
                "mono": time.monotonic(),
            }
        )
        return replacement

    def liveness(self) -> dict:
        """Pool liveness snapshot for the service's ``/status`` endpoint."""
        workers = list(self._workers)
        return {
            "pids": sorted(w.pid for w in workers if w.pid is not None),
            "alive": sum(1 for w in workers if w.alive()),
            "deaths": self.worker_deaths,
            "tasks_retried": self.tasks_retried,
            "closed": self._closed,
        }

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def pids(self) -> "list[int]":
        """Live worker pids (stable across ``map`` calls — that is the point)."""
        return [w.pid for w in self._workers if w.pid is not None]

    # ------------------------------------------------------------------ #

    def map(self, tasks: "list[StageTask]") -> "list[StageResult]":
        """Run every task, return results in task order.

        Blocks until all tasks resolve.  Worker death triggers respawn +
        retry (bounded by ``retries``); a task out of retry budget
        reports ``crashed``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if not tasks:
            return []
        results: "dict[int, StageResult]" = {}
        attempts = [0] * len(tasks)
        pending = deque(range(len(tasks)))
        idle: "list[_Worker]" = list(self._workers)
        busy: "dict[object, tuple[_Worker, int, float]]" = {}

        def dispatch() -> None:
            while pending and idle:
                index = pending.popleft()
                worker = idle.pop()
                attempts[index] += 1
                task = tasks[index]
                try:
                    worker.conn.send((index, task.fn, dict(task.kwargs)))
                except (BrokenPipeError, OSError):
                    replacement = self._bury(worker, reason="dispatch-failed", task=task.name)
                    idle.append(replacement)
                    attempts[index] -= 1  # the attempt never started
                    pending.appendleft(index)
                    continue
                busy[worker.conn] = (worker, index, time.perf_counter())

        def fail_or_retry(index: int, started: float, reason: str) -> None:
            if attempts[index] <= self.retries:
                self.tasks_retried += 1
                pending.append(index)
                return
            results[index] = StageResult(
                name=tasks[index].name,
                status="crashed",
                error={"type": "WorkerDied", "message": reason, "traceback": ""},
                attempts=attempts[index],
                elapsed_s=time.perf_counter() - started,
            )

        while len(results) < len(tasks):
            dispatch()
            if not busy:
                # Every worker died while dispatching and nothing is in
                # flight — loop back and dispatch to the respawns.
                continue
            wait_timeout = None
            if self.timeout_s is not None:
                oldest = min(started for (_, _, started) in busy.values())
                wait_timeout = max(0.0, self.timeout_s - (time.perf_counter() - oldest))
            ready = _connection_wait(list(busy), timeout=wait_timeout)
            now = time.perf_counter()
            if not ready and self.timeout_s is not None:
                for conn in [
                    c for c, (_, _, t0) in busy.items() if now - t0 >= self.timeout_s
                ]:
                    worker, index, started = busy.pop(conn)
                    self._bury(worker, reason="timeout", task=tasks[index].name)
                    idle.append(self._workers[-1])
                    fail_or_retry(
                        index,
                        started,
                        f"stage exceeded {self.timeout_s}s wall-clock budget",
                    )
                continue
            for conn in ready:
                worker, index, started = busy.pop(conn)
                try:
                    task_id, status, body, pid, blob = conn.recv()
                except (EOFError, OSError):
                    self._bury(worker, reason="crashed", task=tasks[index].name)
                    idle.append(self._workers[-1])
                    fail_or_retry(
                        index,
                        started,
                        "pool worker exited without reporting a result",
                    )
                    continue
                idle.append(worker)
                results[task_id] = StageResult(
                    name=tasks[task_id].name,
                    status=status,
                    payload=body if status == "ok" else None,
                    error=body if status != "ok" else None,
                    pid=pid,
                    attempts=attempts[task_id],
                    elapsed_s=time.perf_counter() - started,
                    obs=blob,
                )
        return [results[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut every worker down cleanly (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            worker.kill()
        self._workers.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
