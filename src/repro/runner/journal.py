"""JSONL run journal — the checkpoint store behind resumable sweeps.

One journal per sweep.  Line 0 is a *header* record carrying the sweep's
identity and its full trial-spec list (so ``python -m repro sweep --resume
<journal>`` can rebuild the remaining work from the journal alone); every
subsequent line is one *trial* record (``status: "ok" | "failed"``) or an
auxiliary record (``epoch`` reports from the controller, notes).

Durability model
----------------
Every append rewrites the whole journal through the atomic tmp-file +
``os.replace`` helper (:mod:`repro.utils.fileio`), so a reader — including
a resumed run after a SIGKILL — sees either the journal before the append
or after it, never a torn line.  Journals are small (one short JSON object
per trial), so the rewrite is cheap at any realistic sweep size.  Loading
is nevertheless tolerant of a trailing torn line, in case the file was
produced by a foreign appender.

Records carry a versioned envelope (``format``) so a future layout change
fails loudly instead of mis-parsing old journals.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.fileio import atomic_write_text

#: Version of the journal record envelope.
JOURNAL_FORMAT: int = 1


class JournalFormatError(ValueError):
    """A journal (or record) uses an unsupported envelope version."""


def _check_format(record: dict, where: str) -> None:
    version = record.get("format")
    if version != JOURNAL_FORMAT:
        raise JournalFormatError(
            f"unsupported journal format v{version} in {where} "
            f"(expected v{JOURNAL_FORMAT})"
        )


class RunJournal:
    """Append-only checkpoint log of one sweep.

    Parameters
    ----------
    path:
        Journal file.  ``None`` keeps the journal purely in memory (useful
        for tests and for one-shot runs that do not want a file).
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        self.records: "list[dict]" = []
        self.torn_lines: int = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn line can only come from a non-atomic foreign
                # writer dying mid-append; everything before it is intact.
                self.torn_lines += 1
                break
            _check_format(record, str(self.path))
            self.records.append(record)

    def _flush(self) -> None:
        if self.path is None:
            return
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.records
        )
        atomic_write_text(self.path, text)

    def append(self, record: dict) -> dict:
        """Append one record (envelope added) and atomically persist."""
        record = {"format": JOURNAL_FORMAT, **record}
        if "kind" not in record:
            raise ValueError("journal records need a 'kind' field")
        self.records.append(record)
        self._flush()
        return record

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def header(self) -> "dict | None":
        """The sweep header record, if one was written."""
        for record in self.records:
            if record.get("kind") == "header":
                return record
        return None

    def write_header(self, sweep: str, spec: "list[dict]", meta: "dict | None" = None) -> None:
        """Write the header once; on resume, verify it matches.

        ``spec`` is the JSON form of every trial spec in the sweep (see
        :meth:`repro.runner.sweep.SweepRunner.run`); ``meta`` is free-form
        presentation data the CLI uses to re-print results after a resume.
        """
        existing = self.header
        if existing is not None:
            if existing.get("sweep") != sweep:
                raise ValueError(
                    f"journal {self.path} belongs to sweep {existing.get('sweep')!r}, "
                    f"not {sweep!r} — use a fresh journal file"
                )
            return
        self.append(
            {"kind": "header", "sweep": sweep, "spec": spec, "meta": meta or {}}
        )

    def trial_records(self) -> "list[dict]":
        return [r for r in self.records if r.get("kind") == "trial"]

    def completed(self) -> "dict[str, dict]":
        """Successful trial payloads by key (last write wins)."""
        return {
            r["key"]: r["payload"]
            for r in self.trial_records()
            if r.get("status") == "ok"
        }

    def failures(self) -> "list[dict]":
        """Failed trial records (exhausted retries), in journal order."""
        return [r for r in self.trial_records() if r.get("status") == "failed"]

    def completed_keys(self) -> "set[str]":
        return set(self.completed())

    def record_success(self, key: str, payload: dict, *, attempts: int, elapsed_s: float) -> None:
        self.append(
            {
                "kind": "trial",
                "key": key,
                "status": "ok",
                "payload": payload,
                "attempts": attempts,
                "elapsed_s": elapsed_s,
            }
        )

    def record_failure(self, key: str, failure: dict, *, attempts: int) -> None:
        self.append(
            {
                "kind": "trial",
                "key": key,
                "status": "failed",
                "failure": failure,
                "attempts": attempts,
            }
        )
