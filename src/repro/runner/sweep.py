"""Crash-tolerant sweep execution: checkpoint, isolate, retry, quarantine.

:class:`SweepRunner` drives a list of :class:`~repro.runner.isolation.TrialSpec`
through the journal/isolation/retry machinery:

1. **Resume** — trial keys already marked ``ok`` in the journal are skipped
   (their payloads are reused), so re-running an interrupted sweep finishes
   only the remainder and aggregates bit-identically to an uninterrupted
   run.
2. **Isolate** — each attempt runs in a subprocess worker with a wall-clock
   timeout (``isolation="inline"`` opts out, for tests and debugging).
3. **Retry** — failed attempts back off exponentially with jitter
   (:class:`~repro.runner.retry.RetryPolicy`) up to the attempt budget.
4. **Quarantine** — a trial that exhausts its budget becomes a structured
   :class:`~repro.runner.failures.TrialFailure` plus a reproducible ``.npz``
   in the ``failed/`` directory; the sweep carries on and aggregates over
   the surviving trials.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.runner.failures import TrialFailure, quarantine_trial
from repro.runner.heartbeat import heartbeat_dir, write_heartbeat
from repro.runner.isolation import TrialOutcome, TrialSpec, run_in_subprocess, run_inline
from repro.runner.journal import RunJournal
from repro.runner.retry import RetryPolicy


@dataclass(frozen=True)
class SweepConfig:
    """Execution knobs of one sweep.

    Parameters
    ----------
    timeout_s:
        Per-attempt wall-clock budget (seconds); ``None`` disables.
    retry:
        Backoff/attempt policy.
    isolation:
        ``"subprocess"`` (default — hang/crash-proof) or ``"inline"``.
    failed_dir:
        Quarantine directory for ``.npz`` reproducers; ``None`` derives
        ``<journal>.failed/`` next to the journal (no quarantine files for
        in-memory journals).
    heartbeat:
        Write per-trial heartbeat files to ``<journal>.hb/`` for
        ``repro obs watch`` (default on; a no-op for in-memory journals).
        Heartbeats are advisory and never affect trial results.
    sleep:
        Injection point for the backoff sleep (tests pass a no-op).
    """

    timeout_s: "float | None" = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    isolation: str = "subprocess"
    failed_dir: "str | Path | None" = None
    heartbeat: bool = True
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.isolation not in ("subprocess", "inline"):
            raise ValueError(
                f"isolation must be 'subprocess' or 'inline', got {self.isolation!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` call.

    ``completed`` maps trial key → payload for every successful trial,
    including ones restored from the journal without re-execution;
    ``executed`` / ``skipped`` record which keys ran now vs. were resumed.
    """

    completed: "dict[str, object]" = field(default_factory=dict)
    failures: "list[TrialFailure]" = field(default_factory=list)
    executed: "set[str]" = field(default_factory=set)
    skipped: "set[str]" = field(default_factory=set)

    @property
    def n_failed(self) -> int:
        return len(self.failures)


class SweepRunner:
    """Executes trial specs against a journal (see module docstring)."""

    def __init__(self, journal: "RunJournal | None" = None, config: "SweepConfig | None" = None) -> None:
        self.journal = journal if journal is not None else RunJournal()
        self.config = config if config is not None else SweepConfig()

    # ------------------------------------------------------------------ #

    def _failed_dir(self) -> "Path | None":
        if self.config.failed_dir is not None:
            return Path(self.config.failed_dir)
        if self.journal.path is not None:
            return self.journal.path.with_name(self.journal.path.name + ".failed")
        return None

    def _heartbeat_dir(self) -> "Path | None":
        if not self.config.heartbeat or self.journal.path is None:
            return None
        return heartbeat_dir(self.journal.path)

    def _attempt(
        self, spec: TrialSpec, attempt: int, hb_dir: "Path | None"
    ) -> TrialOutcome:
        if self.config.isolation == "inline":
            return run_inline(spec)
        heartbeat = (
            (str(hb_dir), spec.key, spec.experiment, attempt)
            if hb_dir is not None
            else None
        )
        return run_in_subprocess(
            spec, timeout_s=self.config.timeout_s, heartbeat=heartbeat
        )

    def run(
        self,
        specs: "list[TrialSpec]",
        *,
        sweep_name: str = "sweep",
        meta: "dict | None" = None,
    ) -> SweepResult:
        """Run every spec not already completed in the journal."""
        keys = [spec.key for spec in specs]
        if len(set(keys)) != len(keys):
            raise ValueError("trial specs have duplicate keys")
        self.journal.write_header(
            sweep_name, [spec.to_json() for spec in specs], meta=meta
        )

        result = SweepResult()
        already_done = self.journal.completed()
        for record in self.journal.failures():
            result.failures.append(TrialFailure.from_record(record["failure"]))
        for spec in specs:
            if spec.key in already_done:
                result.completed[spec.key] = already_done[spec.key]
                result.skipped.add(spec.key)
                continue
            self._run_one(spec, result)
        if obs.active() and result.skipped:
            obs.get_tracer().event(
                "runner.resumed", sweep=sweep_name, trials=len(result.skipped)
            )
            obs.get_metrics().counter(
                "runner_trials_resumed_total",
                "trials restored from the journal without re-execution",
            ).inc(len(result.skipped))
        return result

    def _run_one(self, spec: TrialSpec, result: SweepResult) -> None:
        delays = self.config.retry.delays()
        attempts = 0
        outcome: "TrialOutcome | None" = None
        hb_dir = self._heartbeat_dir()
        started_at = time.time()
        started_at_mono = time.monotonic()
        with obs.profiled(
            "runner.trial", key=spec.key, experiment=spec.experiment
        ) as span:
            for attempt in range(self.config.retry.max_attempts):
                attempts = attempt + 1
                if hb_dir is not None:
                    write_heartbeat(
                        hb_dir,
                        spec.key,
                        phase="starting" if attempt == 0 else "retrying",
                        experiment=spec.experiment,
                        attempt=attempts,
                        started_at=started_at,
                        started_at_mono=started_at_mono,
                    )
                outcome = self._attempt(spec, attempts, hb_dir)
                if outcome.ok:
                    break
                if attempt < len(delays) and delays[attempt] > 0:
                    self.config.sleep(delays[attempt])
            assert outcome is not None  # max_attempts >= 1 guarantees one attempt
            span.set(status="ok" if outcome.ok else "failed", attempts=attempts)

        result.executed.add(spec.key)
        metrics = obs.get_metrics()
        if metrics.enabled:
            metrics.counter(
                "runner_trials_total", "trials executed (by final status)"
            ).labels(status="ok" if outcome.ok else "failed").inc()
            if attempts > 1:
                metrics.counter(
                    "runner_retries_total", "extra attempts beyond the first"
                ).inc(attempts - 1)
        if outcome.ok:
            result.completed[spec.key] = outcome.payload
            self.journal.record_success(
                spec.key,
                outcome.payload,
                attempts=attempts,
                elapsed_s=outcome.elapsed_s,
            )
            if hb_dir is not None:
                write_heartbeat(
                    hb_dir,
                    spec.key,
                    phase="done",
                    experiment=spec.experiment,
                    attempt=attempts,
                    started_at=started_at,
                    started_at_mono=started_at_mono,
                )
            return

        failure = quarantine_trial(
            spec, outcome.error or {}, attempts, self._failed_dir()
        )
        result.failures.append(failure)
        self.journal.record_failure(spec.key, failure.to_record(), attempts=attempts)
        if hb_dir is not None:
            write_heartbeat(
                hb_dir,
                spec.key,
                phase="quarantined",
                experiment=spec.experiment,
                attempt=attempts,
                started_at=started_at,
                started_at_mono=started_at_mono,
            )
        if obs.active():
            obs.get_tracer().event(
                "runner.quarantined", key=spec.key, attempts=attempts
            )
            metrics.counter(
                "runner_quarantined_total", "trials that exhausted the retry budget"
            ).inc()


def specs_from_journal(journal: RunJournal) -> "list[TrialSpec]":
    """Rebuild the sweep's trial specs from its journal header (--resume)."""
    header = journal.header
    if header is None:
        raise ValueError(
            f"journal {journal.path} has no header record — not a sweep journal"
        )
    return [TrialSpec.from_json(item) for item in header["spec"]]
