"""Structured trial failures and the quarantine directory.

A trial that exhausts its retries must leave enough behind to (a) keep the
sweep's books honest and (b) let a human reproduce the failure offline:

* a :class:`TrialFailure` record (exception type, message, traceback,
  seed, demand fingerprint) appended to the run journal, and
* a ``.npz`` file in the sweep's ``failed/`` directory holding the exact
  demand matrix (regenerated from the spec's ``demand_fn``) plus the
  trial's JSON kwargs — ``numpy.load`` it, feed the matrix back to the
  scheduler, and the failure replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.runner.isolation import TrialSpec, resolve_fn


@dataclass(frozen=True)
class TrialFailure:
    """Terminal failure of one trial (all attempts exhausted)."""

    experiment: str
    key: str
    error_type: str
    error_message: str
    traceback: str
    attempts: int
    seed: "int | None" = None
    demand_fingerprint: "str | None" = None
    quarantine_path: "str | None" = None

    def to_record(self) -> dict:
        return asdict(self)

    @classmethod
    def from_record(cls, record: dict) -> "TrialFailure":
        return cls(**{k: record.get(k) for k in cls.__dataclass_fields__})


def demand_fingerprint(demand: np.ndarray) -> str:
    """Stable content hash of a demand matrix (shape + float64 bytes)."""
    arr = np.ascontiguousarray(demand, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()[:16]


def quarantine_trial(
    spec: TrialSpec,
    error: dict,
    attempts: int,
    failed_dir: "Path | None",
) -> TrialFailure:
    """Build the failure record and write the reproducible ``.npz``.

    Regenerating the demand runs the spec's ``demand_fn`` inline and is
    itself guarded: a demand generator broken enough to fail here must not
    take the bookkeeping down with it.
    """
    demand = None
    if spec.demand_fn is not None:
        try:
            demand = np.asarray(resolve_fn(spec.demand_fn)(**spec.kwargs))
        except Exception:  # noqa: BLE001 — quarantine must never abort a sweep
            demand = None

    quarantine_path = None
    if failed_dir is not None:
        failed_dir = Path(failed_dir)
        failed_dir.mkdir(parents=True, exist_ok=True)
        safe_key = spec.key.replace("/", "_").replace(":", "_")
        target = failed_dir / f"{safe_key}.npz"
        arrays = {
            "kwargs_json": np.array(json.dumps(spec.kwargs, sort_keys=True)),
            "error_json": np.array(json.dumps(error, sort_keys=True)),
        }
        if demand is not None:
            arrays["demand"] = demand
        np.savez(target, **arrays)
        quarantine_path = str(target)

    return TrialFailure(
        experiment=spec.experiment,
        key=spec.key,
        error_type=str(error.get("type")),
        error_message=str(error.get("message")),
        traceback=str(error.get("traceback", "")),
        attempts=attempts,
        seed=spec.kwargs.get("seed"),
        demand_fingerprint=demand_fingerprint(demand) if demand is not None else None,
        quarantine_path=quarantine_path,
    )
