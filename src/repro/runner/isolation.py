"""Per-trial isolation: execute one trial in a subprocess with a timeout.

A sweep must survive anything one trial can do to it — an unbounded
scheduler loop (hang), a segfault in a native library (crash), an OOM kill
(SIGKILL) — so the unit of isolation is an OS process.  The trial function
is addressed by an importable ``"module:function"`` path and called with
JSON-serializable keyword arguments, which keeps specs journal-friendly
and works under any multiprocessing start method.

Outcomes are normalized to a :class:`TrialOutcome`:

* ``ok`` — the function returned; ``payload`` holds its return value;
* ``error`` — it raised; ``error`` holds type/message/traceback;
* ``timeout`` — it exceeded the wall-clock budget and was killed;
* ``crashed`` — the worker died without reporting (segfault, SIGKILL).
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field

from repro import obs


@dataclass(frozen=True)
class TrialSpec:
    """One unit of sweep work, fully described by JSON-serializable data.

    Attributes
    ----------
    experiment:
        Human-readable experiment label (grouping key in reports).
    key:
        Unique checkpoint key within the sweep — completed keys are
        skipped on resume.  Conventionally ``"<experiment>:<trial>"``.
    fn:
        ``"module:function"`` path of the trial function.  It is called as
        ``fn(**kwargs)`` and must return a JSON-serializable payload.
    kwargs:
        Keyword arguments (JSON-serializable — they are persisted in the
        journal header so a resume can rebuild the spec).
    demand_fn:
        Optional ``"module:function"`` path that regenerates the trial's
        demand matrix from the same ``kwargs`` — used to quarantine a
        reproducible ``.npz`` when the trial exhausts its retries.
    """

    experiment: str
    key: str
    fn: str
    kwargs: dict = field(default_factory=dict)
    demand_fn: "str | None" = None

    def to_json(self) -> dict:
        return {
            "experiment": self.experiment,
            "key": self.key,
            "fn": self.fn,
            "kwargs": self.kwargs,
            "demand_fn": self.demand_fn,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TrialSpec":
        return cls(
            experiment=payload["experiment"],
            key=payload["key"],
            fn=payload["fn"],
            kwargs=dict(payload.get("kwargs", {})),
            demand_fn=payload.get("demand_fn"),
        )


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one execution attempt of one trial."""

    status: str  # "ok" | "error" | "timeout" | "crashed"
    payload: "object | None" = None
    error: "dict | None" = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def resolve_fn(path: str):
    """Import and return the callable behind a ``"module:function"`` path."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"trial fn path must be 'module:function', got {path!r}")
    module = importlib.import_module(module_name)
    fn = module
    for part in attr.split("."):
        fn = getattr(fn, part)
    if not callable(fn):
        raise TypeError(f"{path!r} resolved to a non-callable {type(fn).__name__}")
    return fn


def error_dict(exc: BaseException) -> dict:
    """Normalize an exception into the journal-friendly error envelope.

    Shared by the one-shot subprocess worker below and the warm
    :class:`~repro.runner.pool.WorkerPool` workers.
    """
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


#: Backwards-compatible alias (pre-pool internal name).
_error_dict = error_dict


def run_inline(spec: TrialSpec) -> TrialOutcome:
    """Execute the trial in-process (no isolation, no timeout)."""
    start = time.perf_counter()
    try:
        payload = resolve_fn(spec.fn)(**spec.kwargs)
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        return TrialOutcome(
            status="error",
            error=_error_dict(exc),
            elapsed_s=time.perf_counter() - start,
        )
    return TrialOutcome(
        status="ok", payload=payload, elapsed_s=time.perf_counter() - start
    )


def obs_blob() -> "dict | None":
    """The worker's observations, to ship back over the result pipe.

    Draining the tracer means repeated calls (a warm pool worker blobbing
    once per task) each ship only the spans closed since the last call.
    """
    if not obs.active():
        return None
    return {
        "spans": obs.get_tracer().drain(),
        "metrics": obs.get_metrics().snapshot(),
    }


#: Backwards-compatible alias (pre-pool internal name).
_obs_blob = obs_blob


def _subprocess_worker(conn, fn_path: str, kwargs: dict, heartbeat=None) -> None:
    """Child-side entry point: run the trial, report through the pipe.

    Under the ``fork`` start method the worker inherits the parent's
    installed observability backends: it clears the inherited records
    first (so nothing is double-reported) and ships its own spans/metrics
    back alongside the result for the parent to absorb.  Under ``spawn``
    the module state is rebuilt with the null backends and the blob is
    simply ``None``.

    ``heartbeat`` is an optional ``(dir, key, experiment, attempt)`` tuple;
    when given, a daemon :class:`~repro.runner.heartbeat.HeartbeatTicker`
    refreshes the trial's heartbeat file while the trial runs, so a
    ``repro obs watch`` on the journal can tell alive from hung.
    """
    obs.reset_for_fork()
    ticker = None
    if heartbeat is not None:
        from repro.runner.heartbeat import HeartbeatTicker

        hb_dir, key, experiment, attempt = heartbeat
        ticker = HeartbeatTicker(
            hb_dir, key, experiment=experiment, attempt=attempt
        ).start()
    try:
        payload = resolve_fn(fn_path)(**kwargs)
        conn.send(("ok", payload, _obs_blob()))
    except Exception as exc:  # noqa: BLE001
        conn.send(("error", _error_dict(exc), _obs_blob()))
    finally:
        if ticker is not None:
            ticker.stop()
        conn.close()


def run_in_subprocess(
    spec: TrialSpec,
    *,
    timeout_s: "float | None" = None,
    start_method: "str | None" = None,
    heartbeat: "tuple | None" = None,
) -> TrialOutcome:
    """Execute the trial in a worker process with a wall-clock budget.

    Parameters
    ----------
    timeout_s:
        Kill the worker and report ``timeout`` after this many seconds;
        ``None`` waits forever.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (cheap on Linux), else the platform default.
    heartbeat:
        Optional ``(dir, key, experiment, attempt)`` tuple; the worker
        keeps the trial's heartbeat file fresh while it runs.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(start_method)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_subprocess_worker,
        args=(child_conn, spec.fn, spec.kwargs, heartbeat),
    )
    start = time.perf_counter()
    process.start()
    child_conn.close()  # the parent only reads

    message = None
    timed_out = False
    try:
        if parent_conn.poll(timeout_s):
            try:
                message = parent_conn.recv()
            except EOFError:
                message = None  # worker died before sending
        else:
            timed_out = True
    finally:
        parent_conn.close()
    elapsed = time.perf_counter() - start

    if timed_out:
        # Timeout: escalate terminate -> kill so even a wedged worker dies.
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
        process.join()
        return TrialOutcome(
            status="timeout",
            error={
                "type": "TrialTimeout",
                "message": f"trial exceeded {timeout_s}s wall-clock budget",
                "traceback": "",
            },
            elapsed_s=elapsed,
        )

    process.join()
    if message is None:
        return TrialOutcome(
            status="crashed",
            error={
                "type": "WorkerDied",
                "message": (
                    "trial worker exited without reporting a result "
                    f"(exitcode {process.exitcode})"
                ),
                "traceback": "",
            },
            elapsed_s=elapsed,
        )
    status, body, *rest = message
    blob = rest[0] if rest else None
    if blob:
        # Graft the worker's spans under whatever span is open here (the
        # runner's trial span) and fold its counters into ours.
        obs.get_tracer().absorb(blob.get("spans") or [])
        obs.get_metrics().merge(blob.get("metrics") or {})
    if status == "ok":
        return TrialOutcome(status="ok", payload=body, elapsed_s=elapsed)
    return TrialOutcome(status="error", error=body, elapsed_s=elapsed)
