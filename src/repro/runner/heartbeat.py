"""Per-trial heartbeat files: the live-progress channel of a sweep.

A resumable sweep is a black box between journal flushes — a trial that
hangs, retries, or crawls produces no observable signal until it finishes
or times out.  Heartbeats fix that: the :class:`~repro.runner.sweep.SweepRunner`
and each subprocess worker write small JSON records into a ``<journal>.hb/``
directory next to the journal, one file per trial key, each replaced
atomically (tmp + ``os.replace``, unique tmp names, so the parent's phase
transitions and the worker's progress ticker never tear each other).
``repro obs watch`` tails the directory together with the journal.

Heartbeat record schema (one JSON object per file):

======================  ======================================================
field                   meaning
======================  ======================================================
``format``              heartbeat envelope version (:data:`HEARTBEAT_FORMAT`)
``key``                 trial key (journal checkpoint key)
``experiment``          experiment label from the spec
``phase``               ``"starting" | "running" | "retrying" | "done" |
                        "failed" | "quarantined"``
``attempt``             1-based attempt currently executing
``retries``             completed attempts that failed (attempt - 1)
``spans_so_far``        closed obs spans in the worker (0 if obs is off)
``pid``                 worker pid (``running`` phase), else the parent's
``started_at``          Unix time the trial's first attempt began (display)
``started_at_mono``     the writer's ``time.monotonic()`` when the first
                        attempt began — age is judged on this, never on the
                        steppable wall clock
``last_progress``       Unix time of the most recent update (display only)
``last_progress_mono``  the writer's ``time.monotonic()`` at the most recent
                        update — *this* is what ``obs watch`` judges
                        staleness on: an NTP step forward must not flag
                        every in-flight trial STALE, and a step backward
                        must not make a wedged trial look fresh
``interval_s``          the writer's declared refresh cadence; ``obs watch``
                        flags a beat idle for more than 3× this as ``STALE``
                        (a crashed worker must not render as running forever)
======================  ======================================================

On Linux ``time.monotonic()`` is ``CLOCK_MONOTONIC`` — a single
boot-relative clock shared by every process on the machine — so a reader's
``time.monotonic()`` minus the writer's recorded ``last_progress_mono`` is
a true idle duration even across processes.  Records written before the
monotonic fields existed fall back to the wall-clock judgement.

Writers may attach extra advisory fields (e.g. a controller worker's
``deadline_miss_rate``); readers ignore what they do not know.

Heartbeats are advisory: they are never read back by the runner itself,
never influence scheduling or results (the kill-and-resume smoke asserts
journals are bit-identical with monitoring on vs. off), and a missing or
torn heartbeat directory degrades ``obs watch`` — never the sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable

from repro import obs
from repro.utils.fileio import atomic_write_json

#: Version of the heartbeat record envelope.
HEARTBEAT_FORMAT: int = 1

#: Seconds between worker-side progress ticks.
TICK_INTERVAL_S: float = 1.0

_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:-"
)


def heartbeat_dir(journal_path: "str | Path") -> Path:
    """The heartbeat directory paired with a journal path."""
    journal_path = Path(journal_path)
    return journal_path.with_name(journal_path.name + ".hb")


def _safe_filename(key: str) -> str:
    """Map an arbitrary trial key onto a unique, filesystem-safe name.

    Keys are conventionally ``"<experiment>:<trial>"`` and already safe;
    any other character is folded to ``_`` with a short digest appended so
    two keys never collide after sanitization.
    """
    cleaned = "".join(ch if ch in _SAFE_CHARS else "_" for ch in key)
    if cleaned == key:
        return f"{key}.json"
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:8]
    return f"{cleaned}-{digest}.json"


def write_heartbeat(
    directory: "str | Path",
    key: str,
    *,
    phase: str,
    experiment: str = "",
    attempt: int = 1,
    started_at: "float | None" = None,
    started_at_mono: "float | None" = None,
    spans_so_far: int = 0,
    interval_s: float = TICK_INTERVAL_S,
    extra: "dict | None" = None,
    wall_clock: Callable[[], float] = time.time,
    mono_clock: Callable[[], float] = time.monotonic,
) -> Path:
    """Atomically (re)write the heartbeat file of one trial key.

    ``interval_s`` declares how often the writer intends to refresh this
    beat — the staleness contract ``obs watch`` judges against.  ``extra``
    merges advisory fields into the record (never overriding the envelope).
    ``wall_clock``/``mono_clock`` are injectable for stepped-clock tests;
    the wall timestamps are display-only — liveness is judged on the
    monotonic fields (see the record schema above).

    Best-effort by design: an unwritable directory (read-only scratch,
    deleted mid-sweep) must never fail the trial, so ``OSError`` is
    swallowed and the sweep carries on without monitoring.
    """
    directory = Path(directory)
    now = wall_clock()
    now_mono = mono_clock()
    record = dict(extra) if extra else {}
    record.update(
        {
            "format": HEARTBEAT_FORMAT,
            "key": key,
            "experiment": experiment,
            "phase": phase,
            "attempt": attempt,
            "retries": max(0, attempt - 1),
            "spans_so_far": spans_so_far,
            "pid": os.getpid(),
            "started_at": started_at if started_at is not None else now,
            "started_at_mono": (
                started_at_mono if started_at_mono is not None else now_mono
            ),
            "last_progress": now,
            "last_progress_mono": now_mono,
            "interval_s": float(interval_s),
        }
    )
    path = directory / _safe_filename(key)
    try:
        atomic_write_json(record, path, indent=None)
    except OSError:
        pass
    return path


def read_heartbeats(directory: "str | Path") -> "dict[str, dict]":
    """Read every heartbeat record in a directory, keyed by trial key.

    Torn or foreign files are skipped (the atomic writer should prevent
    tears, but ``obs watch`` must survive anything it finds on disk).
    """
    directory = Path(directory)
    records: "dict[str, dict]" = {}
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "key" in record:
            records[record["key"]] = record
    return records


def _spans_so_far() -> int:
    tracer = obs.get_tracer()
    if not tracer.enabled:
        return 0
    return len(tracer.records())


class HeartbeatTicker:
    """Daemon thread refreshing one trial's heartbeat from inside a worker.

    Started by the subprocess worker after :func:`repro.obs.reset_for_fork`;
    every :data:`TICK_INTERVAL_S` it rewrites the heartbeat with the current
    closed-span count and ``last_progress`` timestamp, which is what lets
    ``obs watch`` tell a slow-but-alive trial from a hung one.  The thread
    is a daemon, so a worker that is SIGKILLed never leaks it.
    """

    def __init__(
        self,
        directory: "str | Path",
        key: str,
        *,
        experiment: str = "",
        attempt: int = 1,
        interval_s: float = TICK_INTERVAL_S,
        status_fn: "Callable[[], dict] | None" = None,
    ) -> None:
        self._directory = Path(directory)
        self._key = key
        self._experiment = experiment
        self._attempt = attempt
        self._interval_s = interval_s
        self._status_fn = status_fn
        self._started_at = time.time()
        self._started_at_mono = time.monotonic()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def _beat(self) -> None:
        extra = None
        if self._status_fn is not None:
            # Advisory extras (e.g. a live deadline_miss_rate); a broken
            # status callback must never kill the heartbeat thread.
            try:
                extra = self._status_fn()
            except Exception:
                extra = None
        write_heartbeat(
            self._directory,
            self._key,
            phase="running",
            experiment=self._experiment,
            attempt=self._attempt,
            started_at=self._started_at,
            started_at_mono=self._started_at_mono,
            spans_so_far=_spans_so_far(),
            interval_s=self._interval_s,
            extra=extra,
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self._beat()

    def start(self) -> "HeartbeatTicker":
        self._beat()  # an immediate first beat marks the attempt as running
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat:{self._key}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
