"""Bounded retry with exponential backoff and deterministic jitter.

A transient trial failure (a flaky allocation, an OS hiccup, a worker that
lost a race) deserves another attempt; a deterministic one does not deserve
an unbounded loop.  :class:`RetryPolicy` bounds both: at most
``max_attempts`` tries, sleeping ``base_delay · 2^k`` (capped at
``max_delay``) between them, with multiplicative jitter drawn from a
*seeded* generator so reruns of the same sweep back off identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a trial, and how long to wait between tries.

    Parameters
    ----------
    max_attempts:
        Total attempts per trial (1 = no retry).
    base_delay:
        First backoff sleep, seconds; attempt k sleeps ``base · 2^(k-1)``.
    max_delay:
        Backoff ceiling, seconds.
    jitter:
        Relative jitter amplitude: each sleep is scaled by a factor drawn
        uniformly from ``[1, 1 + jitter]``.  0 disables jitter.
    seed:
        Seed for the jitter stream (deterministic across reruns).
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        check_nonnegative("base_delay", self.base_delay)
        check_nonnegative("max_delay", self.max_delay)
        check_nonnegative("jitter", self.jitter)

    def delays(self) -> "list[float]":
        """Backoff sleeps (seconds) between the attempts, jitter applied.

        The list has ``max_attempts - 1`` entries: no sleep precedes the
        first attempt or follows the last.
        """
        rng = np.random.default_rng(self.seed)
        delays = []
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * (2.0**attempt), self.max_delay)
            if self.jitter > 0:
                delay *= 1.0 + self.jitter * float(rng.random())
            delays.append(delay)
        return delays
