"""Workload protocol and the demand-specification container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.switch.params import SwitchParams
from repro.utils.validation import check_demand_matrix

#: Reconfiguration delays at or below this (ms) count as "fast OCS" when
#: picking the paper's volume scale.
_FAST_DELTA_CUTOFF: float = 1.0


def volume_scale_for(params: SwitchParams) -> float:
    """The paper's volume scale for this OCS class (1× fast, 100× slow).

    §3.2/§3.3 use demands 100× larger with the slow OCS so that serving a
    flow stays comparable to the 1000× larger reconfiguration penalty.
    """
    return 1.0 if params.reconfig_delay <= _FAST_DELTA_CUTOFF else 100.0


@dataclass(frozen=True)
class DemandSpec:
    """A generated demand plus the provenance experiments need.

    Attributes
    ----------
    demand:
        The n×n demand matrix ``D`` (Mb).
    skewed_mask:
        Boolean n×n mask of entries belonging to the one-to-many /
        many-to-one coflows — the subset whose coflow completion the
        figures report as "o2m" / "m2o".
    o2m_mask, m2o_mask:
        The skewed mask split by direction.
    o2m_senders, m2o_receivers:
        The ports hosting the skewed coflows.
    """

    demand: np.ndarray
    skewed_mask: np.ndarray
    o2m_mask: np.ndarray
    m2o_mask: np.ndarray
    o2m_senders: "tuple[int, ...]" = field(default=())
    m2o_receivers: "tuple[int, ...]" = field(default=())

    def __post_init__(self) -> None:
        demand = check_demand_matrix(self.demand)
        demand.setflags(write=False)
        object.__setattr__(self, "demand", demand)
        for name in ("skewed_mask", "o2m_mask", "m2o_mask"):
            mask = np.asarray(getattr(self, name), dtype=bool)
            if mask.shape != demand.shape:
                raise ValueError(f"{name} shape {mask.shape} != demand shape {demand.shape}")
            mask.setflags(write=False)
            object.__setattr__(self, name, mask)

    @property
    def n_ports(self) -> int:
        return self.demand.shape[0]

    @property
    def total_volume(self) -> float:
        return float(self.demand.sum())

    @property
    def skewed_volume(self) -> float:
        """Volume (Mb) of the skewed o2m/m2o coflows."""
        return float(self.demand[self.skewed_mask].sum())

    @property
    def background_mask(self) -> np.ndarray:
        """Entries that are background (non-skewed) demand."""
        return (self.demand > 0) & ~self.skewed_mask


def empty_spec(n_ports: int) -> DemandSpec:
    """An all-zero demand spec (useful as a combination identity)."""
    zeros = np.zeros((n_ports, n_ports))
    mask = np.zeros((n_ports, n_ports), dtype=bool)
    return DemandSpec(
        demand=zeros, skewed_mask=mask, o2m_mask=mask.copy(), m2o_mask=mask.copy()
    )


def merge_specs(first: DemandSpec, second: DemandSpec) -> DemandSpec:
    """Sum two demand specs entry-wise, unioning masks and provenance."""
    if first.n_ports != second.n_ports:
        raise ValueError(
            f"cannot merge specs with {first.n_ports} and {second.n_ports} ports"
        )
    return DemandSpec(
        demand=first.demand + second.demand,
        skewed_mask=first.skewed_mask | second.skewed_mask,
        o2m_mask=first.o2m_mask | second.o2m_mask,
        m2o_mask=first.m2o_mask | second.m2o_mask,
        o2m_senders=tuple(first.o2m_senders) + tuple(second.o2m_senders),
        m2o_receivers=tuple(first.m2o_receivers) + tuple(second.m2o_receivers),
    )


@runtime_checkable
class Workload(Protocol):
    """Anything that can generate demand matrices for a given radix."""

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Draw one random demand for an ``n_ports``-radix switch."""
        ...
