"""Combined demand: typical background + skewed coflows (§3.3 / §3.4).

The paper's main experiments superpose the §3.3 background demand and the
§3.2 one-to-many/many-to-one demand; §3.4 swaps in the intensive (4×
density) background.  This module composes the two generators and keeps the
skewed-entry provenance, so the figures can report the o2m/m2o coflow
completion separately.

Background flows avoid the skewed senders' rows and receivers' columns.
Two paper diagnostics pin this down: §3.3 reports that the reduction
removes ≈ 1.63·n non-zero entries — essentially the whole skewed fan-out
(≈ 0.85·n per direction), which requires background/skew cell collisions
to be rare (a colliding mouse pushes the merged cell above ``Bt``,
dropping it from the filter); and every reported o2m/m2o completion
improves, whereas collisions produce uncaptured stragglers that regress
the coflow completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.switch.params import SwitchParams
from repro.workloads.background import TypicalBackgroundWorkload
from repro.workloads.base import DemandSpec, merge_specs, volume_scale_for
from repro.workloads.skewed import SkewedWorkload


@dataclass(frozen=True)
class CombinedWorkload:
    """Background + skewed demand, generated from one RNG stream."""

    background: TypicalBackgroundWorkload = field(default_factory=TypicalBackgroundWorkload)
    skewed: SkewedWorkload = field(default_factory=SkewedWorkload)

    @classmethod
    def typical(cls, params: SwitchParams, **skew_kwargs) -> "CombinedWorkload":
        """§3.3: typical background + one o2m sender and one m2o receiver."""
        scale = volume_scale_for(params)
        return cls(
            background=TypicalBackgroundWorkload(volume_scale=scale),
            skewed=SkewedWorkload(volume_scale=scale, **skew_kwargs),
        )

    @classmethod
    def intensive(
        cls, params: SwitchParams, factor: int = 4, **skew_kwargs
    ) -> "CombinedWorkload":
        """§3.4: 4×-density background + one o2m sender and one m2o receiver."""
        scale = volume_scale_for(params)
        return cls(
            background=TypicalBackgroundWorkload(volume_scale=scale).intensive(factor),
            skewed=SkewedWorkload(volume_scale=scale, **skew_kwargs),
        )

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Draw background and skewed components and superpose them."""
        skewed_spec = self.skewed.generate(n_ports, rng)
        background_spec = self.background.generate_excluding(
            n_ports,
            rng,
            excluded_senders=skewed_spec.o2m_senders,
            excluded_destinations=skewed_spec.m2o_receivers,
        )
        return merge_specs(background_spec, skewed_spec)
