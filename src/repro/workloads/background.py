"""Typical DCN background demand model (§3.3) and its intensive variant (§3.4).

"Our typical background demand modeling is based on the DCN measurements
presented in [Benson et al. 2010], and is constructed similarly to the
demand used in Eclipse and Solstice.  Some of the input ports have four big
flows (a.k.a. elephant flows, 30 Mb and 3 Gb for Fast OCS and Slow OCS,
respectively) and 12 small flows (a.k.a. mice flows, 3 Mb and 300 Mb ...),
where the big flows carry 70% of the demand.  The destination of the flows
is chosen randomly and uniformly."

With the literal sizes (4×30 Mb + 12×3 Mb) elephants carry 77% of bytes;
the paper's "70%" is the approximate figure from the underlying
measurements.  We keep the literal sizes (they are what Solstice's own
evaluation uses) and expose them as parameters.

Two readings pin down "some of the input ports":

* §3.4 increases demand-matrix **density** (non-zero entries) "by a factor
  of four" for the intensive variant — which maps cleanly onto "typical =
  a quarter of the ports active, intensive = all ports active";
* §3.3 reports that the cp-Switch reduction removes ≈ 1.63·n non-zero
  entries, i.e. essentially the *entire* skewed fan-out (≈ 0.85·n per
  direction) survives the ``Bt`` filter.  That requires collisions between
  background flows (mice are 3 Mb > ``Bt`` = 2 Mb) and skewed entries to be
  rare, which again points at sparse background port activity.

Hence ``active_port_fraction`` defaults to 0.25 and
:meth:`TypicalBackgroundWorkload.intensive` first scales the active-port
fraction (up to 1.0), then the per-port flow counts for any factor beyond
that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.switch.params import SwitchParams
from repro.workloads.base import DemandSpec, volume_scale_for


@dataclass(frozen=True)
class TypicalBackgroundWorkload:
    """Elephants-and-mice background traffic generator.

    Parameters
    ----------
    n_elephants, n_mice:
        Flows per active input port (paper: 4 and 12; intensive: 16/48).
    elephant_volume, mouse_volume:
        Flow sizes in Mb before scaling (paper: 30 and 3).
    active_port_fraction:
        Fraction of input ports that carry background flows ("some of the
        input ports", see the module docstring for how 0.25 is pinned
        down).
    volume_scale:
        1.0 fast OCS / 100.0 slow OCS.
    """

    n_elephants: int = 4
    n_mice: int = 12
    elephant_volume: float = 30.0
    mouse_volume: float = 3.0
    active_port_fraction: float = 0.25
    volume_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_elephants < 0 or self.n_mice < 0:
            raise ValueError("flow counts must be non-negative")
        if self.elephant_volume <= 0 or self.mouse_volume <= 0:
            raise ValueError("flow volumes must be positive")
        if not (0.0 <= self.active_port_fraction <= 1.0):
            raise ValueError(
                f"active_port_fraction must be in [0, 1], got {self.active_port_fraction}"
            )
        if self.volume_scale <= 0:
            raise ValueError(f"volume_scale must be positive, got {self.volume_scale}")

    @classmethod
    def for_params(cls, params: SwitchParams, **kwargs) -> "TypicalBackgroundWorkload":
        """Paper configuration for this switch's OCS class."""
        return cls(volume_scale=volume_scale_for(params), **kwargs)

    def intensive(self, factor: int = 4) -> "TypicalBackgroundWorkload":
        """§3.4 variant: demand-matrix density increased by ``factor``.

        Density grows by activating more ports first; any factor beyond
        full port activation multiplies the per-port flow counts instead.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        target = self.active_port_fraction * factor
        fraction = min(1.0, target)
        flow_factor = max(1, int(round(target / fraction))) if fraction > 0 else 1
        return replace(
            self,
            active_port_fraction=fraction,
            n_elephants=self.n_elephants * flow_factor,
            n_mice=self.n_mice * flow_factor,
        )

    # ------------------------------------------------------------------ #

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Draw one background demand matrix.

        Flows from the same sender to the same (uniformly drawn)
        destination merge into one entry, so the per-row non-zero count is
        ``min(drawn flows, n)`` — density saturates at small radix.
        """
        return self.generate_excluding(n_ports, rng)

    def generate_excluding(
        self,
        n_ports: int,
        rng: np.random.Generator,
        excluded_senders: "tuple[int, ...]" = (),
        excluded_destinations: "tuple[int, ...]" = (),
    ) -> DemandSpec:
        """Background demand avoiding the given ports.

        §3.5 generates skewed demand "such that [it is] chosen to be served
        by the composite paths"; keeping background flows off the skewed
        senders' rows and receivers' columns is what guarantees that — a
        3 Mb mouse colliding with a ~1.15 Mb skewed entry would push the
        cell above ``Bt`` and shrink the fan-out count below ``Rt``.
        """
        n = int(n_ports)
        demand = np.zeros((n, n), dtype=np.float64)
        zero_mask = np.zeros((n, n), dtype=bool)
        eligible_senders = np.setdiff1d(np.arange(n), np.asarray(excluded_senders, dtype=int))
        n_active = min(int(round(self.active_port_fraction * n)), eligible_senders.size)
        if n_active == 0 or (self.n_elephants + self.n_mice) == 0:
            return DemandSpec(
                demand=demand,
                skewed_mask=zero_mask,
                o2m_mask=zero_mask.copy(),
                m2o_mask=zero_mask.copy(),
            )
        active = rng.choice(eligible_senders, size=n_active, replace=False)
        sizes = np.concatenate(
            [
                np.full(self.n_elephants, self.elephant_volume * self.volume_scale),
                np.full(self.n_mice, self.mouse_volume * self.volume_scale),
            ]
        )
        blocked = np.asarray(excluded_destinations, dtype=int)
        for sender in active.tolist():
            peers = np.setdiff1d(np.arange(n), np.append(blocked, sender))
            destinations = rng.choice(peers, size=sizes.size, replace=True)
            np.add.at(demand[sender], destinations, sizes)
        return DemandSpec(
            demand=demand,
            skewed_mask=zero_mask,
            o2m_mask=zero_mask.copy(),
            m2o_mask=zero_mask.copy(),
        )
