"""The paper's demand models (§3.2–§3.5).

All generators produce a :class:`~repro.workloads.base.DemandSpec`: the
demand matrix plus the mask of entries that belong to the skewed
one-to-many / many-to-one coflows, so experiments can report coflow
completion for the skewed subset exactly as the paper's figures do.

Volume scaling: the paper uses 100× larger volumes with the slow OCS
(skewed entries U[1, 1.3] Mb → U[100, 130] Mb; elephants 30 Mb → 3 Gb;
mice 3 Mb → 300 Mb), captured by a single ``volume_scale`` parameter
(1.0 = fast OCS, 100.0 = slow OCS).
"""

from repro.workloads.arrivals import arrival_stream, burst_on
from repro.workloads.background import TypicalBackgroundWorkload
from repro.workloads.base import DemandSpec, Workload, volume_scale_for
from repro.workloads.coflows import BurstyCoflowWorkload
from repro.workloads.combined import CombinedWorkload
from repro.workloads.skewed import SkewedWorkload
from repro.workloads.varying import VaryingSkewWorkload

__all__ = [
    "BurstyCoflowWorkload",
    "CombinedWorkload",
    "DemandSpec",
    "SkewedWorkload",
    "TypicalBackgroundWorkload",
    "VaryingSkewWorkload",
    "Workload",
    "arrival_stream",
    "burst_on",
    "volume_scale_for",
]
