"""First-class coflow abstraction (§1).

The paper frames datacenter traffic "using the coflow abstraction, as a
collection of flows with a shared completion time" and classifies coflows
into four types:

(a) **many-to-many** — data-parallel stages, dataflow pipelines;
(b) **one-to-one**   — bulk transfers between distributed-FS nodes;
(c) **one-to-many**  — replication, distributed storage, query fan-out;
(d) **many-to-one**  — aggregation (MapReduce, Partition-Aggregate).

(c) and (d) are the delay-sensitive patterns composite paths exist for.

This module provides:

* :class:`Flow` / :class:`Coflow` — value objects with constructors per
  type;
* :class:`CoflowSet` — a collection that renders to a demand matrix,
  tracks per-coflow entry masks, and evaluates per-coflow completion times
  from a :class:`~repro.sim.metrics.SimulationResult`;
* :class:`CoflowMixWorkload` — a :class:`~repro.workloads.base.Workload`
  drawing random mixes of the four types, so experiments can be phrased in
  the paper's own taxonomy.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.sim.metrics import SimulationResult
from repro.utils.rng import ensure_rng
from repro.workloads.arrivals import burst_on
from repro.workloads.base import DemandSpec


class CoflowType(enum.Enum):
    """The paper's four coflow classes (§1)."""

    MANY_TO_MANY = "many-to-many"
    ONE_TO_ONE = "one-to-one"
    ONE_TO_MANY = "one-to-many"
    MANY_TO_ONE = "many-to-one"


@dataclass(frozen=True)
class Flow:
    """One point-to-point transfer inside a coflow."""

    source: int
    destination: int
    volume: float  # Mb

    def __post_init__(self) -> None:
        if self.source < 0 or self.destination < 0:
            raise ValueError("ports must be non-negative")
        if self.source == self.destination:
            raise ValueError(f"flow from port {self.source} to itself")
        if self.volume <= 0:
            raise ValueError(f"flow volume must be positive, got {self.volume}")


_coflow_ids = itertools.count()


@dataclass(frozen=True)
class Coflow:
    """A set of flows that completes when its last flow completes."""

    flows: "tuple[Flow, ...]"
    kind: CoflowType
    name: str = ""
    coflow_id: int = field(default_factory=lambda: next(_coflow_ids))

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("a coflow needs at least one flow")
        object.__setattr__(self, "flows", tuple(self.flows))
        if not self.name:
            object.__setattr__(self, "name", f"{self.kind.value}-{self.coflow_id}")

    # ------------------------------------------------------------------ #
    # constructors per paper type
    # ------------------------------------------------------------------ #

    @classmethod
    def one_to_one(cls, source: int, destination: int, volume: float, **kw) -> "Coflow":
        """(b): one big point-to-point transfer."""
        return cls(flows=(Flow(source, destination, volume),), kind=CoflowType.ONE_TO_ONE, **kw)

    @classmethod
    def one_to_many(
        cls, source: int, destinations: "list[int]", volumes: "list[float] | float", **kw
    ) -> "Coflow":
        """(c): one sender fanning out, e.g. replication."""
        volumes = _broadcast(volumes, len(destinations))
        flows = tuple(
            Flow(source, dst, vol) for dst, vol in zip(destinations, volumes)
        )
        return cls(flows=flows, kind=CoflowType.ONE_TO_MANY, **kw)

    @classmethod
    def many_to_one(
        cls, sources: "list[int]", destination: int, volumes: "list[float] | float", **kw
    ) -> "Coflow":
        """(d): aggregation into one receiver, e.g. a reduce task."""
        volumes = _broadcast(volumes, len(sources))
        flows = tuple(Flow(src, destination, vol) for src, vol in zip(sources, volumes))
        return cls(flows=flows, kind=CoflowType.MANY_TO_ONE, **kw)

    @classmethod
    def many_to_many(
        cls,
        sources: "list[int]",
        destinations: "list[int]",
        volume_per_flow: float,
        **kw,
    ) -> "Coflow":
        """(a): all-to-all between two port sets, e.g. a shuffle."""
        flows = tuple(
            Flow(src, dst, volume_per_flow)
            for src in sources
            for dst in destinations
            if src != dst
        )
        return cls(flows=flows, kind=CoflowType.MANY_TO_MANY, **kw)

    # ------------------------------------------------------------------ #

    @property
    def volume(self) -> float:
        """Total coflow volume (Mb)."""
        return float(sum(flow.volume for flow in self.flows))

    @property
    def ports(self) -> "set[int]":
        """All ports this coflow touches."""
        return {f.source for f in self.flows} | {f.destination for f in self.flows}

    def entry_mask(self, n_ports: int) -> np.ndarray:
        """Boolean n×n mask of the demand entries this coflow occupies."""
        mask = np.zeros((n_ports, n_ports), dtype=bool)
        for flow in self.flows:
            mask[flow.source, flow.destination] = True
        return mask

    def is_skewed(self) -> bool:
        """Whether this is a (c)/(d) coflow — composite-path territory."""
        return self.kind in (CoflowType.ONE_TO_MANY, CoflowType.MANY_TO_ONE)


def _broadcast(volumes, count: int) -> "list[float]":
    if np.isscalar(volumes):
        return [float(volumes)] * count
    volumes = list(volumes)
    if len(volumes) != count:
        raise ValueError(f"{len(volumes)} volumes for {count} endpoints")
    return [float(v) for v in volumes]


class CoflowSet:
    """A collection of coflows over one switch, with metric plumbing.

    Notes
    -----
    Flows of different coflows may share a (source, destination) cell; the
    demand matrix sums them, and a shared cell's finish time then counts
    towards every owning coflow (the cell drains once).
    """

    def __init__(self, n_ports: int, coflows: "list[Coflow] | None" = None) -> None:
        if n_ports < 2:
            raise ValueError(f"n_ports must be >= 2, got {n_ports}")
        self._n = int(n_ports)
        self._coflows: list[Coflow] = []
        for coflow in coflows or []:
            self.add(coflow)

    @property
    def n_ports(self) -> int:
        return self._n

    @property
    def coflows(self) -> "tuple[Coflow, ...]":
        return tuple(self._coflows)

    def add(self, coflow: Coflow) -> None:
        """Add a coflow (validating its ports fit this switch)."""
        if any(port >= self._n for port in coflow.ports):
            raise ValueError(
                f"coflow {coflow.name} uses ports beyond radix {self._n}"
            )
        self._coflows.append(coflow)

    def __len__(self) -> int:
        return len(self._coflows)

    def __iter__(self):
        return iter(self._coflows)

    # ------------------------------------------------------------------ #

    def demand(self) -> np.ndarray:
        """The summed n×n demand matrix (Mb)."""
        demand = np.zeros((self._n, self._n))
        for coflow in self._coflows:
            for flow in coflow.flows:
                demand[flow.source, flow.destination] += flow.volume
        return demand

    def to_spec(self) -> DemandSpec:
        """Render as a :class:`DemandSpec` with skew masks from (c)/(d)."""
        o2m = np.zeros((self._n, self._n), dtype=bool)
        m2o = np.zeros((self._n, self._n), dtype=bool)
        o2m_senders: list[int] = []
        m2o_receivers: list[int] = []
        for coflow in self._coflows:
            if coflow.kind is CoflowType.ONE_TO_MANY:
                o2m |= coflow.entry_mask(self._n)
                o2m_senders.extend({f.source for f in coflow.flows})
            elif coflow.kind is CoflowType.MANY_TO_ONE:
                m2o |= coflow.entry_mask(self._n)
                m2o_receivers.extend({f.destination for f in coflow.flows})
        return DemandSpec(
            demand=self.demand(),
            skewed_mask=o2m | m2o,
            o2m_mask=o2m,
            m2o_mask=m2o,
            o2m_senders=tuple(o2m_senders),
            m2o_receivers=tuple(m2o_receivers),
        )

    def completion_times(self, result: SimulationResult) -> "dict[str, float]":
        """Per-coflow completion time (ms) from a simulation result."""
        return {
            coflow.name: result.coflow_completion(coflow.entry_mask(self._n))
            for coflow in self._coflows
        }

    def average_completion(self, result: SimulationResult) -> float:
        """Mean coflow completion time — the metric coflow schedulers chase."""
        times = self.completion_times(result)
        return float(np.mean(list(times.values()))) if times else 0.0


@dataclass(frozen=True)
class CoflowMixWorkload:
    """Random mixes of the paper's four coflow types (§1 taxonomy).

    Parameters
    ----------
    n_many_to_many, n_one_to_one, n_one_to_many, n_many_to_one:
        Coflows of each type per draw.
    skewed_fanout_range:
        Fan-out fraction range for (c)/(d) coflows, as in §3.2.
    small_volume, big_volume:
        Mb per flow for thin flows ((a), (c), (d)) and fat flows ((b)).
    """

    n_many_to_many: int = 1
    n_one_to_one: int = 2
    n_one_to_many: int = 1
    n_many_to_one: int = 1
    skewed_fanout_range: "tuple[float, float]" = (0.7, 1.0)
    small_volume: float = 1.15
    big_volume: float = 100.0

    def build(self, n_ports: int, rng=None) -> CoflowSet:
        """Draw one random coflow set."""
        rng = ensure_rng(rng)
        n = int(n_ports)
        coflow_set = CoflowSet(n)
        ports = np.arange(n)

        for _ in range(self.n_many_to_many):
            group = rng.choice(ports, size=max(2, n // 8), replace=False)
            coflow_set.add(
                Coflow.many_to_many(
                    sources=group.tolist(),
                    destinations=group.tolist(),
                    volume_per_flow=self.small_volume,
                )
            )
        for _ in range(self.n_one_to_one):
            src, dst = rng.choice(ports, size=2, replace=False)
            coflow_set.add(Coflow.one_to_one(int(src), int(dst), self.big_volume))
        for _ in range(self.n_one_to_many):
            src = int(rng.choice(ports))
            fanout = self._fanout(n, rng)
            dests = rng.choice(np.delete(ports, src), size=fanout, replace=False)
            coflow_set.add(
                Coflow.one_to_many(src, dests.tolist(), self.small_volume)
            )
        for _ in range(self.n_many_to_one):
            dst = int(rng.choice(ports))
            fanin = self._fanout(n, rng)
            sources = rng.choice(np.delete(ports, dst), size=fanin, replace=False)
            coflow_set.add(
                Coflow.many_to_one(sources.tolist(), dst, self.small_volume)
            )
        return coflow_set

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Workload-protocol adapter: a random coflow mix as a DemandSpec."""
        return self.build(n_ports, rng).to_spec()

    def _fanout(self, n: int, rng) -> int:
        lo = max(1, int(np.ceil(self.skewed_fanout_range[0] * n)))
        hi = max(lo, min(n - 1, int(self.skewed_fanout_range[1] * n)))
        return int(rng.integers(lo, hi + 1))


@dataclass(frozen=True)
class BurstyCoflowWorkload:
    """Flowlet bursts *within* coflows (ROADMAP 5(b)).

    Wraps a :class:`CoflowMixWorkload` and modulates each flow with its own
    periodic ON/OFF gate (:func:`~repro.workloads.arrivals.burst_on`): flow
    ``f`` with random phase ``p`` is active at epoch ``e`` iff
    ``burst_on(e + p, period, on_epochs)``.  Active flows carry
    ``period / on_epochs`` times their base volume, so the *time-averaged*
    offered load matches the base workload while any single epoch sees a
    bursty subset — the flowlet pattern that stresses mid-epoch
    rescheduling and fast reroute.

    Coflows whose every flow is OFF in a given epoch are dropped from that
    epoch's set entirely (they contribute no demand and no completion-time
    entry).
    """

    base: CoflowMixWorkload = field(default_factory=CoflowMixWorkload)
    period: int = 4
    on_epochs: int = 2

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not (1 <= self.on_epochs <= self.period):
            raise ValueError(
                f"on_epochs must be in [1, period={self.period}], got {self.on_epochs}"
            )

    def build(self, n_ports: int, rng=None, epoch: int = 0) -> CoflowSet:
        """Draw one coflow set as seen at ``epoch``.

        The base mix and all flow phases are drawn from ``rng`` in a fixed
        order, so two calls with identically-seeded generators and
        different ``epoch`` values see the *same* coflows and phases with
        only the gate shifted — exactly how an epoch controller replays a
        bursty tenant over time.
        """
        rng = ensure_rng(rng)
        base_set = self.base.build(n_ports, rng)
        scale = self.period / self.on_epochs
        bursty = CoflowSet(n_ports)
        for coflow in base_set:
            phases = rng.integers(0, self.period, size=len(coflow.flows))
            active = tuple(
                Flow(flow.source, flow.destination, flow.volume * scale)
                for flow, phase in zip(coflow.flows, phases)
                if burst_on(epoch + int(phase), self.period, self.on_epochs)
            )
            if active:
                bursty.add(Coflow(flows=active, kind=coflow.kind, name=coflow.name))
        return bursty

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Workload-protocol adapter (epoch 0's snapshot of the bursts)."""
        return self.build(n_ports, rng).to_spec()
