"""§3.5 demand: typical background + a varying number of skewed ports.

"We increase the number of senders and receivers with one-to-many and
many-to-one demand from one to six ... These demands are generated such
that they are chosen to be served by the composite paths, according to the
filtering parameters employed by Algorithm 1."

The §3.2 skewed model already satisfies the paper's filter at its default
settings — per-entry volumes (≤ 1.3 Mb scaled) sit below ``Bt`` and
fan-outs (≥ 0.7·n) reach ``Rt`` — so this workload is the combined model
with ``n_senders = n_receivers = k``.  A post-generation check (enabled by
default) verifies the filter actually captures every skewed coflow, so the
"overload the composite paths" premise of Figure 11 holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.reduction import cp_switch_demand_reduction
from repro.switch.params import SwitchParams
from repro.workloads.background import TypicalBackgroundWorkload
from repro.workloads.base import DemandSpec, merge_specs, volume_scale_for
from repro.workloads.skewed import SkewedWorkload


@dataclass(frozen=True)
class VaryingSkewWorkload:
    """Typical background + k one-to-many senders and k many-to-one receivers.

    Parameters
    ----------
    n_skewed_ports:
        k — skewed senders and receivers (the Figure 11 x-axis, 1..6).
    background, skewed_template:
        Component generators; ``skewed_template``'s sender/receiver counts
        are overridden by ``n_skewed_ports``.
    """

    n_skewed_ports: int = 1
    background: TypicalBackgroundWorkload = field(default_factory=TypicalBackgroundWorkload)
    skewed_template: SkewedWorkload = field(default_factory=SkewedWorkload)

    def __post_init__(self) -> None:
        if self.n_skewed_ports < 1:
            raise ValueError(f"n_skewed_ports must be >= 1, got {self.n_skewed_ports}")

    @classmethod
    def for_params(cls, params: SwitchParams, n_skewed_ports: int) -> "VaryingSkewWorkload":
        scale = volume_scale_for(params)
        return cls(
            n_skewed_ports=n_skewed_ports,
            background=TypicalBackgroundWorkload(volume_scale=scale),
            skewed_template=SkewedWorkload(volume_scale=scale),
        )

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        skewed = replace(
            self.skewed_template,
            n_senders=self.n_skewed_ports,
            n_receivers=self.n_skewed_ports,
        )
        skewed_spec = skewed.generate(n_ports, rng)
        # Keep background flows off the skewed rows/columns so the filter
        # is guaranteed to capture every skewed coflow ("generated such
        # that they are chosen to be served by the composite paths", §3.5).
        background_spec = self.background.generate_excluding(
            n_ports,
            rng,
            excluded_senders=skewed_spec.o2m_senders,
            excluded_destinations=skewed_spec.m2o_receivers,
        )
        return merge_specs(background_spec, skewed_spec)

    # ------------------------------------------------------------------ #

    @staticmethod
    def filter_captures_skew(
        spec: DemandSpec,
        fanout_threshold: int,
        volume_threshold: float,
    ) -> bool:
        """Whether Algorithm 1 routes every skewed entry to a composite path.

        Used by tests to verify Figure 11's premise: the generated skewed
        demand is "chosen to be served by the composite paths".
        """
        reduction = cp_switch_demand_reduction(
            spec.demand, fanout_threshold, volume_threshold
        )
        composite = reduction.filtered > 0
        return bool(np.all(composite[spec.skewed_mask]))
