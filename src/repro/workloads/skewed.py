"""One-to-many / many-to-one demand model (§3.2).

"We randomly choose a single sender for which we create one-to-many traffic
and a single receiver for which we create many-to-one traffic. ... The
number of destinations for the sender and the number of sources for the
receiver are chosen randomly and uniformly in the range of [0.7·n, n].  The
demand towards each destination of the sender and each source of the
receiver is chosen randomly and uniformly in the range of [1, 1.3] Mb for
Fast OCS and [100, 130] Mb for Slow OCS."

Based on the DCN measurements behind DCTCP and TCP Outcast (incast /
outcast patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.switch.params import SwitchParams
from repro.workloads.base import DemandSpec, volume_scale_for


@dataclass(frozen=True)
class SkewedWorkload:
    """Generator of pure one-to-many + many-to-one demand.

    Parameters
    ----------
    n_senders, n_receivers:
        Number of one-to-many senders / many-to-one receivers (1 each in
        §3.2; §3.5 sweeps them together from 1 to 6).
    fanout_range:
        Fan-out as a fraction of the radix, drawn uniformly per coflow
        (paper: [0.7, 1.0]).
    volume_range:
        Per-entry demand range in Mb **before** scaling (paper:
        [1.0, 1.3]).
    volume_scale:
        1.0 for the fast OCS, 100.0 for the slow OCS.
    """

    n_senders: int = 1
    n_receivers: int = 1
    fanout_range: "tuple[float, float]" = (0.7, 1.0)
    volume_range: "tuple[float, float]" = (1.0, 1.3)
    volume_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_senders < 0 or self.n_receivers < 0:
            raise ValueError("n_senders and n_receivers must be non-negative")
        lo, hi = self.fanout_range
        if not (0.0 < lo <= hi <= 1.0):
            raise ValueError(f"fanout_range must satisfy 0 < lo <= hi <= 1, got {self.fanout_range}")
        lo, hi = self.volume_range
        if not (0.0 < lo <= hi):
            raise ValueError(f"volume_range must satisfy 0 < lo <= hi, got {self.volume_range}")
        if self.volume_scale <= 0:
            raise ValueError(f"volume_scale must be positive, got {self.volume_scale}")

    @classmethod
    def for_params(cls, params: SwitchParams, **kwargs) -> "SkewedWorkload":
        """Paper configuration for this switch's OCS class."""
        return cls(volume_scale=volume_scale_for(params), **kwargs)

    # ------------------------------------------------------------------ #

    def generate(self, n_ports: int, rng: np.random.Generator) -> DemandSpec:
        """Draw one skewed demand matrix."""
        n = int(n_ports)
        if self.n_senders + self.n_receivers > n:
            raise ValueError(
                f"{self.n_senders} senders + {self.n_receivers} receivers exceed radix {n}"
            )
        demand = np.zeros((n, n), dtype=np.float64)
        o2m_mask = np.zeros((n, n), dtype=bool)
        m2o_mask = np.zeros((n, n), dtype=bool)

        # Distinct ports so coflows do not collapse onto one another; the
        # sender set and receiver set are drawn independently (a port may
        # host both a one-to-many source and a many-to-one sink).  The two
        # coflow kinds stay on disjoint matrix cells: an o2m destination is
        # never an m2o receiver and vice versa, otherwise the shared cell
        # would carry both volumes and exceed the Bt filter the paper
        # sizes for single entries.
        senders = rng.choice(n, size=self.n_senders, replace=False)
        receivers = rng.choice(n, size=self.n_receivers, replace=False)

        for sender in senders.tolist():
            fanout = self._draw_fanout(n, rng, reserved=1 + receivers.size)
            targets = self._draw_peers(
                n, exclude=[sender, *receivers.tolist()], count=fanout, rng=rng
            )
            volumes = self._draw_volumes(targets.size, rng)
            demand[sender, targets] += volumes
            o2m_mask[sender, targets] = True

        for receiver in receivers.tolist():
            fanin = self._draw_fanout(n, rng, reserved=1)
            sources = self._draw_peers(n, exclude=[receiver], count=fanin, rng=rng)
            volumes = self._draw_volumes(sources.size, rng)
            demand[sources, receiver] += volumes
            m2o_mask[sources, receiver] = True

        return DemandSpec(
            demand=demand,
            skewed_mask=o2m_mask | m2o_mask,
            o2m_mask=o2m_mask,
            m2o_mask=m2o_mask,
            o2m_senders=tuple(int(s) for s in senders),
            m2o_receivers=tuple(int(r) for r in receivers),
        )

    # ------------------------------------------------------------------ #

    def _draw_fanout(self, n: int, rng: np.random.Generator, reserved: int) -> int:
        # Ceil on the lower end keeps the minimum fan-out at or above the
        # same-β filter threshold Rt = ceil(β·n), so a coflow drawn at the
        # bottom of the range still qualifies for a composite path.
        lo = int(np.ceil(self.fanout_range[0] * n))
        hi = int(np.floor(self.fanout_range[1] * n))
        hi = min(hi, n - reserved)  # self plus any excluded peer ports
        lo = min(lo, hi)
        if hi < 1:
            raise ValueError(f"radix {n} too small for the requested coflow layout")
        return int(rng.integers(lo, hi + 1))

    @staticmethod
    def _draw_peers(
        n: int, exclude: "list[int]", count: int, rng: np.random.Generator
    ) -> np.ndarray:
        peers = np.setdiff1d(np.arange(n), np.asarray(exclude, dtype=int))
        return rng.choice(peers, size=count, replace=False)

    def _draw_volumes(self, count: int, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.volume_range
        return rng.uniform(lo, hi, size=count) * self.volume_scale
