"""Arrival processes for closed-loop (multi-epoch) operation.

The :class:`~repro.analysis.controller.EpochController` consumes an
*arrival process* — a callable mapping the epoch index to a demand-matrix
increment.  This module provides composable processes built on the §3
workload generators:

* :class:`WorkloadArrivals` — one workload draw per epoch (deterministic
  per-epoch seeding, so runs are reproducible and comparable across
  controllers);
* :class:`PoissonArrivals` — a Poisson-distributed *number* of workload
  draws per epoch (bursty job arrivals);
* :class:`OnOffArrivals` — periodic ON/OFF modulation of another process
  (tide-like load).

All compose: ``OnOffArrivals(PoissonArrivals(...))`` gives bursty tides.

For the online :class:`~repro.service.loop.SchedulingService`, the same
processes feed an *async* stream (:func:`arrival_stream`): the demand for
epoch ``e`` is still drawn from the ``(seed, e)`` stream, so the service's
synchronous driver and a plain controller loop see identical arrivals.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import AsyncIterator, Callable

import numpy as np

from repro.utils.validation import check_nonnegative
from repro.workloads.base import Workload


@dataclass(frozen=True)
class WorkloadArrivals:
    """One workload draw per epoch.

    Parameters
    ----------
    workload:
        Any :class:`~repro.workloads.base.Workload`.
    n_ports:
        Switch radix the matrices are drawn for.
    seed:
        Root seed; epoch ``e`` uses the independent stream ``(seed, e)``,
        so two controllers replaying the same process see identical
        arrivals.
    intensity:
        Volume multiplier applied to every draw (load knob).
    """

    workload: Workload
    n_ports: int
    seed: int = 0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        check_nonnegative("intensity", self.intensity)

    def __call__(self, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, epoch)))
        spec = self.workload.generate(self.n_ports, rng)
        return spec.demand * self.intensity


@dataclass(frozen=True)
class PoissonArrivals:
    """Poisson-many workload draws per epoch (bursty job arrivals).

    ``mean_per_epoch`` is the expected number of draws; epochs with zero
    arrivals produce an all-zero matrix.
    """

    workload: Workload
    n_ports: int
    mean_per_epoch: float = 1.0
    seed: int = 0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        check_nonnegative("mean_per_epoch", self.mean_per_epoch)
        check_nonnegative("intensity", self.intensity)

    def __call__(self, epoch: int) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, epoch)))
        count = int(rng.poisson(self.mean_per_epoch))
        total = np.zeros((self.n_ports, self.n_ports))
        for _ in range(count):
            total += self.workload.generate(self.n_ports, rng).demand
        return total * self.intensity


def burst_on(epoch: int, period: int, on_epochs: int) -> bool:
    """Whether a periodic ON/OFF gate is ON at ``epoch``.

    The gate is ON for the first ``on_epochs`` epochs of every ``period``:
    ``(epoch % period) < on_epochs``.  Shared by :class:`OnOffArrivals`
    (whole-process tides) and
    :class:`~repro.workloads.coflows.BurstyCoflowWorkload` (per-flow
    flowlet bursts), so the two stay in lockstep by construction.
    """
    return (epoch % period) < on_epochs


@dataclass(frozen=True)
class OnOffArrivals:
    """Periodic ON/OFF gate over another arrival process.

    Epoch ``e`` is ON when ``(e % period) < on_epochs``.
    """

    base: "WorkloadArrivals | PoissonArrivals"
    period: int = 4
    on_epochs: int = 2

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not (0 <= self.on_epochs <= self.period):
            raise ValueError(
                f"on_epochs must be in [0, period={self.period}], got {self.on_epochs}"
            )

    def __call__(self, epoch: int) -> np.ndarray:
        if burst_on(epoch, self.period, self.on_epochs):
            return self.base(epoch)
        return np.zeros((self.base.n_ports, self.base.n_ports))


async def arrival_stream(
    process: "Callable[[int], np.ndarray]",
    n_epochs: "int | None" = None,
    *,
    pace_s: float = 0.0,
    sleep: "Callable[[float], object]" = asyncio.sleep,
) -> "AsyncIterator[tuple[int, np.ndarray]]":
    """Adapt an arrival process into an async ``(epoch, demand)`` stream.

    The demand for epoch ``e`` is exactly ``process(e)`` — the stream adds
    pacing and cancellability, never randomness — so a service consuming
    this stream sees the same arrivals as a synchronous
    :meth:`~repro.analysis.controller.EpochController.run` loop.

    Parameters
    ----------
    n_epochs:
        Stop after this many epochs; ``None`` streams forever (the
        consumer cancels).
    pace_s:
        Await this long between yields (0 yields as fast as the consumer
        accepts — backpressure then comes from the consumer's bounded
        queue).
    sleep:
        Injection point for the pacing sleep (tests pass a no-op or a
        fake-clock sleep).
    """
    if pace_s < 0:
        raise ValueError(f"pace_s must be >= 0, got {pace_s}")
    epoch = 0
    while n_epochs is None or epoch < n_epochs:
        yield epoch, process(epoch)
        epoch += 1
        if pace_s > 0 and (n_epochs is None or epoch < n_epochs):
            await sleep(pace_s)
