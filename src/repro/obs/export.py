"""Render a MetricsRegistry snapshot as a Prometheus/OpenMetrics textfile.

Backs ``python -m repro obs export --format openmetrics``.  The snapshot
may come from a ``--metrics`` JSON file or from the ``metrics`` record
embedded in a trace JSONL (both accepted via
:func:`repro.obs.summarize.load_trace_or_snapshot`); the output is the
text exposition format the node-exporter textfile collector scrapes:
``# HELP``/``# TYPE`` headers, one sample per labeled child, histograms
expanded to cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
terminated by ``# EOF``.

The registry stores per-bucket counts (one slot per bound plus the +Inf
overflow); the exposition format wants *cumulative* ``le`` buckets, so the
renderer runs the prefix sum here rather than complicating the hot-path
``observe()``.
"""

from __future__ import annotations

import math

#: Formats ``repro obs export`` understands.
EXPORT_FORMATS: "tuple[str, ...]" = ("openmetrics",)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def render_openmetrics(snapshot: dict) -> str:
    """The snapshot as Prometheus text exposition (ends with ``# EOF``)."""
    lines: "list[str]" = []
    for name in sorted(snapshot or {}):
        payload = snapshot[name]
        kind = payload.get("type", "counter")
        description = str(payload.get("description", "")).replace("\n", " ")
        if description:
            lines.append(f"# HELP {name} {description}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in payload.get("values", []):
            labels = entry.get("labels") or {}
            if kind == "histogram":
                bounds = list(entry.get("buckets", []))
                counts = list(entry.get("bucket_counts", []))
                total = int(entry.get("count", 0))
                # Registries whose declared bounds already end at math.inf
                # must not get a finite-loop +Inf sample *and* the explicit
                # one below — the series would appear twice (invalid
                # exposition).  Emitting +Inf exclusively from ``count``
                # also keeps the +Inf == _count invariant when the overflow
                # slot holds folded foreign-layout observations.
                if bounds and math.isinf(bounds[-1]):
                    bounds = bounds[:-1]
                cumulative = 0
                for bound, bucket_count in zip(bounds, counts):
                    cumulative += int(bucket_count)
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, {'le': _format_bound(bound)})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_format_labels(labels, {'le': '+Inf'})} {total}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(float(entry.get('sum', 0.0)))}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(float(entry.get('value', 0.0)))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
