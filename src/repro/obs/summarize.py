"""Render a trace JSONL (span tree, events, top-k counters) as text.

Backs ``python -m repro obs summarize``.  The renderer aggregates sibling
spans by name — an execution with 300 ``engine.phase`` spans prints one
line (``engine.phase ×300``) with total/mean durations — so the tree stays
readable at sweep scale while still exposing where the wall-clock went.

Loading is tolerant of a trailing torn line (same policy as the run
journal): a trace captured from a killed process summarizes fine up to the
kill point.  A malformed line *followed by more data* is a different
situation — the file is corrupted, not merely torn — and raises
:class:`TraceParseError` with a one-line actionable message instead of
silently dropping everything after the bad line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


class TraceParseError(ValueError):
    """A trace file is malformed beyond the tolerated trailing torn line."""


@dataclass
class TraceData:
    """Parsed contents of one trace JSONL file."""

    meta: dict = field(default_factory=dict)
    spans: "list[dict]" = field(default_factory=list)
    events: "list[dict]" = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    torn_lines: int = 0


def load_trace(path: "str | Path") -> TraceData:
    """Parse a trace file written by :meth:`repro.obs.JsonlTracer.dump`.

    A trailing torn line (a killed writer) is tolerated and counted in
    ``torn_lines``; a malformed line with valid data after it raises
    :class:`TraceParseError`.
    """
    path = Path(path)
    data = TraceData()
    text = path.read_text(encoding="utf-8")
    lines = [line.strip() for line in text.splitlines()]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            remainder = sum(1 for later in lines[index + 1 :] if later)
            if remainder:
                raise TraceParseError(
                    f"{path} line {index + 1} is not valid JSON and "
                    f"{remainder} non-empty line(s) follow it — the file is "
                    "corrupted, not merely torn; re-record the trace with "
                    "--trace"
                ) from None
            data.torn_lines += 1
            break
        kind = record.get("kind")
        if kind == "meta":
            data.meta = record
        elif kind == "span":
            data.spans.append(record)
        elif kind == "event":
            data.events.append(record)
        elif kind == "metrics":
            data.metrics = record.get("snapshot", {})
    return data


def load_trace_or_snapshot(path: "str | Path") -> TraceData:
    """Load either a trace JSONL or a bare ``--metrics`` snapshot JSON.

    ``repro obs summarize``/``diff``/``export`` accept both artifact kinds
    the CLI writes: a span trace (JSONL, metrics embedded) and the plain
    JSON metrics snapshot.  A snapshot is wrapped in a metrics-only
    :class:`TraceData`; a file that is neither raises
    :class:`TraceParseError` with a one-line actionable message.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "kind" not in payload:
        # A --metrics snapshot: name -> {type, description, values}.
        return TraceData(metrics=payload)
    data = load_trace(path)
    if not (data.meta or data.spans or data.events or data.metrics):
        raise TraceParseError(
            f"{path} holds no trace records (expected a --trace JSONL or a "
            "--metrics snapshot JSON)"
        )
    return data


# ---------------------------------------------------------------------- #
# span tree
# ---------------------------------------------------------------------- #


def _duration(span: dict) -> float:
    start = span.get("start") or 0.0
    end = span.get("end")
    return max(0.0, (end if end is not None else start) - start)


@dataclass
class _Group:
    """Sibling spans sharing one name, merged into a single tree row."""

    name: str
    count: int = 0
    total: float = 0.0
    first_start: float = float("inf")
    members: "list[dict]" = field(default_factory=list)


def _group_siblings(spans: "list[dict]") -> "list[_Group]":
    groups: "dict[str, _Group]" = {}
    for span in spans:
        group = groups.setdefault(span.get("name", "?"), _Group(span.get("name", "?")))
        group.count += 1
        group.total += _duration(span)
        group.first_start = min(group.first_start, span.get("start") or 0.0)
        group.members.append(span)
    return sorted(groups.values(), key=lambda g: g.first_start)


def span_paths(data: TraceData) -> "dict[int, str]":
    """Span id → slash-joined root-to-span name path.

    The path (e.g. ``repro.compare/runner.trial/solstice.schedule``) is the
    alignment key ``repro obs diff`` uses to match phases across two runs:
    it is stable across runs of the same command even though span ids and
    counts are not.  A span whose parent is missing from the trace (e.g.
    dropped by a kill) roots its own path.
    """
    by_id = {span["id"]: span for span in data.spans}
    paths: "dict[int, str]" = {}

    def resolve(span_id: int) -> str:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        parent = span.get("parent")
        name = span.get("name", "?")
        path = (
            f"{resolve(parent)}/{name}" if parent in by_id and parent != span_id else name
        )
        paths[span_id] = path
        return path

    for span_id in by_id:
        resolve(span_id)
    return paths


def group_paths(data: TraceData) -> "dict[str, _Group]":
    """Spans grouped by full path (the cross-run alignment ``diff`` needs).

    Same :class:`_Group` aggregation as the summary tree, but keyed by the
    root-to-span path instead of per-parent sibling name, so two traces of
    the same command can be joined path-for-path.
    """
    paths = span_paths(data)
    groups: "dict[str, _Group]" = {}
    for span in data.spans:
        path = paths[span["id"]]
        group = groups.setdefault(path, _Group(path))
        group.count += 1
        group.total += _duration(span)
        group.first_start = min(group.first_start, span.get("start") or 0.0)
        group.members.append(span)
    return groups


def render_span_tree(data: TraceData, max_depth: "int | None" = None) -> "list[str]":
    """Aggregate the span forest into indented text lines."""
    children: "dict[object, list[dict]]" = {}
    ids = {span["id"] for span in data.spans}
    for span in data.spans:
        parent = span.get("parent")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start") or 0.0)

    lines: "list[str]" = []

    def emit(group: _Group, prefix: str, tail_prefix: str, depth: int) -> None:
        label = group.name if group.count == 1 else f"{group.name} ×{group.count}"
        timing = f"{group.total:.4f}s"
        if group.count > 1:
            timing += f"  (mean {group.total / group.count:.4f}s)"
        lines.append(f"{prefix}{label:<{max(44 - len(prefix), 8)}} {timing}")
        if max_depth is not None and depth + 1 >= max_depth:
            return
        grandchildren: "list[dict]" = []
        for member in group.members:
            grandchildren.extend(children.get(member["id"], []))
        groups = _group_siblings(grandchildren)
        for index, child in enumerate(groups):
            last = index == len(groups) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            emit(child, tail_prefix + branch, tail_prefix + cont, depth + 1)

    for index, root in enumerate(_group_siblings(children.get(None, []))):
        emit(root, "", "", 0)
    return lines


# ---------------------------------------------------------------------- #
# events + counters
# ---------------------------------------------------------------------- #


def render_events(data: TraceData, top: int = 10) -> "list[str]":
    """Events grouped by name, with a per-attribute breakdown for watchdogs."""
    by_name: "dict[str, list[dict]]" = {}
    for event in data.events:
        by_name.setdefault(event.get("name", "?"), []).append(event)
    lines = []
    ranked = sorted(by_name.items(), key=lambda item: -len(item[1]))[:top]
    for name, events in ranked:
        lines.append(f"  {name} ×{len(events)}")
        detail: "dict[str, int]" = {}
        for event in events:
            attrs = event.get("attrs", {})
            if "scheduler" in attrs and "event" in attrs:
                key = f"{attrs['scheduler']}/{attrs['event']}"
            elif "kind" in attrs and "port" in attrs:
                key = f"{attrs['kind']}@{attrs['port']}"
            else:
                continue
            detail[key] = detail.get(key, 0) + 1
        for key, count in sorted(detail.items(), key=lambda item: -item[1]):
            lines.append(f"      {key} ×{count}")
    return lines


def render_counters(snapshot: dict, top: int = 10) -> "list[str]":
    """Top-k counters (by value) and histograms (by count) as text lines."""
    counters: "list[tuple[str, float]]" = []
    histograms: "list[tuple[str, int, float]]" = []
    for name, payload in (snapshot or {}).items():
        for entry in payload.get("values", []):
            labels = entry.get("labels") or {}
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if payload.get("type") == "histogram":
                histograms.append(
                    (name + suffix, int(entry.get("count", 0)), float(entry.get("sum", 0.0)))
                )
            else:
                counters.append((name + suffix, float(entry.get("value", 0.0))))
    lines = []
    for name, value in sorted(counters, key=lambda item: -item[1])[:top]:
        rendered = f"{value:.6g}" if value != int(value) else str(int(value))
        lines.append(f"  {name:<58} {rendered}")
    for name, count, total in sorted(histograms, key=lambda item: -item[1])[:top]:
        mean = total / count if count else 0.0
        lines.append(f"  {name:<58} n={count} sum={total:.4f}s mean={mean:.4f}s")
    return lines


def render_summary(
    data: TraceData, top: int = 10, max_depth: "int | None" = None
) -> str:
    """The full ``repro obs summarize`` report for one trace.

    Only the sections the trace actually carries are rendered: a
    metrics-only artifact (e.g. a ``--metrics`` snapshot) gets the counter
    section without an empty span tree, and vice versa.
    """
    meta = data.meta
    if meta:
        header = (
            f"trace format v{meta.get('format', '?')} — "
            f"command: {meta.get('command', '?')}, "
            f"{len(data.spans)} spans, {len(data.events)} events, "
            f"wall {meta.get('wall_s', 0.0):.3f}s"
        )
    else:
        header = (
            f"metrics snapshot — {len(data.metrics)} metric(s), no span records"
        )
    sections = [header]
    if data.torn_lines:
        sections.append(f"(warning: {data.torn_lines} torn trailing line(s) ignored)")
    if data.spans or not (data.events or data.metrics):
        sections.append("")
        sections.append("span tree (siblings aggregated by name)")
        tree = render_span_tree(data, max_depth=max_depth)
        sections.extend(tree if tree else ["  (no spans recorded)"])
    if data.events:
        sections.append("")
        sections.append("events")
        sections.extend(render_events(data, top=top))
    if data.metrics:
        sections.append("")
        sections.append(f"top {top} counters")
        sections.extend(render_counters(data.metrics, top=top))
    return "\n".join(sections)
