"""Live telemetry plane for the scheduling service: scrape + burn rates.

The batch obs layer materializes metrics when a process *exits*; a
long-running :class:`~repro.service.loop.SchedulingService` needs them
while it runs.  This module provides the three live pieces:

* :class:`TelemetryServer` — a stdlib ``http.server`` thread exposing
  ``GET /metrics`` (OpenMetrics text from a lock-consistent
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), ``GET /healthz``
  (heartbeat freshness + drain state; 503 when stale) and ``GET /status``
  (one JSON object: epoch, backlog, fallback level, pool liveness, burn
  rates);
* :class:`BurnRateTracker` — rolling multi-window SLO miss-rate gauges
  (``service_slo_burn_rate{window=...}``), judged on an injectable
  monotonic clock;
* :class:`LiveTelemetry` — the facade the service threads its per-epoch
  signal through: it owns the tracker, the server, and (optionally) a
  :class:`~repro.obs.incidents.FlightRecorder`.

Everything here is opt-in: the service constructs a :class:`LiveTelemetry`
only when a telemetry port (or incident directory) is configured, so with
telemetry off the service path is byte-for-byte the PR 9 loop and the
null-backend zero-overhead guarantee is untouched.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs.export import render_openmetrics
from repro.obs.incidents import EpochFrame, FlightRecorder

#: Default burn-rate windows: (label, seconds).  The classic multi-window
#: pair — a fast window that detects an active burn and a slow one that
#: filters blips — scaled to epoch cadence.
DEFAULT_BURN_WINDOWS: "tuple[tuple[str, float], ...]" = (("1m", 60.0), ("10m", 600.0))

#: /healthz flags the service stale when nothing has touched the telemetry
#: plane for this many seconds (the service heartbeat ticker touches it
#: every beat, so a healthy service stays far inside the horizon).
DEFAULT_STALE_AFTER_S: float = 5.0

#: Content type Prometheus expects from an OpenMetrics endpoint.
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class BurnRateTracker:
    """Rolling SLO miss-rate over multiple look-back windows.

    Each epoch records one boolean (did the epoch violate its SLO); the
    burn rate of a window is the violating fraction of the epochs that
    ended inside it.  Judged on a monotonic clock (injectable for tests):
    a wall-clock step must never drain or stretch a window.

    Thread-safe: the service loop records while the scrape thread reads.
    """

    def __init__(
        self,
        windows: "tuple[tuple[str, float], ...]" = DEFAULT_BURN_WINDOWS,
        *,
        mono_clock=time.monotonic,
    ) -> None:
        if not windows:
            raise ValueError("BurnRateTracker needs at least one window")
        self.windows = tuple((str(label), float(span)) for label, span in windows)
        self._mono = mono_clock
        self._horizon = max(span for _, span in self.windows)
        self._samples: "list[tuple[float, bool]]" = []
        self._lock = threading.Lock()

    def record(self, miss: bool) -> None:
        """Record one epoch's SLO outcome at the current monotonic time."""
        now = self._mono()
        with self._lock:
            self._samples.append((now, bool(miss)))
            # Prune anything older than the widest window.
            cutoff = now - self._horizon
            while self._samples and self._samples[0][0] < cutoff:
                self._samples.pop(0)

    def rates(self) -> "dict[str, float]":
        """Miss fraction per window label (0.0 when a window saw no epoch)."""
        now = self._mono()
        with self._lock:
            samples = list(self._samples)
        out: "dict[str, float]" = {}
        for label, span in self.windows:
            inside = [miss for (t, miss) in samples if now - t <= span]
            out[label] = (sum(inside) / len(inside)) if inside else 0.0
        return out

    def publish(self, metrics) -> "dict[str, float]":
        """Emit ``service_slo_burn_rate{window=...}`` gauges; returns rates."""
        rates = self.rates()
        if getattr(metrics, "enabled", False):
            gauge = metrics.gauge(
                "service_slo_burn_rate",
                "rolling SLO miss fraction per look-back window",
            )
            for label, rate in rates.items():
                gauge.labels(window=label).set(rate)
        return rates


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /status; everything else is 404."""

    # The server attribute carries the callables (see TelemetryServer).
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # a scrape every few seconds must not spam the service's stderr

    def _respond(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                text = self.server.metrics_fn()
                self._respond(200, text.encode("utf-8"), OPENMETRICS_CONTENT_TYPE)
            elif path == "/healthz":
                code, payload = self.server.health_fn()
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self._respond(code, body, "application/json")
            elif path == "/status":
                body = json.dumps(self.server.status_fn(), sort_keys=True).encode("utf-8")
                self._respond(200, body, "application/json")
            else:
                self._respond(404, b'{"error": "not found"}\n', "application/json")
        except Exception as exc:  # noqa: BLE001 — a scrape must never kill the server
            body = json.dumps({"error": str(exc)}).encode("utf-8")
            try:
                self._respond(500, body, "application/json")
            except OSError:
                pass


class TelemetryServer:
    """Daemon-threaded HTTP server wrapping three endpoint callables.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (tests and the CI smoke do exactly that).
    """

    def __init__(
        self,
        *,
        metrics_fn,
        status_fn,
        health_fn,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._metrics_fn = metrics_fn
        self._status_fn = status_fn
        self._health_fn = health_fn
        self._server: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> "int | None":
        return self._server.server_address[1] if self._server is not None else None

    def start(self) -> "TelemetryServer":
        server = ThreadingHTTPServer((self._host, self._requested_port), _TelemetryHandler)
        server.daemon_threads = True
        server.metrics_fn = self._metrics_fn
        server.status_fn = self._status_fn
        server.health_fn = self._health_fn
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name=f"telemetry:{server.server_address[1]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


class LiveTelemetry:
    """The service's live telemetry plane: scrape + burn rates + recorder.

    The service calls :meth:`on_epoch` once per epoch (loop thread),
    :meth:`touch` from its heartbeat ticker (so /healthz freshness tracks
    the same signal ``obs watch`` judges), and :meth:`set_draining` on
    stop.  The scrape endpoints read through thread-safe snapshots.
    """

    def __init__(
        self,
        *,
        registry,
        port: "int | None" = 0,
        host: str = "127.0.0.1",
        recorder: "FlightRecorder | None" = None,
        burn_windows: "tuple[tuple[str, float], ...]" = DEFAULT_BURN_WINDOWS,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        mono_clock=time.monotonic,
        pool_status_fn=None,
    ) -> None:
        self.registry = registry
        self.recorder = recorder
        self.burn = BurnRateTracker(burn_windows, mono_clock=mono_clock)
        self.stale_after_s = float(stale_after_s)
        self._mono = mono_clock
        self._pool_status_fn = pool_status_fn
        self._lock = threading.Lock()
        self._last_touch = mono_clock()
        self._draining = False
        self._state: dict = {"epoch": None, "epochs_done": 0}
        self.server = (
            TelemetryServer(
                metrics_fn=self.render_metrics,
                status_fn=self.status,
                health_fn=self.health,
                host=host,
                port=port,
            )
            if port is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # lifecycle (service side)
    # ------------------------------------------------------------------ #

    def start(self) -> "LiveTelemetry":
        if self.server is not None:
            self.server.start()
        return self

    def stop(self) -> None:
        if self.server is not None:
            self.server.stop()

    @property
    def port(self) -> "int | None":
        return self.server.port if self.server is not None else None

    def touch(self) -> None:
        """Mark the service alive (called from the heartbeat ticker)."""
        with self._lock:
            self._last_touch = self._mono()

    def set_draining(self, draining: bool) -> None:
        with self._lock:
            self._draining = bool(draining)

    def on_epoch(
        self,
        *,
        epoch: int,
        report: dict,
        outcome: dict,
        records: "list[dict] | None" = None,
        worker_deaths: "list[dict] | None" = None,
    ) -> "list[Path]":
        """Fold one finished epoch in; returns incident bundles written."""
        self.burn.record(bool(outcome.get("slo_violation")))
        rates = self.burn.publish(self.registry)
        with self._lock:
            self._last_touch = self._mono()
            self._state = {
                "epoch": epoch,
                "epochs_done": int(self._state.get("epochs_done", 0)) + 1,
                "backlog_mb": report.get("backlog_after", 0.0),
                "fallback_level": report.get("fallback_level", 0),
                "deadline_hit": report.get("deadline_hit", False),
                "reroute_swaps": report.get("reroute_swaps", 0),
                "epoch_latency_s": outcome.get("epoch_latency_s", 0.0),
                "slo_violations": int(self._state.get("slo_violations", 0))
                + (1 if outcome.get("slo_violation") else 0),
            }
        if self.recorder is None:
            return []
        frame = EpochFrame(
            epoch=epoch,
            report=report,
            outcome=outcome,
            records=list(records or []),
            worker_deaths=list(worker_deaths or []),
        )
        return self.recorder.observe_epoch(
            frame, metrics_snapshot=self.registry.snapshot()
        )

    # ------------------------------------------------------------------ #
    # endpoints (scrape side)
    # ------------------------------------------------------------------ #

    def render_metrics(self) -> str:
        """OpenMetrics text of the registry (snapshot under its lock)."""
        return render_openmetrics(self.registry.snapshot())

    def status(self) -> dict:
        with self._lock:
            state = dict(self._state)
            draining = self._draining
        state["draining"] = draining
        state["slo_burn_rate"] = self.burn.rates()
        if self._pool_status_fn is not None:
            try:
                state["workers"] = self._pool_status_fn()
            except Exception:  # noqa: BLE001 — liveness probe must not 500
                state["workers"] = None
        if self.recorder is not None:
            state["incidents"] = {
                "triggered": dict(self.recorder.triggered),
                "bundles_written": len(self.recorder.bundles_written),
            }
        return state

    def health(self) -> "tuple[int, dict]":
        """(HTTP status, payload) for /healthz: 200 fresh, 503 stale."""
        now = self._mono()
        with self._lock:
            idle = max(0.0, now - self._last_touch)
            draining = self._draining
        stale = idle > self.stale_after_s
        payload = {
            "status": "stale" if stale else ("draining" if draining else "ok"),
            "heartbeat_idle_s": idle,
            "stale_after_s": self.stale_after_s,
            "draining": draining,
        }
        return (503 if stale else 200), payload
