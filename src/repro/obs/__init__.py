"""Zero-overhead-when-off observability: tracing, metrics, timing hooks.

Every run of the reproduction is instrumented — the fluid engine's phases,
Solstice/Eclipse scheduler steps and watchdog trips, the cp-Switch pipeline
stages, and the sweep runner's trials all emit spans, events and counters
through this package.  The process *default* is the null backend: a single
``enabled`` attribute check per instrumentation site, no allocation, no
timing calls, and results bit-identical to an uninstrumented build.

Enable it by installing a real backend, most conveniently via the CLI
(``python -m repro compare ... --trace trace.jsonl --metrics metrics.json``)
or programmatically::

    from repro import obs

    tracer = obs.JsonlTracer()
    registry = obs.MetricsRegistry()
    with obs.observability(tracer=tracer, metrics=registry):
        result = simulate_hybrid(demand, schedule, params)
    tracer.dump("trace.jsonl", metrics_snapshot=registry.snapshot())

``python -m repro obs summarize trace.jsonl`` renders the span tree and the
top counters.  See ``docs/observability.md`` for the span schema and the
metric name catalogue.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    SpanHandle,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "SpanHandle",
    "active",
    "get_metrics",
    "get_tracer",
    "observability",
    "profiled",
    "record_watchdog",
    "reset_for_fork",
    "set_metrics",
    "set_tracer",
]

_tracer = NULL_TRACER
_metrics = NULL_METRICS


def get_tracer():
    """The process-wide tracer (the null tracer unless one is installed)."""
    return _tracer


def get_metrics():
    """The process-wide metrics registry (null unless one is installed)."""
    return _metrics


def set_tracer(tracer) -> None:
    """Install ``tracer`` process-wide; ``None`` restores the null tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


def set_metrics(registry) -> None:
    """Install ``registry`` process-wide; ``None`` restores the null one."""
    global _metrics
    _metrics = registry if registry is not None else NULL_METRICS


def active() -> bool:
    """Whether any observability backend is installed.

    This is the guard the hot paths check before doing *any* bookkeeping;
    with the defaults installed it is two attribute reads.
    """
    return _tracer.enabled or _metrics.enabled


@contextmanager
def observability(tracer=None, metrics=None):
    """Temporarily install observability backends (restored on exit)."""
    previous = (_tracer, _metrics)
    set_tracer(tracer)
    set_metrics(metrics)
    try:
        yield
    finally:
        set_tracer(previous[0])
        set_metrics(previous[1])


def reset_for_fork() -> None:
    """Clear inherited observations in a forked worker.

    A forked sweep worker shares the parent's installed backends — records
    buffered before the fork must not be drained and shipped back again,
    and counters must restart from zero so the parent's merge does not
    double-count.  Called at the top of the subprocess trial worker.
    """
    _tracer.reset()
    _metrics.reset()


@contextmanager
def profiled(name: str, **attrs):
    """Time a block: one span (tracing) + one ``phase_seconds`` histogram.

    The primary instrumentation hook for non-inner-loop call sites.  Yields
    a span handle (``.set(**attrs)`` attaches outcome attributes); with
    observability off it yields the shared null handle and does nothing.
    """
    if not (_tracer.enabled or _metrics.enabled):
        yield NULL_SPAN
        return
    start = time.perf_counter()
    handle = _tracer.begin(name, **attrs) if _tracer.enabled else NULL_SPAN
    try:
        yield handle
    finally:
        elapsed = time.perf_counter() - start
        if _tracer.enabled:
            _tracer.end(handle)
        if _metrics.enabled:
            _metrics.histogram(
                "phase_seconds", "wall time of profiled() blocks by span name"
            ).labels(name=name).observe(elapsed)


def record_watchdog(diagnostics) -> None:
    """Publish one scheduler watchdog trip as a structured event + counter.

    Called by the Solstice/Eclipse ``_degrade`` hooks with the
    :class:`~repro.hybrid.diagnostics.SchedulerDiagnostics` they just
    recorded; a no-op when observability is off.
    """
    if _tracer.enabled:
        _tracer.event("scheduler.watchdog", **diagnostics.to_dict())
    if _metrics.enabled:
        _metrics.counter(
            "scheduler_watchdog_trips_total", "watchdog degradations by scheduler/event"
        ).labels(scheduler=diagnostics.scheduler, event=diagnostics.event).inc()
