"""Perf + schedule-quality baselines: ``repro obs baseline record`` / ``obs check``.

Hybrid-switch schedulers fail silently in two distinct ways: a refactor
can make a phase *slower* without changing any result, or it can change
*what the scheduler decides* (slice counts, composite-path grants,
OCS-served fractions) without an assertion tripping — and the second kind
moves the paper's throughput/completion-time numbers.  This module records
both families into one baseline file (``BENCH_obs.json``) and gates
against it:

* ``repro obs baseline record`` times the live pipeline per stage (reusing
  :func:`repro.analysis.perf._run_pipeline` over the same seeded Figure 5/6
  workload as the engine bench) under a metrics-enabled observability
  context, and derives the schedule-quality fingerprint from the
  simulation results plus the audit counters.
* ``repro obs check --baseline BENCH_obs.json`` re-measures (or takes a
  ``--current`` file, the test-injection point) and exits nonzero on a
  timing regression beyond ``--tolerance`` or on *any* quality drift.

Timing comparisons only engage for stages above ``min_seconds`` (noise on
micro-stages is not a regression) and are run machine-locally: CI records
a fresh baseline in-job before checking, so the gate measures the commit,
not the hardware.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.figures import DEFAULT_SEED, params_for
from repro.analysis.perf import STAGES, _run_pipeline
from repro.core.scheduler import CpSwitchScheduler
from repro.faults.reroute import BackupPlanner
from repro.hybrid.base import make_scheduler
from repro.service.deadline import AnytimeScheduler, TickClock
from repro.utils.fileio import atomic_write_json
from repro.utils.rng import spawn_rngs
from repro.workloads.skewed import SkewedWorkload

#: Version of the BENCH_obs.json envelope.
BASELINE_FORMAT: int = 1

#: Default relative timing-regression tolerance (25% — generous enough for
#: shared CI runners, tight enough to catch a de-vectorized hot path).
DEFAULT_TOLERANCE: float = 0.25

#: Stages cheaper than this (seconds) are exempt from timing comparison.
DEFAULT_MIN_SECONDS: float = 0.01

#: Relative tolerance for float-valued quality numbers (summation-order
#: dust only; a real schedule change moves these by far more).
QUALITY_RTOL: float = 1e-9

#: Quality fields compared exactly (integer schedule decisions).
_EXACT_QUALITY: "tuple[str, ...]" = (
    "h_configs",
    "cp_configs",
    "slices",
    "watchdog_trips",
    "backup_count",
    "deadline_misses",
    "deadline_fallbacks",
)

#: Tick budget for the deadline-ladder fingerprint.  On a unit-step
#: :class:`~repro.service.deadline.TickClock` exhaustion is a function of
#: checkpoint *count* (reduce, stuffing, then one per slice/step), so the
#: resulting miss count and fallback histogram are machine-independent —
#: exact-comparable like slice counts.  4.5 ticks truncates after the
#: first slice (L1) at most recorded points while still letting the
#: tightest schedules finish clean (L0), so the fingerprint is sensitive
#: in both directions.
DEADLINE_TICK_BUDGET: float = 4.5

#: Quality fields compared with :data:`QUALITY_RTOL`.
_FLOAT_QUALITY: "tuple[str, ...]" = (
    "h_ocs_fraction",
    "cp_ocs_fraction",
    "composite_fraction",
)


def _counter_total(snapshot: dict, name: str) -> float:
    """Sum a counter over all its label children in a metrics snapshot."""
    payload = snapshot.get(name)
    if not payload:
        return 0.0
    return sum(float(entry.get("value", 0.0)) for entry in payload.get("values", []))


def measure_point(
    n_ports: int,
    scheduler: str = "solstice",
    ocs: str = "fast",
    n_trials: int = 2,
    seed: int = DEFAULT_SEED,
    repeats: int = 2,
) -> dict:
    """Measure one (radix, scheduler) point: stage timings + quality.

    Timing is the per-stage minimum across ``repeats`` (the least noisy
    estimator); quality comes from the *first* repeat's results and audit
    counters — repeats are bit-identical by construction, so any repeat
    would do.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    params = params_for(ocs, n_ports)
    workload = SkewedWorkload.for_params(params)
    demands = [
        workload.generate(params.n_ports, rng).demand
        for rng in spawn_rngs(seed, n_trials)
    ]

    timing = dict.fromkeys(STAGES, np.inf)
    quality: "dict | None" = None
    for repeat in range(repeats):
        registry = obs.MetricsRegistry()
        with obs.observability(metrics=registry):
            times, results = _run_pipeline(
                demands, params, scheduler, reference=False
            )
        for stage in STAGES:
            timing[stage] = min(timing[stage], times[stage])
        if repeat == 0:
            quality = _quality_fingerprint(results, registry.snapshot(), scheduler)
    timing["total"] = sum(timing[stage] for stage in STAGES)
    assert quality is not None

    # Fast-reroute backup precompute: timed against the same demands so
    # ``obs check`` gates its overhead relative to ``h_schedule`` (the
    # ISSUE bound is < 10% at radix 128).  Schedules are built once,
    # outside the timed region — only ``BackupPlanner.plan`` is measured.
    cp_scheduler = CpSwitchScheduler(make_scheduler(scheduler))
    planner = BackupPlanner(cp_scheduler)
    cp_schedules = [cp_scheduler.schedule(demand, params) for demand in demands]
    backup_s = np.inf
    backup_count = 0
    for _ in range(repeats):
        start = time.perf_counter()
        backup_count = sum(
            planner.plan(demand, cp_schedule, params).n_armed
            for demand, cp_schedule in zip(demands, cp_schedules)
        )
        backup_s = min(backup_s, time.perf_counter() - start)
    timing["backup_plan"] = backup_s
    quality["backup_count"] = int(backup_count)

    # Deadline-ladder fingerprint: the same demands scheduled under a tick
    # budget.  Any change to checkpoint placement or rung selection shifts
    # these counts, so ``obs check`` gates the fallback ladder the same way
    # it gates slice counts.  Runs outside the observability context above
    # so the anytime counters never leak into the pipeline's audit quality.
    anytime = AnytimeScheduler(
        CpSwitchScheduler(make_scheduler(scheduler)),
        deadline_s=DEADLINE_TICK_BUDGET,
        clock=TickClock(step=1.0),
    )
    deadline_misses = 0
    deadline_fallbacks: "dict[str, int]" = {}
    for demand in demands:
        anytime.schedule(demand, params)
        outcome = anytime.last_outcome
        deadline_misses += int(outcome.deadline_hit)
        level = str(outcome.fallback_level)
        deadline_fallbacks[level] = deadline_fallbacks.get(level, 0) + 1
    quality["deadline_misses"] = deadline_misses
    quality["deadline_fallbacks"] = deadline_fallbacks
    return {
        "radix": n_ports,
        "scheduler": scheduler,
        "ocs": ocs,
        "timing_s": {key: round(value, 6) for key, value in timing.items()},
        "quality": quality,
    }


def _quality_fingerprint(results, snapshot: dict, scheduler: str) -> dict:
    """Schedule-quality numbers of one point (deterministic for a seed)."""
    h_results = [pair[0] for pair in results]
    cp_results = [pair[1] for pair in results]
    total = sum(result.total_demand for result in h_results)
    denom = total if total > 0 else 1.0
    slices = _counter_total(
        snapshot,
        "solstice_slices_total" if scheduler == "solstice" else "eclipse_steps_total",
    )
    return {
        "h_ocs_fraction": sum(r.served_ocs_direct for r in h_results) / denom,
        "cp_ocs_fraction": sum(r.served_ocs_direct for r in cp_results) / denom,
        "composite_fraction": sum(r.served_composite for r in cp_results) / denom,
        "h_configs": int(sum(r.n_configs for r in h_results)),
        "cp_configs": int(sum(r.n_configs for r in cp_results)),
        "slices": int(slices),
        "watchdog_trips": int(
            _counter_total(snapshot, "scheduler_watchdog_trips_total")
        ),
    }


def record_baseline(
    radices: "tuple[int, ...]" = (32, 64, 128),
    schedulers: "tuple[str, ...]" = ("solstice", "eclipse"),
    ocs: str = "fast",
    n_trials: int = 2,
    seed: int = DEFAULT_SEED,
    repeats: int = 2,
) -> dict:
    """Measure every point and assemble the ``BENCH_obs.json`` payload."""
    points = [
        measure_point(
            n_ports=n,
            scheduler=scheduler,
            ocs=ocs,
            n_trials=n_trials,
            seed=seed,
            repeats=repeats,
        )
        for scheduler in schedulers
        for n in radices
    ]
    return {
        "benchmark": "obs-baseline",
        "format": BASELINE_FORMAT,
        "seed": seed,
        "ocs": ocs,
        "trials_per_point": n_trials,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "points": points,
    }


def load_baseline(path: "str | Path") -> dict:
    """Load and envelope-check a ``BENCH_obs.json`` file."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("format")
    if version != BASELINE_FORMAT:
        raise ValueError(
            f"unsupported baseline format v{version} in {path} "
            f"(expected v{BASELINE_FORMAT})"
        )
    return payload


def write_baseline(payload: dict, path: "str | Path") -> Path:
    """Atomically persist a baseline payload."""
    return atomic_write_json(payload, path)


def measure_like(baseline: dict) -> dict:
    """Re-measure with the exact configuration a baseline was recorded at."""
    points = baseline.get("points", [])
    radices = tuple(sorted({point["radix"] for point in points}))
    schedulers = tuple(
        dict.fromkeys(point["scheduler"] for point in points)
    )  # insertion order, deduped
    return record_baseline(
        radices=radices or (32,),
        schedulers=schedulers or ("solstice",),
        ocs=baseline.get("ocs", "fast"),
        n_trials=baseline.get("trials_per_point", 2),
        seed=baseline.get("seed", DEFAULT_SEED),
        repeats=baseline.get("repeats", 2),
    )


def check_baseline(
    baseline: dict,
    current: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> "list[str]":
    """Compare ``current`` against ``baseline``; return violation messages.

    An empty list means the gate passes.  Violations are of two kinds:

    * *timing* — a tracked stage above ``min_seconds`` in the baseline got
      more than ``tolerance`` (relative) slower;
    * *quality drift* — any integer schedule decision changed, or a float
      fraction moved beyond summation-order dust (:data:`QUALITY_RTOL`).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    current_points = {
        (point["radix"], point["scheduler"]): point
        for point in current.get("points", [])
    }
    violations: "list[str]" = []
    for point in baseline.get("points", []):
        key = (point["radix"], point["scheduler"])
        label = f"{point['scheduler']} radix={point['radix']}"
        now = current_points.get(key)
        if now is None:
            violations.append(f"{label}: point missing from current measurement")
            continue
        for stage, base_s in point.get("timing_s", {}).items():
            if base_s < min_seconds:
                continue
            now_s = now.get("timing_s", {}).get(stage)
            if now_s is None:
                violations.append(f"{label}: stage {stage} missing from current")
                continue
            if now_s > base_s * (1.0 + tolerance):
                violations.append(
                    f"{label}: {stage} regressed {base_s:.4f}s → {now_s:.4f}s "
                    f"(+{(now_s / base_s - 1.0) * 100.0:.1f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)"
                )
        base_q = point.get("quality", {})
        now_q = now.get("quality", {})
        for field in _EXACT_QUALITY:
            if field in base_q and base_q[field] != now_q.get(field):
                violations.append(
                    f"{label}: quality drift — {field} "
                    f"{base_q[field]} → {now_q.get(field)}"
                )
        for field in _FLOAT_QUALITY:
            if field not in base_q:
                continue
            base_v = float(base_q[field])
            now_v = float(now_q.get(field, float("nan")))
            tol = QUALITY_RTOL * max(1.0, abs(base_v))
            if not abs(base_v - now_v) <= tol:  # NaN-safe: NaN fails
                violations.append(
                    f"{label}: quality drift — {field} {base_v!r} → {now_v!r}"
                )
    return violations
