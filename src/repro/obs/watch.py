"""Live sweep monitoring: tail a journal + heartbeats, render progress.

Backs ``python -m repro obs watch <journal>``.  A resumable sweep
checkpoints every finished trial to its journal and (since the heartbeat
layer) every *running* trial to ``<journal>.hb/``; this module joins the
two into one status report:

* progress — completed / failed / in-flight / pending against the header's
  trial-spec list;
* ETA — remaining trials × median duration of completed ones (the runner
  executes trials sequentially, so the product is the wall-clock estimate);
* retry and quarantine totals;
* stragglers — in-flight trials older than a duration percentile of the
  completed population (default p95), plus trials whose heartbeat has gone
  ``STALE`` (idle for more than 3× the interval the beat itself declares;
  see :data:`STALE_INTERVAL_MULTIPLIER`), which is how a hung *or crashed*
  worker shows up before its timeout fires.  Every unsettled heartbeat is
  treated as live — no phase filter — so a worker that died mid-phase still
  renders, flagged, instead of silently vanishing from the report.

Reading is strictly passive: the journal is atomic-rewritten by the
runner, heartbeat files are atomically replaced, so a watcher sees
consistent snapshots and perturbs nothing (the kill-and-resume smoke
asserts journals are bit-identical with a watcher attached or not).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runner.heartbeat import heartbeat_dir, read_heartbeats
from repro.runner.journal import RunJournal

#: In-flight trials older than this percentile of completed durations are
#: flagged as stragglers.
STRAGGLER_PERCENTILE: float = 95.0

#: Minimum completed trials before percentile straggler flagging engages.
MIN_COMPLETED_FOR_STRAGGLERS: int = 3

#: Fallback staleness horizon (s) for heartbeats that do not declare their
#: refresh cadence (records written before ``interval_s`` existed).
STALE_AFTER_S: float = 15.0

#: A heartbeat idle for more than this multiple of its *declared* refresh
#: interval is stale: the writer promised a beat every ``interval_s`` and
#: has missed three in a row, so the worker is hung or dead — either way
#: it must not render as healthily running forever.
STALE_INTERVAL_MULTIPLIER: float = 3.0


def _stale_horizon_s(beat: dict) -> float:
    """Idle time beyond which ``beat`` counts as stale."""
    try:
        interval = float(beat["interval_s"])
    except (KeyError, TypeError, ValueError):
        return STALE_AFTER_S
    if interval <= 0:
        return STALE_AFTER_S
    return STALE_INTERVAL_MULTIPLIER * interval


def _elapsed_s(
    beat: dict, mono_field: str, wall_field: str, now: float, now_mono: float
) -> float:
    """Seconds since the beat's ``mono_field`` reading, falling back to wall.

    Liveness must be judged on the writer's monotonic reading whenever the
    record carries one: ``CLOCK_MONOTONIC`` is boot-relative and shared by
    every process on the machine, so ``now_mono - last_progress_mono`` is a
    true idle duration regardless of NTP steps, whereas a wall-clock delta
    jumps with the clock — a +1h step would flag every in-flight trial
    STALE, and a backward step would make a wedged trial look fresh.
    Records without the monotonic fields (older writers) keep the
    wall-clock judgement.
    """
    reading = beat.get(mono_field)
    if isinstance(reading, (int, float)):
        return max(0.0, now_mono - float(reading))
    return max(0.0, now - float(beat.get(wall_field, now)))


@dataclass
class TrialStatus:
    """One in-flight trial as seen through its heartbeat."""

    key: str
    phase: str
    attempt: int
    spans_so_far: int
    age_s: float
    idle_s: float
    straggler: bool = False
    stale: bool = False
    stale_after_s: float = STALE_AFTER_S
    deadline_miss_rate: "float | None" = None


@dataclass
class ServiceStatus:
    """A running scheduling service as seen through its heartbeat + journal.

    A service journal has no sweep header and no trial specs — progress is
    an open-ended epoch counter, and liveness is the ``service`` heartbeat
    the loop's ticker keeps fresh (same monotonic staleness contract as
    trial beats).
    """

    epoch: "int | None" = None
    epochs_done: int = 0
    backlog_mb: "float | None" = None
    fallback_level: "int | None" = None
    burn_rates: "dict | None" = None
    has_beat: bool = False
    idle_s: "float | None" = None
    stale: bool = False
    stale_after_s: float = STALE_AFTER_S


@dataclass
class WatchState:
    """One snapshot of a sweep's progress (everything the renderer needs)."""

    sweep: str
    journal_path: str
    total: int
    done: int
    failed: int
    pending: int
    in_flight: "list[TrialStatus]" = field(default_factory=list)
    durations: "list[float]" = field(default_factory=list)
    retries: int = 0
    eta_s: "float | None" = None
    straggler_cutoff_s: "float | None" = None
    torn_lines: int = 0
    service: "ServiceStatus | None" = None

    @property
    def finished(self) -> bool:
        if self.service is not None:
            # A service has no trial count to complete; the follow loop
            # should stop when the service itself is gone or wedged.
            return not self.service.has_beat or self.service.stale
        return self.done + self.failed >= self.total


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


def _median(values: "list[float]") -> "float | None":
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def collect_state(
    journal_path: "str | Path",
    *,
    now: "float | None" = None,
    now_mono: "float | None" = None,
) -> WatchState:
    """Read the journal + heartbeat directory into one consistent snapshot.

    ``now`` (wall clock) and ``now_mono`` (monotonic) are injectable for
    tests; idleness/age of heartbeats carrying monotonic fields is judged
    against ``now_mono``, never the steppable wall clock.
    """
    journal_path = Path(journal_path)
    journal = RunJournal(journal_path)
    header = journal.header
    now = time.time() if now is None else now
    now_mono = time.monotonic() if now_mono is None else now_mono
    if header is None:
        # Not a sweep.  A *service* journal is headerless but carries epoch
        # records and/or a "service" heartbeat — render that as a service
        # row instead of bailing on an anonymous unsettled trial.
        state = _collect_service_state(journal_path, journal, now, now_mono)
        if state is not None:
            return state
        raise ValueError(
            f"{journal_path} has no sweep header — not a sweep journal "
            "(pass the journal `python -m repro sweep --journal` wrote)"
        )

    spec_keys = [item["key"] for item in header.get("spec", [])]
    done_keys = set(journal.completed())
    failures = journal.failures()
    failed_keys = {record["key"] for record in failures}
    settled = done_keys | failed_keys

    durations = [
        float(record["elapsed_s"])
        for record in journal.trial_records()
        if record.get("status") == "ok" and "elapsed_s" in record
    ]
    retries = sum(
        max(0, int(record.get("attempts", 1)) - 1)
        for record in journal.trial_records()
    )

    ordered = sorted(durations)
    cutoff = (
        _percentile(ordered, STRAGGLER_PERCENTILE)
        if len(ordered) >= MIN_COMPLETED_FOR_STRAGGLERS
        else None
    )

    in_flight: "list[TrialStatus]" = []
    for key, beat in read_heartbeats(heartbeat_dir(journal_path)).items():
        # Any heartbeat whose trial the journal has not settled is treated
        # as live — a worker that crashed mid-phase leaves whatever phase
        # string it last wrote, and filtering on "live-looking" phases
        # would hide exactly the trials the watcher exists to flag.  The
        # staleness check below is what separates running from wedged.
        if key in settled:
            continue
        age = _elapsed_s(beat, "started_at_mono", "started_at", now, now_mono)
        idle = _elapsed_s(beat, "last_progress_mono", "last_progress", now, now_mono)
        horizon = _stale_horizon_s(beat)
        miss_rate = beat.get("deadline_miss_rate")
        in_flight.append(
            TrialStatus(
                key=key,
                phase=str(beat.get("phase", "?")),
                attempt=int(beat.get("attempt", 1)),
                spans_so_far=int(beat.get("spans_so_far", 0)),
                age_s=age,
                idle_s=idle,
                straggler=cutoff is not None and age > cutoff,
                stale=idle > horizon,
                stale_after_s=horizon,
                deadline_miss_rate=(
                    float(miss_rate) if isinstance(miss_rate, (int, float)) else None
                ),
            )
        )
    in_flight.sort(key=lambda status: -status.age_s)

    total = len(spec_keys) if spec_keys else len(settled) + len(in_flight)
    remaining = max(0, total - len(done_keys) - len(failed_keys))
    median = _median(durations)
    eta = remaining * median if (median is not None and remaining) else None

    return WatchState(
        sweep=str(header.get("sweep", "?")),
        journal_path=str(journal_path),
        total=total,
        done=len(done_keys),
        failed=len(failed_keys),
        pending=max(0, remaining - len(in_flight)),
        in_flight=in_flight,
        durations=durations,
        retries=retries,
        eta_s=eta,
        straggler_cutoff_s=cutoff,
        torn_lines=journal.torn_lines,
    )


def _collect_service_state(
    journal_path: Path, journal: RunJournal, now: float, now_mono: float
) -> "WatchState | None":
    """Snapshot a headerless *service* journal, or ``None`` if it is not one.

    Recognizes a service by either signal: ``kind == "epoch"`` records in
    the journal (the controller writes one per epoch) or a ``service``
    heartbeat in the journal's heartbeat directory (the loop's ticker).
    """
    epoch_reports = [
        record.get("report") or {}
        for record in journal.records
        if record.get("kind") == "epoch"
    ]
    beat = read_heartbeats(heartbeat_dir(journal_path)).get("service")
    if beat is None and not epoch_reports:
        return None

    status = ServiceStatus()
    if epoch_reports:
        last = epoch_reports[-1]
        status.epoch = last.get("epoch")
        status.epochs_done = len(epoch_reports)
        status.backlog_mb = last.get("backlog_after")
        status.fallback_level = last.get("fallback_level")
    if beat is not None:
        status.has_beat = True
        status.idle_s = _elapsed_s(
            beat, "last_progress_mono", "last_progress", now, now_mono
        )
        status.stale_after_s = _stale_horizon_s(beat)
        status.stale = status.idle_s > status.stale_after_s
        # The ticker's advisory extras beat the journal: they refresh every
        # beat, the journal only at each atomic rewrite.
        if isinstance(beat.get("service_epoch"), int):
            status.epoch = int(beat["service_epoch"])
        if isinstance(beat.get("epochs_done"), int):
            status.epochs_done = max(status.epochs_done, int(beat["epochs_done"]))
        if isinstance(beat.get("backlog_mb"), (int, float)):
            status.backlog_mb = float(beat["backlog_mb"])
        if isinstance(beat.get("fallback_level"), int):
            status.fallback_level = int(beat["fallback_level"])
        if isinstance(beat.get("slo_burn_rate"), dict):
            status.burn_rates = dict(beat["slo_burn_rate"])

    return WatchState(
        sweep="service",
        journal_path=str(journal_path),
        total=status.epochs_done,
        done=status.epochs_done,
        failed=0,
        pending=0,
        torn_lines=journal.torn_lines,
        service=status,
    )


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #


def _fmt_duration(seconds: float) -> str:
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def _progress_bar(done: int, failed: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = round(width * done / total)
    crossed = round(width * failed / total)
    filled = min(filled, width)
    crossed = min(crossed, width - filled)
    return "[" + "#" * filled + "x" * crossed + "-" * (width - filled - crossed) + "]"


def _render_service(state: WatchState) -> str:
    """One status frame for a scheduling service (headerless journal)."""
    status = state.service
    assert status is not None
    lines = [f"service — {state.journal_path}"]
    row = f"  epoch {status.epoch if status.epoch is not None else '?'}"
    if status.epochs_done:
        row += f" ({status.epochs_done} done)"
    if status.backlog_mb is not None:
        row += f", backlog {status.backlog_mb:.1f} Mb"
    if status.fallback_level is not None:
        row += f", fallback L{status.fallback_level}"
    lines.append(row)
    if status.burn_rates:
        rates = ", ".join(
            f"{label} {float(rate):.0%}" for label, rate in status.burn_rates.items()
        )
        lines.append(f"  slo burn rate: {rates}")
    if not status.has_beat:
        lines.append("  heartbeat: missing (service stopped, or heartbeat disabled)")
    elif status.stale:
        lines.append(
            f"  heartbeat: STALE (no progress {_fmt_duration(status.idle_s or 0.0)}, "
            f"expected every "
            f"{_fmt_duration(status.stale_after_s / STALE_INTERVAL_MULTIPLIER)})"
        )
    else:
        lines.append(
            f"  heartbeat: fresh (idle {_fmt_duration(status.idle_s or 0.0)}, "
            f"stale after {_fmt_duration(status.stale_after_s)})"
        )
    if state.torn_lines:
        lines.append(f"  (warning: {state.torn_lines} torn journal line(s) ignored)")
    return "\n".join(lines)


def render_watch(state: WatchState) -> str:
    """One status frame as text (``repro obs watch``)."""
    if state.service is not None:
        return _render_service(state)
    lines = [
        f"sweep {state.sweep!r} — {state.journal_path}",
        (
            f"{_progress_bar(state.done, state.failed, state.total)} "
            f"{state.done}/{state.total} done"
            + (f", {state.failed} failed" if state.failed else "")
            + (f", {len(state.in_flight)} running" if state.in_flight else "")
            + (f", {state.pending} pending" if state.pending else "")
        ),
    ]
    if state.torn_lines:
        lines.append(f"(warning: {state.torn_lines} torn journal line(s) ignored)")
    median = _median(state.durations)
    if median is not None:
        stats = f"trial median {_fmt_duration(median)}"
        if state.straggler_cutoff_s is not None:
            stats += f", p{STRAGGLER_PERCENTILE:.0f} {_fmt_duration(state.straggler_cutoff_s)}"
        lines.append(stats)
    if state.eta_s is not None:
        remaining = state.total - state.done - state.failed
        lines.append(
            f"ETA ~{_fmt_duration(state.eta_s)} "
            f"({remaining} remaining × median {_fmt_duration(median)})"
        )
    if state.retries:
        lines.append(f"retries {state.retries}, quarantined {state.failed}")
    elif state.failed:
        lines.append(f"quarantined {state.failed}")
    if state.in_flight:
        lines.append("in flight:")
        for status in state.in_flight:
            flags = []
            if status.straggler:
                flags.append(
                    f"straggler (> p{STRAGGLER_PERCENTILE:.0f} "
                    f"{_fmt_duration(state.straggler_cutoff_s or 0.0)})"
                )
            if status.stale:
                flags.append(
                    f"STALE (no progress {_fmt_duration(status.idle_s)}, "
                    f"expected every {_fmt_duration(status.stale_after_s / STALE_INTERVAL_MULTIPLIER)})"
                )
            suffix = ("  ← " + ", ".join(flags)) if flags else ""
            miss = (
                f"  miss-rate {status.deadline_miss_rate:.0%}"
                if status.deadline_miss_rate is not None
                else ""
            )
            lines.append(
                f"  {status.key:<32} {status.phase:<9} attempt {status.attempt}"
                f"  spans {status.spans_so_far}"
                f"  age {_fmt_duration(status.age_s)}{miss}{suffix}"
            )
    if state.finished:
        lines.append("sweep complete")
    return "\n".join(lines)


def watch(
    journal_path: "str | Path",
    *,
    follow: bool = False,
    interval_s: float = 2.0,
    max_frames: "int | None" = None,
    emit=print,
    sleep=time.sleep,
) -> WatchState:
    """Render the sweep's status once, or keep tailing with ``follow``.

    Returns the last collected state.  ``max_frames``/``emit``/``sleep``
    are injection points for tests; the follow loop stops when the sweep
    finishes (or on Ctrl-C from the CLI).
    """
    frames = 0
    while True:
        state = collect_state(journal_path)
        emit(render_watch(state))
        frames += 1
        if not follow or state.finished:
            return state
        if max_frames is not None and frames >= max_frames:
            return state
        sleep(interval_s)
        emit("")
